// Package engine bundles one complete evaluation unit — a kernel, its
// compiler, its tiered-execution pipeline, and its function-registry
// namespace — behind a single handle with a clean lifecycle (ISSUE 8).
//
// The paper's kernel/compiler integration assumes one kernel per process;
// the reproduction's registry inherited that as a process-wide singleton,
// which made a second kernel in the same process unsound: both kernels'
// tiering engines would Reserve/Install the same bare symbol names in one
// flat namespace and cross-wire each other's promoted definitions. Engine
// is the per-tenant unit that fixes this: everything definition-scoped
// (DownValues, registry entries, tiering state, the numerics compiler
// memo) lives inside the Engine, while everything content-addressed (the
// sharded compile cache's stable-key artifact tier, interned symbols,
// obs counters) stays process-shared so concurrent sessions warm each
// other's compiles without observing each other's definitions.
//
// Engines are not safe for concurrent evaluation — like the kernel they
// wrap, evaluation is single-threaded — but Eval serialises callers
// internally, so a serving layer may hand one Engine to multiple
// goroutines and get queueing rather than corruption. Abort (and the
// timeout plumbing riding it) is safe from any goroutine, as in the paper
// (F3).
package engine

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"wolfc/internal/core"
	"wolfc/internal/expr"
	"wolfc/internal/fnreg"
	"wolfc/internal/kernel"
	"wolfc/internal/numerics"
	"wolfc/internal/obs"
	"wolfc/internal/parser"
	"wolfc/internal/vm"
)

// Options configures a new Engine.
type Options struct {
	// ID labels the engine on /metrics (registry and tier-queue gauges,
	// per-function series). Empty = auto-generated "engine-<n>".
	ID string
	// Tiering enables profile-guided background compilation of hot
	// DownValue definitions (ISSUE 5) inside the engine's namespace.
	Tiering bool
	// Tier tunes the tiering policy when Tiering is set.
	Tier core.TierPolicy
	// LegacyVM also installs the legacy bytecode Compile (wolfrepl parity).
	LegacyVM bool
}

var engineSeq atomic.Uint64

// Engine is one isolated evaluation unit.
type Engine struct {
	ID       string
	Kernel   *kernel.Kernel
	Compiler *core.Compiler
	Tiering  *core.Tiering // nil unless Options.Tiering
	Registry *fnreg.Registry

	mu     sync.Mutex // serialises Eval/Close: the kernel is single-threaded
	closed bool
}

// New builds an engine: fresh kernel, registry namespace, compiler, and
// (optionally) tiering, all wired together. The caller owns the lifecycle
// and must Close it to release registry entries, obs slots, and the
// background compile pool.
func New(opts Options) *Engine {
	id := opts.ID
	if id == "" {
		id = fmt.Sprintf("engine-%d", engineSeq.Add(1))
	}
	k := kernel.New()
	k.Out = io.Discard // Eval captures printed output per call
	reg := fnreg.NewRegistry(id)
	if opts.LegacyVM {
		vm.Install(k)
	}
	c := core.InstallWith(k, reg)
	// Implicit numerics compiles (FindRoot's Newton loop) must resolve and
	// cache inside this namespace too, and die with the engine instead of
	// leaking through a process-global map.
	numerics.UseCompiler(k, c)
	e := &Engine{ID: id, Kernel: k, Compiler: c, Registry: reg}
	if opts.Tiering {
		e.Tiering = core.EnableTieringWith(k, reg, opts.Tier)
	}
	return e
}

// Result is one evaluation outcome.
type Result struct {
	Value  expr.Expr // nil when src held no expression
	Output string    // Print/message text emitted during evaluation
	// TimedOut reports that the request deadline fired and the evaluation
	// was aborted ($Aborted results from a user-level Abort[] leave it
	// false).
	TimedOut bool
}

// ErrClosed is returned by Eval after Close.
var ErrClosed = fmt.Errorf("engine: closed")

// Eval parses and evaluates src (one or more expressions; the last value
// wins, like a REPL feed) with an optional wall-clock timeout riding the
// kernel's abort machinery: the deadline fires k.Abort from a timer
// goroutine and the evaluation unwinds to $Aborted at the next abort poll
// (F3). timeout <= 0 means no deadline. Safe to call from any goroutine;
// calls serialise on the engine.
func (e *Engine) Eval(src string, timeout time.Duration) (Result, error) {
	return e.EvalCtx(context.Background(), src, timeout)
}

// EvalCtx is Eval with request context: a span context carried in ctx
// (obs.WithSpan, as minted by the serving layer per request) is attached
// to the kernel for the duration of the evaluation, so compile/invoke
// /fallback trace events — including background tier compiles this
// evaluation triggers — correlate back to the originating request. The
// context is not consulted for cancellation; deadlines ride the abort
// machinery as in Eval.
func (e *Engine) EvalCtx(ctx context.Context, src string, timeout time.Duration) (Result, error) {
	exprs, err := parser.ParseAll(src)
	if err != nil {
		return Result{}, fmt.Errorf("syntax: %w", err)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return Result{}, ErrClosed
	}
	if sc := obs.SpanFromContext(ctx); sc.Valid() {
		if sc.Engine == "" {
			sc.Engine = e.ID
		}
		e.Kernel.SetTraceSpan(sc)
		// Clear to the zero span under the same engine lock: the next
		// un-traced Eval must not inherit this request's identity.
		defer e.Kernel.SetTraceSpan(obs.SpanContext{})
	}
	var buf bytes.Buffer
	prevOut := e.Kernel.Out
	e.Kernel.Out = &buf
	defer func() { e.Kernel.Out = prevOut }()

	// Clear any stale abort before arming the deadline, then evaluate with
	// RunArmed: plain Run clears the flag at entry, which would lose a
	// deadline that fired between arming and evaluation on a short timeout.
	e.Kernel.ClearAbort()
	timedOut := new(atomic.Bool)
	if timeout > 0 {
		timer := time.AfterFunc(timeout, func() {
			timedOut.Store(true)
			e.Kernel.Abort()
		})
		defer timer.Stop()
	}
	res := Result{}
	for _, x := range exprs {
		out, err := e.Kernel.RunArmed(x)
		if err != nil {
			res.Output = buf.String()
			res.TimedOut = timedOut.Load()
			return res, err
		}
		res.Value = out
		if out == expr.SymAborted {
			break // don't run the rest of the feed on a dead deadline
		}
	}
	res.Output = buf.String()
	res.TimedOut = timedOut.Load()
	return res, nil
}

// Abort requests an asynchronous abort of whatever the engine is currently
// evaluating. Safe from any goroutine.
func (e *Engine) Abort() { e.Kernel.Abort() }

// Stats returns the tiering statistics (zero value when tiering is off).
func (e *Engine) Stats() core.TieringStats {
	if e.Tiering == nil {
		return core.TieringStats{}
	}
	return e.Tiering.Stats()
}

// WaitIdle blocks until background promotion work has drained (tests and
// benchmarks; no-op without tiering).
func (e *Engine) WaitIdle() {
	if e.Tiering != nil {
		e.Tiering.WaitIdle()
	}
}

// Close tears the engine down: stops the tiering workers, retires every
// registry entry, releases the engine's obs gauge and per-function metric
// slots, and drops kernel-associated state (the numerics compiler memo).
// Idempotent; Eval fails with ErrClosed afterwards.
func (e *Engine) Close() {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed {
		return
	}
	e.closed = true
	if e.Tiering != nil {
		e.Tiering.Close()
	}
	e.Registry.Release()
	obs.ReleaseEngineFuncs(e.ID)
	e.Kernel.ClearAssoc()
}
