package engine_test

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"wolfc/internal/core"
	"wolfc/internal/engine"
	"wolfc/internal/expr"
	"wolfc/internal/fnreg"
)

// tierPol promotes fast: stencil after 2 dispatches, O2 upgrade after 4
// compiled calls, single worker for determinism-friendly queues.
func tierPol() core.TierPolicy {
	return core.TierPolicy{Threshold: 4, Workers: 1}
}

// feed drives enough rounds of f[1..6] through e for the definition to
// promote interpreter → stencil → O2, collecting every printed result.
func feed(t *testing.T, e *engine.Engine) []string {
	t.Helper()
	var outs []string
	for round := 0; round < 6; round++ {
		for i := int64(1); i <= 6; i++ {
			res, err := e.Eval(fmt.Sprintf("f[%d]", i), 0)
			if err != nil {
				t.Fatalf("%s: f[%d]: %v", e.ID, i, err)
			}
			outs = append(outs, expr.InputForm(res.Value))
		}
		e.WaitIdle() // drain background compiles between rounds
	}
	return outs
}

// TestIsolationDifferential is the ISSUE 8 acceptance test: two engines in
// one process define the same symbol name with different bodies, both
// promote through stencil → O2 while running concurrently (under -race),
// and each produces bit-identical outputs to its own single-engine run.
func TestIsolationDifferential(t *testing.T) {
	defA := "f[n_] := 2*n + 1"
	defB := "f[n_] := n*n - 1"

	solo := func(def string) []string {
		e := engine.New(engine.Options{Tiering: true, Tier: tierPol()})
		defer e.Close()
		if _, err := e.Eval(def, 0); err != nil {
			t.Fatal(err)
		}
		return feed(t, e)
	}
	wantA, wantB := solo(defA), solo(defB)

	eA := engine.New(engine.Options{ID: "iso-a", Tiering: true, Tier: tierPol()})
	defer eA.Close()
	eB := engine.New(engine.Options{ID: "iso-b", Tiering: true, Tier: tierPol()})
	defer eB.Close()
	if _, err := eA.Eval(defA, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := eB.Eval(defB, 0); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	var gotA, gotB []string
	wg.Add(2)
	go func() { defer wg.Done(); gotA = feed(t, eA) }()
	go func() { defer wg.Done(); gotB = feed(t, eB) }()
	wg.Wait()

	if strings.Join(gotA, ",") != strings.Join(wantA, ",") {
		t.Errorf("engine A diverged from its solo run:\n got %v\nwant %v", gotA, wantA)
	}
	if strings.Join(gotB, ",") != strings.Join(wantB, ",") {
		t.Errorf("engine B diverged from its solo run:\n got %v\nwant %v", gotB, wantB)
	}

	for _, e := range []*engine.Engine{eA, eB} {
		s := e.Stats()
		if s.Promotions == 0 {
			t.Errorf("%s: definition never promoted", e.ID)
		}
		if s.StencilPromotions == 0 {
			t.Errorf("%s: promotion skipped the stencil tier", e.ID)
		}
		if s.Upgrades == 0 {
			t.Errorf("%s: stencil entry never upgraded to O2", e.ID)
		}
	}

	// The namespaces must really be disjoint: each engine holds its own
	// live entry for "f", and neither leaked into the process default.
	entA, okA := eA.Registry.Lookup("f")
	entB, okB := eB.Registry.Lookup("f")
	if !okA || !okB {
		t.Fatalf("expected a live registry entry for f in both engines (A %v, B %v)", okA, okB)
	}
	if entA == entB {
		t.Fatal("both engines share one registry entry for f")
	}
	if _, ok := fnreg.Default().Lookup("f"); ok {
		t.Fatal("engine promotion leaked into the process-default registry")
	}
}

// TestEvalTimeout checks that a request deadline rides the abort machinery:
// a runaway evaluation unwinds to $Aborted and is flagged as timed out.
func TestEvalTimeout(t *testing.T) {
	e := engine.New(engine.Options{})
	defer e.Close()
	start := time.Now()
	res, err := e.Eval("While[True, 1]", 50*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if expr.InputForm(res.Value) != "$Aborted" {
		t.Fatalf("result = %s, want $Aborted", expr.InputForm(res.Value))
	}
	if !res.TimedOut {
		t.Fatal("TimedOut not set")
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("abort took %v", d)
	}
	// The engine stays usable and the stale flag does not kill the next
	// evaluation.
	res, err = e.Eval("1 + 1", time.Second)
	if err != nil || expr.InputForm(res.Value) != "2" {
		t.Fatalf("post-timeout eval = %s, %v", expr.InputForm(res.Value), err)
	}
}

// TestOutputCapture checks Print output lands in Result.Output, per call.
func TestOutputCapture(t *testing.T) {
	e := engine.New(engine.Options{})
	defer e.Close()
	res, err := e.Eval(`Print["hello"]; 42`, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Output, "hello") {
		t.Fatalf("Output = %q, want it to contain hello", res.Output)
	}
	if expr.InputForm(res.Value) != "42" {
		t.Fatalf("Value = %s", expr.InputForm(res.Value))
	}
	res, err = e.Eval("1", 0)
	if err != nil || res.Output != "" {
		t.Fatalf("second eval Output = %q, want empty", res.Output)
	}
}

// TestCloseReleases checks engine shutdown frees what it owns: registry
// entries retire, kernel-associated state drops, Eval refuses.
func TestCloseReleases(t *testing.T) {
	e := engine.New(engine.Options{Tiering: true, Tier: tierPol()})
	if _, err := e.Eval("g[n_] := n + 7", 0); err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 3; round++ {
		for i := int64(0); i < 4; i++ {
			if _, err := e.Eval(fmt.Sprintf("g[%d]", i), 0); err != nil {
				t.Fatal(err)
			}
		}
		e.WaitIdle()
	}
	if len(e.Registry.Names()) == 0 {
		t.Fatal("expected a live registry entry before Close")
	}
	// FindRoot memoises a numerics compiler on the kernel.
	if _, err := e.Eval("FindRoot[x^2 - 2, {x, 1.0}]", 0); err != nil {
		t.Fatal(err)
	}
	if _, ok := e.Kernel.Assoc("numerics.compiler"); !ok {
		t.Fatal("numerics compiler memo missing before Close")
	}
	e.Close()
	e.Close() // idempotent
	if n := len(e.Registry.Names()); n != 0 {
		t.Fatalf("%d registry entries survive Close", n)
	}
	if _, ok := e.Kernel.Assoc("numerics.compiler"); ok {
		t.Fatal("kernel assoc state survives Close")
	}
	if _, err := e.Eval("1", 0); err != engine.ErrClosed {
		t.Fatalf("Eval after Close = %v, want ErrClosed", err)
	}
}
