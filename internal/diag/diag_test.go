package diag

import (
	"fmt"
	"testing"

	"wolfc/internal/expr"
)

func TestPosition(t *testing.T) {
	text := "ab\ncde\nf"
	cases := []struct {
		offset int
		want   Pos
	}{
		{0, Pos{1, 1}},
		{1, Pos{1, 2}},
		{2, Pos{1, 3}}, // the newline itself
		{3, Pos{2, 1}},
		{6, Pos{2, 4}},
		{7, Pos{3, 1}},
		{99, Pos{3, 2}}, // clamped past end
		{-1, Pos{1, 1}}, // clamped before start
	}
	for _, c := range cases {
		if got := Position(text, c.offset); got != c.want {
			t.Errorf("Position(%d) = %v, want %v", c.offset, got, c.want)
		}
	}
}

func TestDiagnosticRendering(t *testing.T) {
	d := Newf(Type, "T001", "no overload of %s", "Plus").
		WithSubject(expr.New(expr.Sym("Plus"), expr.FromInt64(1))).
		WithPos("prog.wl", Pos{2, 7})
	want := `type error in Plus[1] at prog.wl:2:7: no overload of Plus [T001]`
	if d.Error() != want {
		t.Fatalf("got %q, want %q", d.Error(), want)
	}
	p := Newf(PassStage, "X901", "broke SSA").WithPass("cse")
	if got := p.Error(); got != "pass error in pass cse: broke SSA [X901]" {
		t.Fatalf("pass rendering: %q", got)
	}
}

func TestSpanTableSkipsInternedSymbols(t *testing.T) {
	src := NewSource("t", "x + y")
	x := expr.Sym("x")
	src.SetSpan(x, 0, 1)
	if _, ok := src.SpanOf(x); ok {
		t.Fatal("interned symbol must never carry a span")
	}
	n := expr.New(expr.Sym("Plus"), x, expr.Sym("y"))
	src.SetSpan(n, 0, 5)
	src.CopySpan(x, n)
	if _, ok := src.spans[x]; ok {
		t.Fatal("CopySpan must not record spans on symbols")
	}
}

func TestCopySpanFirstWins(t *testing.T) {
	src := NewSource("t", "f[g[1]]")
	inner := expr.New(expr.Sym("g"), expr.FromInt64(1))
	outer := expr.New(expr.Sym("f"), inner)
	src.SetSpan(inner, 2, 6)
	src.SetSpan(outer, 0, 7)
	// A rewrite replacing outer keeps outer's position...
	rewritten := expr.New(expr.Sym("h"), inner)
	src.CopySpan(rewritten, outer)
	if sp, _ := src.SpanOf(rewritten); sp.Start != 0 {
		t.Fatalf("rewritten span = %+v", sp)
	}
	// ...and a later copy from elsewhere must not overwrite it.
	src.CopySpan(rewritten, inner)
	if sp, _ := src.SpanOf(rewritten); sp.Start != 0 {
		t.Fatalf("span overwritten: %+v", sp)
	}
}

func TestSpanOfFallsBackToDescendants(t *testing.T) {
	src := NewSource("t", "f[g[1]]")
	inner := expr.New(expr.Sym("g"), expr.FromInt64(1))
	src.SetSpan(inner, 2, 6)
	// A rebuilt parent with no span of its own positions through the child.
	parent := expr.New(expr.Sym("f"), inner)
	sp, ok := src.SpanOf(parent)
	if !ok || sp.Start != 2 {
		t.Fatalf("fallback span = %+v ok=%v", sp, ok)
	}
}

func TestResolveFillsChain(t *testing.T) {
	src := NewSource("prog.wl", "f[x] +\ng[y]")
	subject := expr.New(expr.Sym("g"), expr.Sym("y"))
	src.SetSpan(subject, 7, 11)
	inner := Newf(Type, "T001", "boom").WithSubject(subject)
	wrapped := fmt.Errorf("compiling Main: %w", inner)
	if got := Resolve(wrapped, src); got != wrapped {
		t.Fatal("Resolve must return the error unchanged")
	}
	if inner.Pos != (Pos{2, 1}) || inner.File != "prog.wl" {
		t.Fatalf("not resolved: pos=%v file=%q", inner.Pos, inner.File)
	}
	// nil-safety.
	if Resolve(nil, src) != nil || Resolve(wrapped, nil) != wrapped {
		t.Fatal("nil handling broken")
	}
}
