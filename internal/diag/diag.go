// Package diag implements the compiler's structured, source-located
// diagnostics. Every user-facing failure in the pipeline — parse, binding,
// lowering, type inference, the optimisation passes, code generation — is a
// Diagnostic: a coded message from a named stage, anchored either directly
// at a source position (parse errors) or at the MExpr node that produced
// the failing IR (everything downstream). A Source carries the original
// program text together with a span side-table filled in by the parser and
// preserved through macro expansion and binding analysis, so a type error
// deep in TWIR can still be reported as "type error in Part[...] at 2:7".
package diag

import (
	"errors"
	"fmt"
	"strings"

	"wolfc/internal/expr"
)

// Stage names the pipeline stage a diagnostic originates from. The stage is
// part of the rendered message ("parse error ...", "type error ...").
type Stage string

const (
	// Parse covers lexer and parser failures.
	Parse Stage = "parse"
	// MacroStage covers macro-expansion failures (non-terminating rules).
	MacroStage Stage = "macro"
	// Bind covers binding-analysis failures (scoping, parameter forms).
	Bind Stage = "binding"
	// Lower covers MExpr→WIR lowering failures.
	Lower Stage = "lower"
	// Type covers type-inference failures.
	Type Stage = "type"
	// PassStage covers optimisation-pass failures, including SSA
	// verification between passes and recovered pass panics.
	PassStage Stage = "pass"
	// Codegen covers backend failures.
	Codegen Stage = "codegen"
)

// Pos is a 1-based line:column source position. The zero value means
// "unknown".
type Pos struct {
	Line, Col int
}

// Valid reports whether the position is known.
func (p Pos) Valid() bool { return p.Line > 0 }

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Span is a half-open byte-offset range [Start, End) in a Source's text.
type Span struct {
	Start, End int
}

// Diagnostic is one structured compiler diagnostic. It implements error;
// the rendered form is
//
//	<stage> error[ in <subject>][ at [file:]line:col]: <msg> [<code>]
//
// matching the paper artifact's user-visible error style while carrying
// enough structure for tools (stage, code, position) to filter and group.
type Diagnostic struct {
	Stage Stage
	// Code identifies the diagnostic kind (P001, T003, X901, ...): the
	// first letter names the stage, the number the specific failure.
	Code string
	Msg  string
	// File and Pos locate the diagnostic; Pos is filled either at creation
	// (parse errors) or later by Resolve from the Subject's span.
	File string
	Pos  Pos
	// Subject is the MExpr node the failure is anchored to, when one is
	// known. Resolve uses it to recover a position; the renderer shows its
	// InputForm so errors stay actionable even without source text.
	Subject expr.Expr
	// Pass names the offending optimisation pass for Stage == PassStage.
	Pass string
}

// Newf builds a diagnostic with a formatted message.
func Newf(stage Stage, code, format string, args ...any) *Diagnostic {
	return &Diagnostic{Stage: stage, Code: code, Msg: fmt.Sprintf(format, args...)}
}

// WithSubject anchors the diagnostic at an MExpr node and returns it.
func (d *Diagnostic) WithSubject(e expr.Expr) *Diagnostic {
	d.Subject = e
	return d
}

// WithPos sets an explicit position and returns the diagnostic.
func (d *Diagnostic) WithPos(file string, pos Pos) *Diagnostic {
	d.File = file
	d.Pos = pos
	return d
}

// WithPass tags the diagnostic with the pass that produced it.
func (d *Diagnostic) WithPass(name string) *Diagnostic {
	d.Pass = name
	return d
}

func (d *Diagnostic) Error() string {
	var b strings.Builder
	b.WriteString(string(d.Stage))
	b.WriteString(" error")
	if d.Pass != "" {
		fmt.Fprintf(&b, " in pass %s", d.Pass)
	} else if d.Subject != nil {
		form := expr.InputForm(d.Subject)
		if len(form) > 40 {
			form = form[:37] + "..."
		}
		fmt.Fprintf(&b, " in %s", form)
	}
	if d.Pos.Valid() {
		b.WriteString(" at ")
		if d.File != "" {
			b.WriteString(d.File)
			b.WriteString(":")
		}
		b.WriteString(d.Pos.String())
	}
	b.WriteString(": ")
	b.WriteString(d.Msg)
	if d.Code != "" {
		fmt.Fprintf(&b, " [%s]", d.Code)
	}
	return b.String()
}

// Position converts a byte offset in text to a 1-based line:column. Offsets
// past the end of text report the position just after the last rune.
func Position(text string, offset int) Pos {
	if offset > len(text) {
		offset = len(text)
	}
	if offset < 0 {
		offset = 0
	}
	line, col := 1, 1
	for i := 0; i < offset; i++ {
		if text[i] == '\n' {
			line++
			col = 1
		} else {
			col++
		}
	}
	return Pos{Line: line, Col: col}
}

// Source is one compiled source unit: a name (file path or a synthetic
// label), the program text, and the span side-table mapping MExpr nodes to
// the text ranges they were parsed from. Spans survive tree rewrites when
// each rewriting stage copies them onto rebuilt nodes (CopySpan); lookups
// fall back to a node's children so a rewritten parent can still be
// positioned by any surviving original subexpression.
type Source struct {
	Name string
	Text string
	// spans is keyed by node pointer. Interned atoms (symbols) are shared
	// process-wide across unrelated programs, so they are never recorded;
	// positions for them resolve through their enclosing Normal node.
	spans map[expr.Expr]Span
}

// NewSource builds an empty source unit for the given text.
func NewSource(name, text string) *Source {
	return &Source{Name: name, Text: text, spans: map[expr.Expr]Span{}}
}

// SetSpan records the span of a node. Interned symbols are skipped: one
// *Symbol pointer serves every occurrence in the process, so a span for it
// would leak across programs.
func (s *Source) SetSpan(e expr.Expr, start, end int) {
	if s == nil || e == nil {
		return
	}
	if _, interned := e.(*expr.Symbol); interned {
		return
	}
	s.spans[e] = Span{Start: start, End: end}
}

// CopySpan gives dst the span of src (typically: a rewritten node inherits
// the position of the node it replaced). A missing src span is a no-op, as
// is an already-positioned dst — the first recorded span for a node is its
// parse position and must not be overwritten by later rewrites.
func (s *Source) CopySpan(dst, src expr.Expr) {
	if s == nil || dst == nil || src == nil || dst == src {
		return
	}
	if _, interned := dst.(*expr.Symbol); interned {
		return
	}
	if _, have := s.spans[dst]; have {
		return
	}
	if sp, ok := s.spans[src]; ok {
		s.spans[dst] = sp
	}
}

// SpanOf returns the recorded span of e, falling back to the first
// positioned descendant (preorder) when e itself was rebuilt by a rewrite
// that could not preserve provenance.
func (s *Source) SpanOf(e expr.Expr) (Span, bool) {
	if s == nil || e == nil {
		return Span{}, false
	}
	if sp, ok := s.spans[e]; ok {
		return sp, true
	}
	if n, ok := e.(*expr.Normal); ok {
		if sp, ok := s.SpanOf(n.Head()); ok {
			return sp, true
		}
		for _, a := range n.Args() {
			if sp, ok := s.SpanOf(a); ok {
				return sp, true
			}
		}
	}
	return Span{}, false
}

// PosOf returns the line:column of e's span start.
func (s *Source) PosOf(e expr.Expr) (Pos, bool) {
	sp, ok := s.SpanOf(e)
	if !ok {
		return Pos{}, false
	}
	return Position(s.Text, sp.Start), true
}

// Resolve fills in position information for every Diagnostic in err's chain
// from the source's span table. It returns err unchanged (diagnostics are
// mutated in place), so call sites can keep their wrap-and-return style. A
// nil source or nil error is a no-op.
func Resolve(err error, src *Source) error {
	if err == nil || src == nil {
		return err
	}
	for e := err; e != nil; {
		var d *Diagnostic
		if !errors.As(e, &d) {
			break
		}
		if !d.Pos.Valid() && d.Subject != nil {
			if pos, ok := src.PosOf(d.Subject); ok {
				d.Pos = pos
			}
		}
		if d.File == "" && d.Pos.Valid() {
			d.File = src.Name
		}
		e = errors.Unwrap(d)
	}
	return err
}
