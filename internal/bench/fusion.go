package bench

import (
	"fmt"
	"io"

	"wolfc/internal/codegen"
	"wolfc/internal/core"
	"wolfc/internal/kernel"
	"wolfc/internal/parser"
)

// Fusion microbenchmarks (ISSUE 2): dispatch-bound scalar kernels where the
// closure-per-instruction overhead dominates, run with superinstruction
// fusion on and off. All three are single-threaded by construction.

// FusionKernels lists the dispatch-bound kernels in display order.
func FusionKernels() []string { return []string{"scalarloop", "mandelfuse", "partloop"} }

// FusionDefaultSize returns the paper-scale workload parameter.
func FusionDefaultSize(name string) int {
	switch name {
	case "scalarloop":
		return 5_000_000 // loop trip count
	case "mandelfuse":
		return 400 // grid side; ≤50 escape iterations per pixel
	case "partloop":
		return 500_000 // vector length; 20 update sweeps
	}
	return 0
}

// fusionScalarLoopSrc is the tight scalar loop: one multiply-accumulate and
// one induction step per iteration — the worst case for per-instruction
// dispatch.
const fusionScalarLoopSrc = `Function[{Typed[n, "MachineInteger"]},
	Module[{s = 0, i = 1},
		While[i <= n, s = s + i*i; i = i + 1];
		s]]`

// fusionMandelbrotSrc is the Mandelbrot-style escape iteration in unboxed
// real arithmetic over an n x n grid (the paper's iterateFirstBound shape).
const fusionMandelbrotSrc = `Function[{Typed[n, "MachineInteger"]},
	Module[{total = 0, px = 1, py = 1, cr = 0., ci = 0., zr = 0., zi = 0., t = 0., k = 0},
		While[px <= n,
			py = 1;
			While[py <= n,
				cr = -2. + 3.*px/n;
				ci = -1.25 + 2.5*py/n;
				zr = 0.; zi = 0.; k = 0;
				While[k < 50 && zr*zr + zi*zi < 4.,
					t = zr*zr - zi*zi + cr;
					zi = 2.*zr*zi + ci;
					zr = t;
					k = k + 1];
				total = total + k;
				py = py + 1];
			px = px + 1];
		total]]`

// fusionPartLoopSrc is the Part-heavy tensor loop: each sweep is a fused
// load-op-store per element when fusion is on.
const fusionPartLoopSrc = `Function[{Typed[n, "MachineInteger"]},
	Module[{v = ConstantArray[0, n], s = 0, i = 1, p = 1},
		While[i <= n, v[[i]] = i; i = i + 1];
		While[p <= 20,
			i = 1;
			While[i <= n, v[[i]] = Mod[v[[i]]*31 + i, 65521]; i = i + 1];
			p = p + 1];
		i = 1;
		While[i <= n, s = s + v[[i]]; i = i + 1];
		s]]`

// PrepareFusionKernel compiles one fusion kernel with the given FuseLevel
// (codegen.FuseOff for the unfused baseline, 0/FuseFull for the default).
// Loop optimizations stay on in both configurations so the measurement
// isolates superinstruction fusion itself.
func PrepareFusionKernel(name string, size int, fuseLevel int) (Runner, error) {
	k := kernel.New()
	k.Out = io.Discard
	c := core.NewCompiler(k)
	c.FuseLevel = fuseLevel
	c.Parallelism = 1
	var src string
	switch name {
	case "scalarloop":
		src = fusionScalarLoopSrc
	case "mandelfuse":
		src = fusionMandelbrotSrc
	case "partloop":
		src = fusionPartLoopSrc
	default:
		return nil, fmt.Errorf("bench: unknown fusion kernel %q", name)
	}
	ccf, err := c.FunctionCompile(parser.MustParse(src))
	if err != nil {
		return nil, err
	}
	n := int64(size)
	return func() string { return fmt.Sprint(ccf.CallRaw(n)) }, nil
}

// FuseOffLevel re-exports the backend's "fusion disabled" level so cmd
// callers don't need a codegen import.
const FuseOffLevel = codegen.FuseOff
