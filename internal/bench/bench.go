package bench

import (
	"fmt"
	"io"
	"math/rand"

	"wolfc/internal/core"
	"wolfc/internal/expr"
	"wolfc/internal/kernel"
	"wolfc/internal/parser"
	"wolfc/internal/runtime"
	"wolfc/internal/types"
	"wolfc/internal/vm"
)

// Impl selects the implementation under measurement (the bars of Figure 2).
type Impl string

const (
	// ImplGo is the hand-written Go reference (the paper's hand-tuned C).
	ImplGo Impl = "go"
	// ImplCompiled is the new compiler with abort handling on (default).
	ImplCompiled Impl = "compiled"
	// ImplCompiledNoAbort disables abort checks (Figure 2's second series).
	ImplCompiledNoAbort Impl = "compiled-noabort"
	// ImplBytecode is the legacy bytecode compiler on the WVM.
	ImplBytecode Impl = "bytecode"
	// ImplInterp is the plain interpreter.
	ImplInterp Impl = "interpreter"
)

// Impls lists the Figure 2 series in display order.
func Impls() []Impl {
	return []Impl{ImplGo, ImplCompiled, ImplCompiledNoAbort, ImplBytecode, ImplInterp}
}

// Names lists the benchmarks: Figure 2's seven plus Figure 1's random walk.
func Names() []string {
	return []string{"fnv1a", "mandelbrot", "dot", "blur", "histogram", "primeq", "qsort", "randomwalk"}
}

// Describe returns the benchmark's workload description.
func Describe(name string) string { return describe(name) }

// DefaultSize returns the paper's workload parameter for a benchmark.
func DefaultSize(name string) int {
	switch name {
	case "fnv1a":
		return 1_000_000 // string length (§6)
	case "mandelbrot":
		return 1000 // max iterations (§6)
	case "dot":
		return 1000 // matrix dimension (§6: 1000x1000)
	case "blur":
		return 1000 // image side (§6: 1000x1000)
	case "histogram":
		return 1_000_000 // element count (§6)
	case "primeq":
		return 1_000_000 // range (§6)
	case "qsort":
		return 1 << 15 // pre-sorted list length (§6)
	case "randomwalk":
		return 100_000 // walk length (§1, Figure 1)
	}
	return 0
}

// Runner executes one prepared benchmark operation and returns a checksum
// value used to validate cross-implementation agreement.
type Runner func() string

// Prepare builds a Runner for (benchmark, implementation, size). All
// compilation happens here; the Runner measures only execution.
func Prepare(name string, impl Impl, size int) (Runner, error) {
	k := kernel.New()
	k.Out = io.Discard
	k.Seed(42)
	k.IterationLimit = 1 << 62 // interpreter workloads legitimately run long
	c := core.NewCompiler(k)
	if impl == ImplCompiledNoAbort {
		c.Options.AbortHandling = false
	}
	switch name {
	case "fnv1a":
		return prepareFNV1a(k, c, impl, size)
	case "mandelbrot":
		return prepareMandelbrot(k, c, impl, size)
	case "dot":
		return prepareDot(k, c, impl, size)
	case "blur":
		return prepareBlur(k, c, impl, size)
	case "histogram":
		return prepareHistogram(k, c, impl, size)
	case "primeq":
		return preparePrimeQ(k, c, impl, size)
	case "qsort":
		return prepareQSort(k, c, impl, size)
	case "randomwalk":
		return prepareRandomWalk(k, c, impl, size)
	}
	return nil, fmt.Errorf("bench: unknown benchmark %q", name)
}

// --- helpers ---

func realTensor(v []float64, dims ...int) *runtime.Tensor {
	t := runtime.NewTensor(runtime.KR64, dims...)
	copy(t.F, v)
	t.MarkShared()
	return t
}

func intTensor(v []int64, dims ...int) *runtime.Tensor {
	t := runtime.NewTensor(runtime.KI64, dims...)
	copy(t.I, v)
	t.MarkShared()
	return t
}

func vmRealTensor(v []float64, dims ...int) *vm.Tensor {
	t := vm.NewRealTensor(dims...)
	copy(t.R, v)
	return t
}

func vmIntTensor(v []int64, dims ...int) *vm.Tensor {
	t := vm.NewIntTensor(dims...)
	copy(t.I, v)
	return t
}

// interpApply builds an interpreter call closure: the held function applied
// to the prepared arguments.
func interpApply(k *kernel.Kernel, fn expr.Expr, args ...expr.Expr) func() expr.Expr {
	call := expr.New(fn, args...)
	return func() expr.Expr {
		out, err := k.Run(call)
		if err != nil {
			panic(fmt.Sprintf("interpreter benchmark: %v", err))
		}
		return out
	}
}

func sumTensorF(t *runtime.Tensor) float64 {
	s := 0.0
	for _, v := range t.F {
		s += v
	}
	return s
}

func sumTensorI(t *runtime.Tensor) int64 {
	s := int64(0)
	for _, v := range t.I {
		s += v
	}
	return s
}

func sumF(v []float64) float64 {
	s := 0.0
	for _, x := range v {
		s += x
	}
	return s
}

func sumI(v []int64) int64 {
	s := int64(0)
	for _, x := range v {
		s += x
	}
	return s
}

func sumExprList(e expr.Expr) float64 {
	s := 0.0
	expr.Walk(e, func(x expr.Expr) bool {
		switch v := x.(type) {
		case *expr.Integer:
			if v.IsMachine() {
				s += float64(v.Int64())
			}
		case *expr.Real:
			s += v.V
		}
		return true
	})
	return s
}

// --- per-benchmark preparation ---

func prepareFNV1a(k *kernel.Kernel, c *core.Compiler, impl Impl, size int) (Runner, error) {
	input := makeASCIIString(size)
	switch impl {
	case ImplGo:
		return func() string { return fmt.Sprint(fnv1aGo(input)) }, nil
	case ImplCompiled, ImplCompiledNoAbort:
		ccf, err := c.FunctionCompile(parser.MustParse(fnv1aNewSrc))
		if err != nil {
			return nil, err
		}
		return func() string { return fmt.Sprint(ccf.CallRaw(input)) }, nil
	case ImplBytecode:
		cf, err := vm.CompileExpr(k, vmCompileExpr("{codes, _Integer, 1}", fnv1aCodesBody))
		if err != nil {
			return nil, err
		}
		codes := make([]int64, len(input))
		for i := 0; i < len(input); i++ {
			codes[i] = int64(input[i])
		}
		t := vmIntTensor(codes, len(codes))
		return func() string {
			out, err := cf.Call(k, vm.TensorValue(t))
			if err != nil {
				panic(err)
			}
			return fmt.Sprint(out.I)
		}, nil
	case ImplInterp:
		codes := make([]expr.Expr, len(input))
		for i := 0; i < len(input); i++ {
			codes[i] = expr.FromInt64(int64(input[i]))
		}
		run := interpApply(k, interpFn("codes", fnv1aCodesBody), expr.List(codes...))
		return func() string { return expr.InputForm(run()) }, nil
	}
	return nil, badImpl(impl)
}

func prepareMandelbrot(k *kernel.Kernel, c *core.Compiler, impl Impl, size int) (Runner, error) {
	maxIter := int64(size)
	switch impl {
	case ImplGo:
		return func() string { return fmt.Sprint(mandelbrotGo(maxIter)) }, nil
	case ImplCompiled, ImplCompiledNoAbort:
		ccf, err := c.FunctionCompile(newFn(`Typed[maxIter, "MachineInteger"]`, mandelbrotBody))
		if err != nil {
			return nil, err
		}
		return func() string { return fmt.Sprint(ccf.CallRaw(maxIter)) }, nil
	case ImplBytecode:
		cf, err := vm.CompileExpr(k, vmCompileExpr("{maxIter, _Integer}", mandelbrotBody))
		if err != nil {
			return nil, err
		}
		return func() string {
			out, err := cf.Call(k, vm.IntValue(maxIter))
			if err != nil {
				panic(err)
			}
			return fmt.Sprint(out.I)
		}, nil
	case ImplInterp:
		run := interpApply(k, interpFn("maxIter", mandelbrotBody), expr.FromInt64(maxIter))
		return func() string { return expr.InputForm(run()) }, nil
	}
	return nil, badImpl(impl)
}

func prepareDot(k *kernel.Kernel, c *core.Compiler, impl Impl, size int) (Runner, error) {
	n := size
	a := matrixData(n, 0.1)
	b := matrixData(n, 0.9)
	switch impl {
	case ImplGo:
		return func() string { return fmt.Sprintf("%.4f", sumF(dotGo(n, a, b))) }, nil
	case ImplCompiled, ImplCompiledNoAbort:
		ccf, err := c.FunctionCompile(newFn(
			`Typed[a, "Tensor"["Real64", 2]], Typed[b, "Tensor"["Real64", 2]]`, "Dot[a, b]"))
		if err != nil {
			return nil, err
		}
		ta := realTensor(a, n, n)
		tb := realTensor(b, n, n)
		return func() string {
			out := ccf.CallRaw(ta, tb).(*runtime.Tensor)
			return fmt.Sprintf("%.4f", sumTensorF(out))
		}, nil
	case ImplBytecode:
		cf, err := vm.CompileExpr(k, vmCompileExpr("{a, _Real, 2}, {b, _Real, 2}", "Dot[a, b]"))
		if err != nil {
			return nil, err
		}
		ta := vmRealTensor(a, n, n)
		tb := vmRealTensor(b, n, n)
		return func() string {
			out, err := cf.Call(k, vm.TensorValue(ta), vm.TensorValue(tb))
			if err != nil {
				panic(err)
			}
			s := 0.0
			for _, v := range out.T.R {
				s += v
			}
			return fmt.Sprintf("%.4f", s)
		}, nil
	case ImplInterp:
		ea := realsToExpr(a, n, n)
		eb := realsToExpr(b, n, n)
		run := interpApply(k, interpFn("a, b", "Dot[a, b]"), ea, eb)
		return func() string { return fmt.Sprintf("%.4f", sumExprList(run())) }, nil
	}
	return nil, badImpl(impl)
}

func realsToExpr(v []float64, rows, cols int) expr.Expr {
	out := make([]expr.Expr, rows)
	for i := 0; i < rows; i++ {
		row := make([]expr.Expr, cols)
		for j := 0; j < cols; j++ {
			row[j] = expr.FromFloat(v[i*cols+j])
		}
		out[i] = expr.List(row...)
	}
	return expr.List(out...)
}

func prepareBlur(k *kernel.Kernel, c *core.Compiler, impl Impl, size int) (Runner, error) {
	rows, cols := size, size
	img := imageData(rows, cols)
	params := `Typed[img, "Tensor"["Real64", 2]], Typed[rows, "MachineInteger"], Typed[cols, "MachineInteger"]`
	switch impl {
	case ImplGo:
		return func() string { return fmt.Sprintf("%.4f", sumF(blurGo(img, rows, cols))) }, nil
	case ImplCompiled, ImplCompiledNoAbort:
		ccf, err := c.FunctionCompile(newFn(params, blurBody))
		if err != nil {
			return nil, err
		}
		t := realTensor(img, rows, cols)
		return func() string {
			out := ccf.CallRaw(t, int64(rows), int64(cols)).(*runtime.Tensor)
			return fmt.Sprintf("%.4f", sumTensorF(out))
		}, nil
	case ImplBytecode:
		cf, err := vm.CompileExpr(k, vmCompileExpr(
			"{img, _Real, 2}, {rows, _Integer}, {cols, _Integer}", blurBody))
		if err != nil {
			return nil, err
		}
		t := vmRealTensor(img, rows, cols)
		return func() string {
			out, err := cf.Call(k, vm.TensorValue(t), vm.IntValue(int64(rows)), vm.IntValue(int64(cols)))
			if err != nil {
				panic(err)
			}
			s := 0.0
			for _, v := range out.T.R {
				s += v
			}
			return fmt.Sprintf("%.4f", s)
		}, nil
	case ImplInterp:
		run := interpApply(k, interpFn("img, rows, cols", blurBody),
			realsToExpr(img, rows, cols), expr.FromInt64(int64(rows)), expr.FromInt64(int64(cols)))
		return func() string { return fmt.Sprintf("%.4f", sumExprList(run())) }, nil
	}
	return nil, badImpl(impl)
}

func prepareHistogram(k *kernel.Kernel, c *core.Compiler, impl Impl, size int) (Runner, error) {
	data := uniformInts(size)
	switch impl {
	case ImplGo:
		return func() string { return fmt.Sprintf("%d %d", sumI(histogramGo(data)), histogramGo(data)[0]) }, nil
	case ImplCompiled, ImplCompiledNoAbort:
		ccf, err := c.FunctionCompile(newFn(`Typed[data, "Tensor"["Integer64", 1]]`, histogramBody))
		if err != nil {
			return nil, err
		}
		t := intTensor(data, len(data))
		return func() string {
			out := ccf.CallRaw(t).(*runtime.Tensor)
			return fmt.Sprintf("%d %d", sumTensorI(out), out.I[0])
		}, nil
	case ImplBytecode:
		cf, err := vm.CompileExpr(k, vmCompileExpr("{data, _Integer, 1}", histogramBody))
		if err != nil {
			return nil, err
		}
		t := vmIntTensor(data, len(data))
		return func() string {
			out, err := cf.Call(k, vm.TensorValue(t))
			if err != nil {
				panic(err)
			}
			s := int64(0)
			for _, v := range out.T.I {
				s += v
			}
			return fmt.Sprintf("%d %d", s, out.T.I[0])
		}, nil
	case ImplInterp:
		elems := make([]expr.Expr, len(data))
		for i, v := range data {
			elems[i] = expr.FromInt64(v)
		}
		run := interpApply(k, interpFn("data", histogramBody), expr.List(elems...))
		return func() string {
			out := run()
			l, _ := expr.IsNormal(out, expr.SymList)
			return fmt.Sprintf("%d %s", int64(sumExprList(out)), expr.InputForm(l.Arg(1)))
		}, nil
	}
	return nil, badImpl(impl)
}

func preparePrimeQ(k *kernel.Kernel, c *core.Compiler, impl Impl, size int) (Runner, error) {
	limit := int64(size)
	src := spliceSeeds(newFn(`Typed[limit, "MachineInteger"]`, primeQBody))
	switch impl {
	case ImplGo:
		seeds := primesBelow(1 << 14)
		return func() string { return fmt.Sprint(primeqGo(limit, seeds)) }, nil
	case ImplCompiled, ImplCompiledNoAbort:
		ccf, err := c.FunctionCompile(src)
		if err != nil {
			return nil, err
		}
		return func() string { return fmt.Sprint(ccf.CallRaw(limit)) }, nil
	case ImplBytecode:
		vmSrc := spliceSeeds(vmCompileExpr("{limit, _Integer}", primeQBody))
		cf, err := vm.CompileExpr(k, vmSrc)
		if err != nil {
			return nil, err
		}
		return func() string {
			out, err := cf.Call(k, vm.IntValue(limit))
			if err != nil {
				panic(err)
			}
			return fmt.Sprint(out.I)
		}, nil
	case ImplInterp:
		fn := spliceSeeds(interpFn("limit", primeQBody))
		run := interpApply(k, fn, expr.FromInt64(limit))
		return func() string { return expr.InputForm(run()) }, nil
	}
	return nil, badImpl(impl)
}

// PreparePrimeQPerCandidate builds the §6 PrimeQ constants ablation: a
// per-candidate compiled primality test driven from outside, so the
// handling of the embedded seed-table constant is paid per call. naive
// rebuilds the constant array each call; otherwise it is interned once.
func PreparePrimeQPerCandidate(size int, naive bool) (Runner, error) {
	k := kernel.New()
	k.Out = io.Discard
	c := core.NewCompiler(k)
	c.NaiveConstants = naive
	src := spliceSeeds(newFn(`Typed[n, "MachineInteger"]`, primeQOneBody))
	ccf, err := c.FunctionCompile(src)
	if err != nil {
		return nil, err
	}
	limit := int64(size)
	return func() string {
		count := int64(0)
		for n := int64(2); n < limit; n++ {
			count += ccf.CallRaw(n).(int64)
		}
		return fmt.Sprint(count)
	}, nil
}

// PrepareQSortCopyAblation builds the §6 QSort ablation: every Part
// assignment copies (the conservative mutability protocol).
func PrepareQSortCopyAblation(size int) (Runner, error) {
	k := kernel.New()
	k.Out = io.Discard
	c := core.NewCompiler(k)
	c.Options.DisableCopyElision = true
	return prepareQSort(k, c, ImplCompiled, size)
}

func prepareQSort(k *kernel.Kernel, c *core.Compiler, impl Impl, size int) (Runner, error) {
	input := sortedReals(size)
	switch impl {
	case ImplGo:
		return func() string {
			out := qsortGo(input, func(a, b float64) bool { return a < b })
			return fmt.Sprintf("%.4f %.4f", out[0], sumF(out))
		}, nil
	case ImplCompiled, ImplCompiledNoAbort:
		// The helper is declared in the type environment as a
		// Wolfram-source implementation, resolved and compiled at the
		// concrete instantiation (paper SS4.4/SS4.5); it is recursive, and
		// takes the comparator as a function value.
		c.TypeEnv.DeclareFunction(&types.FuncDef{
			Name: "BenchQSortHelper",
			Type: c.TypeEnv.MustParseSpec(parser.MustParse(
				`{"Tensor"["Real64", 1], "Integer64", "Integer64", {"Real64", "Real64"} -> "Boolean"} -> "Integer64"`)),
			Impl: parser.MustParse(qsortHelperSrc),
		})
		ccf, err := c.FunctionCompile(parser.MustParse(qsortMainSrc))
		if err != nil {
			return nil, err
		}
		cmpCCF, err := c.FunctionCompile(parser.MustParse(
			`Function[{Typed[a, "Real64"], Typed[b, "Real64"]}, a < b]`))
		if err != nil {
			return nil, err
		}
		cmpVal := cmpCCF.FunctionValue()
		t := realTensor(input, len(input))
		return func() string {
			out := ccf.CallRaw(t, cmpVal).(*runtime.Tensor)
			return fmt.Sprintf("%.4f %.4f", out.F[0], sumTensorF(out))
		}, nil
	case ImplBytecode:
		// Limitation L1/F6: "Function passing cannot be represented in the
		// bytecode compiler, and therefore this program cannot be
		// represented" (SS6).
		return nil, fmt.Errorf("bytecode compiler cannot represent QSort (function values are outside the WVM's datatypes)")
	case ImplInterp:
		// Interpreted functional quicksort via DownValues recursion.
		setup := `qsHelp[a0_, lo_, hi_, cmp_] := Module[{a = a0, m, i, j, t, pivot},
  If[lo < hi,
   m = Quotient[lo + hi, 2];
   t = a[[m]]; a[[m]] = a[[hi]]; a[[hi]] = t;
   pivot = a[[hi]];
   i = lo - 1; j = lo;
   While[j < hi,
    If[cmp[a[[j]], pivot], i = i + 1; t = a[[i]]; a[[i]] = a[[j]]; a[[j]] = t];
    j = j + 1];
   i = i + 1;
   t = a[[i]]; a[[i]] = a[[hi]]; a[[hi]] = t;
   a = qsHelp[a, lo, i - 1, cmp];
   a = qsHelp[a, i + 1, hi, cmp]];
  a]`
		if _, err := k.Run(parser.MustParse(setup)); err != nil {
			return nil, err
		}
		k.RecursionLimit = 1 << 20
		elems := make([]expr.Expr, len(input))
		for i, v := range input {
			elems[i] = expr.FromFloat(v)
		}
		run := interpApply(k,
			parser.MustParse("Function[{v}, qsHelp[v, 1, Length[v], Function[{a, b}, a < b]]]"),
			expr.List(elems...))
		return func() string {
			out := run()
			l, _ := expr.IsNormal(out, expr.SymList)
			return fmt.Sprintf("%.4f %.4f", l.Arg(1).(*expr.Real).V, sumExprList(out))
		}, nil
	}
	return nil, badImpl(impl)
}

func prepareRandomWalk(k *kernel.Kernel, c *core.Compiler, impl Impl, size int) (Runner, error) {
	length := size
	switch impl {
	case ImplGo:
		rng := rand.New(rand.NewSource(42))
		return func() string {
			out := randomWalkGo(length, rng.Float64)
			last := out[len(out)-1]
			return fmt.Sprintf("%d %.2f", len(out), last[0]+last[1])
		}, nil
	case ImplCompiled, ImplCompiledNoAbort:
		ccf, err := c.FunctionCompile(parser.MustParse(randomWalkNestListSrc))
		if err != nil {
			return nil, err
		}
		return func() string {
			out := ccf.CallRaw(int64(length)).(*runtime.Tensor)
			return fmt.Sprint(out.Len())
		}, nil
	case ImplBytecode:
		// Figure 1 In[2]: the bytecode compiler needs the structural
		// rewrite into an explicit loop (no NestList, no function values).
		cf, err := vm.CompileExpr(k, vmCompileExpr("{len, _Integer}", randomWalkLoopBody))
		if err != nil {
			return nil, err
		}
		return func() string {
			out, err := cf.Call(k, vm.IntValue(int64(length)))
			if err != nil {
				panic(err)
			}
			return fmt.Sprint(out.T.Len())
		}, nil
	case ImplInterp:
		run := interpApply(k, parser.MustParse(
			`Function[{len}, NestList[Module[{arg = RandomReal[{0., 6.283185307179586}]}, {-Cos[arg], Sin[arg]} + #] &, {0., 0.}, len]]`),
			expr.FromInt64(int64(length)))
		return func() string { return fmt.Sprint(expr.Length(run())) }, nil
	}
	return nil, badImpl(impl)
}

func badImpl(impl Impl) error { return fmt.Errorf("bench: unknown implementation %q", impl) }
