package bench

import (
	"math"

	"wolfc/internal/blas"
)

// Hand-written Go reference implementations: the stand-ins for the paper's
// hand-tuned C (§6). Each mirrors the Wolfram source algorithm exactly.

func fnv1aGo(s string) int64 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return int64(h)
}

func mandelbrotGo(maxIter int64) int64 {
	total := int64(0)
	for xi := 0; xi <= 20; xi++ {
		cr := -1.0 + 0.1*float64(xi)
		for yi := 0; yi <= 15; yi++ {
			ci := -1.0 + 0.1*float64(yi)
			zr, zi := 0.0, 0.0
			iters := int64(0)
			for iters < maxIter && zr*zr+zi*zi < 4.0 {
				t := zr*zr - zi*zi + cr
				zi = 2.0*zr*zi + ci
				zr = t
				iters++
			}
			total += iters
		}
	}
	return total
}

func dotGo(n int, a, b []float64) []float64 {
	out := make([]float64, n*n)
	blas.DGemm(n, n, n, a, b, out)
	return out
}

func blurGo(img []float64, rows, cols int) []float64 {
	out := make([]float64, rows*cols)
	for i := 1; i < rows-1; i++ {
		for j := 1; j < cols-1; j++ {
			out[i*cols+j] = (img[(i-1)*cols+j-1] + 2*img[(i-1)*cols+j] + img[(i-1)*cols+j+1] +
				2*img[i*cols+j-1] + 4*img[i*cols+j] + 2*img[i*cols+j+1] +
				img[(i+1)*cols+j-1] + 2*img[(i+1)*cols+j] + img[(i+1)*cols+j+1]) / 16
		}
	}
	return out
}

func histogramGo(data []int64) []int64 {
	bins := make([]int64, 256)
	for _, v := range data {
		bins[v]++
	}
	return bins
}

// primeqGo mirrors the Wolfram source: seed-table binary search below 2^14,
// four-witness Rabin-Miller above.
func primeqGo(limit int64, seeds []int64) int64 {
	count := int64(0)
	for n := int64(2); n < limit; n++ {
		isP := false
		if n < 16384 {
			lo, hi := 0, len(seeds)-1
			for lo <= hi {
				mid := (lo + hi) / 2
				switch {
				case seeds[mid] == n:
					isP = true
					lo = hi + 1
				case seeds[mid] < n:
					lo = mid + 1
				default:
					hi = mid - 1
				}
			}
		} else if n%2 != 0 {
			d, r := n-1, 0
			for d%2 == 0 {
				d /= 2
				r++
			}
			isP = true
			for wi := 0; wi < 4 && isP; wi++ {
				witness := seeds[wi]
				x, b, e := int64(1), witness%n, d
				for e > 0 {
					if e%2 == 1 {
						x = x * b % n
					}
					b = b * b % n
					e /= 2
				}
				if x != 1 && x != n-1 {
					composite := true
					for i := 1; i < r && composite; i++ {
						x = x * x % n
						if x == n-1 {
							composite = false
						}
					}
					if composite {
						isP = false
					}
				}
			}
		}
		if isP {
			count++
		}
	}
	return count
}

// qsortGo sorts a copy with the same middle-pivot Lomuto scheme, taking the
// comparator as a function value (Go pays the indirect-call cost too).
func qsortGo(v []float64, cmp func(a, b float64) bool) []float64 {
	out := append([]float64{}, v...)
	var rec func(lo, hi int)
	rec = func(lo, hi int) {
		if lo >= hi {
			return
		}
		m := (lo + hi) / 2
		out[m], out[hi] = out[hi], out[m]
		pivot := out[hi]
		i := lo - 1
		for j := lo; j < hi; j++ {
			if cmp(out[j], pivot) {
				i++
				out[i], out[j] = out[j], out[i]
			}
		}
		i++
		out[i], out[hi] = out[hi], out[i]
		rec(lo, i-1)
		rec(i+1, hi)
	}
	rec(0, len(out)-1)
	return out
}

// randomWalkGo generates the Figure 1 walk with the supplied random source.
func randomWalkGo(length int, randReal func() float64) [][2]float64 {
	out := make([][2]float64, length+1)
	x, y := 0.0, 0.0
	for i := 1; i <= length; i++ {
		arg := randReal() * 6.283185307179586
		x -= math.Cos(arg)
		y += math.Sin(arg)
		out[i] = [2]float64{x, y}
	}
	return out
}
