// Package bench implements the paper's evaluation (§6): the seven
// benchmarks of Figure 2 (FNV1a, Mandelbrot, Dot, Blur, Histogram, PrimeQ,
// QSort) plus the Figure 1 random walk, each as Wolfram source shared by
// the interpreter, the bytecode compiler, and the new compiler, together
// with hand-written Go reference implementations standing in for the
// paper's hand-tuned C.
package bench

import (
	"fmt"
	"strings"

	"wolfc/internal/expr"
	"wolfc/internal/parser"
	"wolfc/internal/pattern"
)

// fnv1aNewSrc is the new-compiler FNV-1a over a string's UTF-8 bytes
// (§6: "The new compiler has builtin support for strings and operates on
// the UTF8 bytes within the string"). 32-bit FNV-1a with explicit masking —
// the language's arithmetic is arbitrary-precision-on-overflow, so the
// wraparound must be written out, exactly as a Wolfram user would.
const fnv1aNewSrc = `Function[{Typed[s, "String"]},
 Module[{hash = 2166136261, i = 1, n = Native` + "`" + `StringByteLength[s]},
  While[i <= n,
   hash = BitAnd[BitXor[hash, Native` + "`" + `StringByte[s, i]]*16777619, 4294967295];
   i = i + 1];
  hash]]`

// fnv1aCodesSrc operates on a precomputed integer vector of character
// codes: the paper's workaround for the bytecode compiler ("a workaround is
// used to represent them as an integer vector of their character codes").
// The same body feeds the interpreter measurement.
const fnv1aCodesBody = `Module[{hash = 2166136261, i = 1, n = Length[codes]},
  While[i <= n,
   hash = BitAnd[BitXor[hash, codes[[i]]]*16777619, 4294967295];
   i = i + 1];
  hash]`

// mandelbrotBody scans the [-1,1]x[-1,0.5] region at 0.1 resolution (§6),
// in real arithmetic so every implementation compiles it natively.
const mandelbrotBody = `Module[{total = 0, xi = 0, yi = 0, cr = 0., ci = 0., zr = 0., zi = 0., t = 0., iters = 0},
  While[xi <= 20,
   cr = -1. + 0.1*xi;
   yi = 0;
   While[yi <= 15,
    ci = -1. + 0.1*yi;
    zr = 0.; zi = 0.; iters = 0;
    While[iters < maxIter && zr*zr + zi*zi < 4.,
     t = zr*zr - zi*zi + cr;
     zi = 2.*zr*zi + ci;
     zr = t;
     iters = iters + 1];
    total = total + iters;
    yi = yi + 1];
   xi = xi + 1];
  total]`

// blurBody is the 3x3 Gaussian blur stencil over a single-channel image
// (§6), writing a fresh output image.
const blurBody = `Module[{out = ConstantArray[0., {rows, cols}], i = 2, j = 2},
  While[i < rows,
   j = 2;
   While[j < cols,
    out[[i, j]] = (img[[i - 1, j - 1]] + 2.*img[[i - 1, j]] + img[[i - 1, j + 1]] +
      2.*img[[i, j - 1]] + 4.*img[[i, j]] + 2.*img[[i, j + 1]] +
      img[[i + 1, j - 1]] + 2.*img[[i + 1, j]] + img[[i + 1, j + 1]])/16.;
    j = j + 1];
   i = i + 1];
  out]`

// histogramBody is the 256-bin histogram (§6).
const histogramBody = `Module[{bins = ConstantArray[0, 256], i = 1, n = Length[data], b = 0},
  While[i <= n,
   b = data[[i]] + 1;
   bins[[b]] = bins[[b]] + 1;
   i = i + 1];
  bins]`

// primeQBody counts primes below limit with the Rabin–Miller test (§6).
// Small integers are answered from an embedded seed table of the primes
// below 2^14 (binary search), exactly as the paper embeds a generated seed
// table as a constant array. The placeholder symbol PRIMESEEDS is spliced
// with the literal table before compilation.
const primeQBody = `Module[{count = 0, n = 2, isP = 0, d = 0, r = 0, x = 0, i = 0,
   wi = 0, witness = 0, lo = 1, hi = 0, mid = 0, seeds = PRIMESEEDS,
   composite = 0, b = 0, e = 0},
  While[n < limit,
   isP = 0;
   If[n < 16384,
    lo = 1; hi = Length[seeds];
    While[lo <= hi,
     mid = Quotient[lo + hi, 2];
     If[seeds[[mid]] == n,
      isP = 1; lo = hi + 1,
      If[seeds[[mid]] < n, lo = mid + 1, hi = mid - 1]]],
    If[Mod[n, 2] == 0,
     isP = 0,
     d = n - 1; r = 0;
     While[Mod[d, 2] == 0, d = Quotient[d, 2]; r = r + 1];
     isP = 1;
     wi = 1;
     While[wi <= 4 && isP == 1,
      witness = seeds[[wi]];
      x = 1; b = Mod[witness, n]; e = d;
      While[e > 0,
       If[Mod[e, 2] == 1, x = Mod[x*b, n]];
       b = Mod[b*b, n];
       e = Quotient[e, 2]];
      If[x != 1 && x != n - 1,
       composite = 1;
       i = 1;
       While[i < r && composite == 1,
        x = Mod[x*x, n];
        If[x == n - 1, composite = 0];
        i = i + 1];
       If[composite == 1, isP = 0]];
      wi = wi + 1]]];
   count = count + isP;
   n = n + 1];
  count]`

// primeQOneBody tests a single candidate; the constants ablation calls it
// once per integer so the per-call cost of the embedded seed table is
// visible (the §6 "non-optimal handling of constant arrays").
const primeQOneBody = `Module[{isP = 0, d = 0, r = 0, x = 0, i = 0,
   wi = 0, witness = 0, lo = 1, hi = 0, mid = 0, seeds = PRIMESEEDS,
   composite = 0, b = 0, e = 0},
  If[n < 16384,
   lo = 1; hi = Length[seeds];
   While[lo <= hi,
    mid = Quotient[lo + hi, 2];
    If[seeds[[mid]] == n,
     isP = 1; lo = hi + 1,
     If[seeds[[mid]] < n, lo = mid + 1, hi = mid - 1]]],
   If[Mod[n, 2] == 0,
    isP = 0,
    d = n - 1; r = 0;
    While[Mod[d, 2] == 0, d = Quotient[d, 2]; r = r + 1];
    isP = 1;
    wi = 1;
    While[wi <= 4 && isP == 1,
     witness = seeds[[wi]];
     x = 1; b = Mod[witness, n]; e = d;
     While[e > 0,
      If[Mod[e, 2] == 1, x = Mod[x*b, n]];
      b = Mod[b*b, n];
      e = Quotient[e, 2]];
     If[x != 1 && x != n - 1,
      composite = 1;
      i = 1;
      While[i < r && composite == 1,
       x = Mod[x*x, n];
       If[x == n - 1, composite = 0];
       i = i + 1];
      If[composite == 1, isP = 0]];
     wi = wi + 1]]];
  isP]`

// qsortHelperSrc is the textbook in-place quicksort with a caller-supplied
// comparator (§6: "The code is polymorphic and written in a functional
// style, where user define and pass the comparator function"). The bytecode
// compiler cannot represent it — function values are outside its datatypes.
const qsortHelperSrc = `Function[{arr, lo, hi, cmp},
 Module[{a = arr, m = 0, i = 0, j = 0, t = 0., pivot = 0.},
  If[lo < hi,
   m = Quotient[lo + hi, 2];
   t = a[[m]]; a[[m]] = a[[hi]]; a[[hi]] = t;
   pivot = a[[hi]];
   i = lo - 1;
   j = lo;
   While[j < hi,
    If[cmp[a[[j]], pivot],
     i = i + 1;
     t = a[[i]]; a[[i]] = a[[j]]; a[[j]] = t];
    j = j + 1];
   i = i + 1;
   t = a[[i]]; a[[i]] = a[[hi]]; a[[hi]] = t;
   BenchQSortHelper[a, lo, i - 1, cmp];
   BenchQSortHelper[a, i + 1, hi, cmp]];
  0]]`

// qsortMainSrc copies the input once (the language's mutability semantics
// forbid sorting the caller's list in place — the 1.2x the paper measures)
// and sorts the copy.
const qsortMainSrc = `Function[{Typed[v0, "Tensor"["Real64", 1]],
  Typed[cmp, {"Real64", "Real64"} -> "Boolean"]},
 Module[{v = Native` + "`" + `Copy[v0]},
  BenchQSortHelper[v, 1, Length[v], cmp];
  v]]`

// randomWalkNestListSrc is Figure 1's In[3]: the same NestList code the
// interpreter runs, compiled by the new compiler with only a Typed
// annotation added.
const randomWalkNestListSrc = `Function[{Typed[len, "MachineInteger"]},
 NestList[
  Module[{arg = RandomReal[{0., 6.283185307179586}]}, {-Cos[arg], Sin[arg]} + #] &,
  {0., 0.},
  len]]`

// randomWalkLoopBody is Figure 1's In[2] analogue: the structural rewrite
// the bytecode compiler requires (no function values, no NestList).
const randomWalkLoopBody = `Module[{out = ConstantArray[0., {len + 1, 2}], arg = 0., x = 0., y = 0., i = 1},
  While[i <= len,
   arg = RandomReal[{0., 6.283185307179586}];
   x = x - Cos[arg];
   y = y + Sin[arg];
   out[[i + 1, 1]] = x;
   out[[i + 1, 2]] = y;
   i = i + 1];
  out]`

// FnSource returns the typed Function source text of a Figure 2 kernel, for
// callers that compile out-of-band with their own options or instrumentation
// (wolfbench -report, the verify-each corpus sweep).
func FnSource(name string) (string, bool) {
	switch name {
	case "mandelbrot":
		return `Function[{Typed[maxIter, "MachineInteger"]}, ` + mandelbrotBody + `]`, true
	case "fnv1a":
		return fnv1aNewSrc, true
	case "dot":
		return `Function[{Typed[a, "Tensor"["Real64", 2]], Typed[b, "Tensor"["Real64", 2]]}, Dot[a, b]]`, true
	case "blur":
		return `Function[{Typed[img, "Tensor"["Real64", 2]], Typed[rows, "MachineInteger"], Typed[cols, "MachineInteger"]}, ` + blurBody + `]`, true
	case "histogram":
		return `Function[{Typed[data, "Tensor"["Integer64", 1]]}, ` + histogramBody + `]`, true
	}
	return "", false
}

// newFn wraps a body with a typed Function head for the new compiler.
func newFn(params string, body string) expr.Expr {
	return parser.MustParse("Function[{" + params + "}, " + body + "]")
}

// vmCompileExpr wraps a body with a classic Compile head for the bytecode
// compiler.
func vmCompileExpr(specs string, body string) expr.Expr {
	return parser.MustParse("Compile[{" + specs + "}, " + body + "]")
}

// interpFn wraps a body as an untyped interpreter Function.
func interpFn(params string, body string) expr.Expr {
	return parser.MustParse("Function[{" + params + "}, " + body + "]")
}

// primesBelow returns all primes < n (the seed table generator the paper
// runs in the interpreter).
func primesBelow(n int) []int64 {
	sieve := make([]bool, n)
	var out []int64
	for i := 2; i < n; i++ {
		if sieve[i] {
			continue
		}
		out = append(out, int64(i))
		for j := i * i; j < n; j += i {
			sieve[j] = true
		}
	}
	return out
}

// spliceSeeds replaces the PRIMESEEDS placeholder with the literal table.
func spliceSeeds(e expr.Expr) expr.Expr {
	primes := primesBelow(1 << 14)
	elems := make([]expr.Expr, len(primes))
	for i, p := range primes {
		elems[i] = expr.FromInt64(p)
	}
	table := expr.List(elems...)
	return pattern.Substitute(e, pattern.Bindings{expr.Sym("PRIMESEEDS"): table})
}

// makeASCIIString builds the FNV1a input: a deterministic pseudo-random
// printable string of length n.
func makeASCIIString(n int) string {
	var b strings.Builder
	b.Grow(n)
	state := uint32(0x9e3779b9)
	for i := 0; i < n; i++ {
		state = state*1664525 + 1013904223
		b.WriteByte(byte(32 + (state>>24)%95))
	}
	return b.String()
}

// sortedReals builds QSort's pre-sorted input.
func sortedReals(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = float64(i) * 0.5
	}
	return out
}

// uniformInts builds Histogram's input: n deterministic values in [0, 256).
func uniformInts(n int) []int64 {
	out := make([]int64, n)
	state := uint64(88172645463325252)
	for i := range out {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		out[i] = int64(state % 256)
	}
	return out
}

// imageData builds Blur's input image (rows x cols, flat row-major).
func imageData(rows, cols int) []float64 {
	out := make([]float64, rows*cols)
	for i := range out {
		out[i] = float64((i*7919)%256) / 255.0
	}
	return out
}

// matrixData builds Dot's inputs.
func matrixData(n int, seed float64) []float64 {
	out := make([]float64, n*n)
	v := seed
	for i := range out {
		v = v*1.0001 + 0.37
		if v > 10 {
			v -= 10
		}
		out[i] = v
	}
	return out
}

func describe(name string) string {
	switch name {
	case "fnv1a":
		return "FNV1a hash of a 1e6-byte string"
	case "mandelbrot":
		return "Mandelbrot on [-1,1]x[-1,0.5], 0.1 resolution"
	case "dot":
		return "Dot product of two NxN matrices (shared BLAS)"
	case "blur":
		return "3x3 Gaussian blur of a single-channel image"
	case "histogram":
		return "256-bin histogram of 1e6 uniform integers"
	case "primeq":
		return "Rabin-Miller primality count over [0, 1e6)"
	case "qsort":
		return "textbook quicksort of a pre-sorted 2^15 list, comparator passed as a function"
	case "randomwalk":
		return "Figure 1 random walk (NestList)"
	}
	return fmt.Sprintf("unknown benchmark %q", name)
}
