package bench

import (
	"fmt"
	"io"
	"math"

	"wolfc/internal/core"
	"wolfc/internal/kernel"
	"wolfc/internal/runtime"
)

// ParallelKernels lists the worker-pool benchmark kernels in display order:
// the Dot/Blur/Histogram workloads from Figure 2 routed through the
// data-parallel natives, plus an element-wise Map over 10⁶ reals.
func ParallelKernels() []string { return []string{"dot", "blur", "histogram", "map"} }

// ParallelDefaultSize returns the workload parameter for a parallel kernel.
func ParallelDefaultSize(name string) int {
	switch name {
	case "dot", "blur":
		return 1000 // side of the square operand (§6 workloads)
	case "histogram", "map":
		return 1_000_000 // element count
	}
	return 0
}

// PrepareParallelKernel compiles one data-parallel kernel with the given
// Parallelism option (0 = process default, 1 = serial) and returns a
// Runner whose checksum is stable across worker counts — the parallel
// partitionings are bit-identical to the serial loops, so checksums from
// different worker counts must agree exactly.
func PrepareParallelKernel(name string, size, workers int) (Runner, error) {
	k := kernel.New()
	k.Out = io.Discard
	c := core.NewCompiler(k)
	c.Parallelism = workers
	switch name {
	case "dot":
		n := size
		a := matrixData(n, 0.1)
		b := matrixData(n, 0.9)
		ccf, err := c.FunctionCompile(newFn(
			`Typed[a, "Tensor"["Real64", 2]], Typed[b, "Tensor"["Real64", 2]]`, "Dot[a, b]"))
		if err != nil {
			return nil, err
		}
		ta := realTensor(a, n, n)
		tb := realTensor(b, n, n)
		return func() string {
			out := ccf.CallRaw(ta, tb).(*runtime.Tensor)
			return fmt.Sprintf("%x", checksumF(out.F))
		}, nil
	case "blur":
		rows, cols := size, size
		img := imageData(rows, cols)
		ccf, err := c.FunctionCompile(newFn(
			`Typed[img, "Tensor"["Real64", 2]]`, "Native`GaussianBlur[img]"))
		if err != nil {
			return nil, err
		}
		t := realTensor(img, rows, cols)
		return func() string {
			out := ccf.CallRaw(t).(*runtime.Tensor)
			return fmt.Sprintf("%x", checksumF(out.F))
		}, nil
	case "histogram":
		data := uniformInts(size)
		ccf, err := c.FunctionCompile(newFn(
			`Typed[data, "Tensor"["Integer64", 1]]`, "Native`Histogram[data, 256]"))
		if err != nil {
			return nil, err
		}
		t := intTensor(data, len(data))
		return func() string {
			out := ccf.CallRaw(t).(*runtime.Tensor)
			return fmt.Sprintf("%x", checksumI(out.I))
		}, nil
	case "map":
		v := realVector(size)
		ccf, err := c.FunctionCompile(newFn(
			`Typed[v, "Tensor"["Real64", 1]]`, "Exp[v]"))
		if err != nil {
			return nil, err
		}
		t := realTensor(v, len(v))
		return func() string {
			out := ccf.CallRaw(t).(*runtime.Tensor)
			return fmt.Sprintf("%x", checksumF(out.F))
		}, nil
	}
	return nil, fmt.Errorf("bench: unknown parallel kernel %q", name)
}

// realVector builds the parallel Map input: n deterministic reals in a
// range where Exp stays finite.
func realVector(n int) []float64 {
	out := make([]float64, n)
	v := 0.3
	for i := range out {
		v = v*1.0001 + 0.37
		if v > 10 {
			v -= 10
		}
		out[i] = v
	}
	return out
}

// checksumF hashes the exact bit patterns of the values (FNV-1a), so two
// runs agree only if every element is bit-identical.
func checksumF(v []float64) uint64 {
	h := uint64(14695981039346656037)
	for _, x := range v {
		bits := math.Float64bits(x)
		for s := 0; s < 64; s += 8 {
			h ^= (bits >> s) & 0xff
			h *= 1099511628211
		}
	}
	return h
}

func checksumI(v []int64) uint64 {
	h := uint64(14695981039346656037)
	for _, x := range v {
		u := uint64(x)
		for s := 0; s < 64; s += 8 {
			h ^= (u >> s) & 0xff
			h *= 1099511628211
		}
	}
	return h
}
