package bench

import (
	"strings"
	"testing"
)

// smallSize returns a fast test size per benchmark.
func smallSize(name string) int {
	switch name {
	case "fnv1a":
		return 2000
	case "mandelbrot":
		return 50
	case "dot":
		return 24
	case "blur":
		return 20
	case "histogram":
		return 3000
	case "primeq":
		return 20000
	case "qsort":
		return 1 << 8
	case "randomwalk":
		return 200
	}
	return 10
}

// TestImplementationsAgree checks that every implementation of every
// benchmark computes the same answer on a small workload — the correctness
// backbone behind the Figure 2 comparison.
func TestImplementationsAgree(t *testing.T) {
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			size := smallSize(name)
			want := ""
			for _, impl := range Impls() {
				if name == "randomwalk" && impl != ImplGo {
					// Random content differs per engine stream; shape is
					// checked separately below.
					continue
				}
				if name == "primeq" && impl == ImplInterp {
					// The interpreter needs a smaller range to finish in
					// test time; covered by TestPrimeQInterpreterSeedPath.
					continue
				}
				run, err := Prepare(name, impl, size)
				if err != nil {
					if name == "qsort" && impl == ImplBytecode {
						// Expected: the paper's point (§6).
						if !strings.Contains(err.Error(), "cannot represent") {
							t.Fatalf("unexpected qsort bytecode error: %v", err)
						}
						continue
					}
					t.Fatalf("Prepare(%s, %s): %v", name, impl, err)
				}
				got := run()
				if impl == ImplGo {
					want = got
					continue
				}
				if got != want {
					t.Errorf("%s/%s = %q, want %q (go reference)", name, impl, got, want)
				}
			}
		})
	}
}

func TestPrimeQInterpreterSeedPath(t *testing.T) {
	// Interpreter PrimeQ at a seed-table-only range agrees with Go.
	goRun, err := Prepare("primeq", ImplGo, 2000)
	if err != nil {
		t.Fatal(err)
	}
	inRun, err := Prepare("primeq", ImplInterp, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if g, i := goRun(), inRun(); g != i {
		t.Fatalf("interp primeq = %s, go = %s", i, g)
	}
}

func TestRandomWalkShapes(t *testing.T) {
	for _, impl := range []Impl{ImplCompiled, ImplBytecode, ImplInterp} {
		run, err := Prepare("randomwalk", impl, 100)
		if err != nil {
			t.Fatalf("%s: %v", impl, err)
		}
		if got := run(); got != "101" {
			t.Errorf("%s walk length = %s, want 101", impl, got)
		}
	}
}

func TestQSortCopyAblation(t *testing.T) {
	run, err := PrepareQSortCopyAblation(1 << 7)
	if err != nil {
		t.Fatal(err)
	}
	base, err := Prepare("qsort", ImplCompiled, 1<<7)
	if err != nil {
		t.Fatal(err)
	}
	if run() != base() {
		t.Fatal("copy ablation changed the answer")
	}
}

func TestRunnersAreRepeatable(t *testing.T) {
	// A Runner must be callable many times (benchmark harness contract).
	run, err := Prepare("histogram", ImplCompiled, 1000)
	if err != nil {
		t.Fatal(err)
	}
	first := run()
	for i := 0; i < 3; i++ {
		if got := run(); got != first {
			t.Fatalf("iteration %d diverged: %s vs %s", i, got, first)
		}
	}
	// QSort mutates its working copy; repeatability matters most there.
	qs, err := Prepare("qsort", ImplCompiled, 1<<7)
	if err != nil {
		t.Fatal(err)
	}
	qfirst := qs()
	if got := qs(); got != qfirst {
		t.Fatalf("qsort second run diverged: %s vs %s", got, qfirst)
	}
}

func TestSeedTable(t *testing.T) {
	primes := primesBelow(1 << 14)
	if len(primes) == 0 || primes[0] != 2 || primes[1] != 3 {
		t.Fatal("seed table broken")
	}
	// 1900 primes below 2^14 = 16384.
	if len(primes) != 1900 {
		t.Fatalf("prime count below 2^14 = %d, want 1900", len(primes))
	}
}
