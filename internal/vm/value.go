// Package vm implements the legacy bytecode compiler and the stack-based
// Wolfram Virtual Machine — the baseline the paper's new compiler is
// evaluated against (§2.2). It deliberately reproduces the baseline's design
// limitations: a fixed datatype set (machine integer, real, complex,
// boolean, and tensors of these), boxed stack values, copy-on-write-free
// copy-on-assignment for tensors, no function values, no strings, no
// inlining, and an escape instruction that calls the interpreter for
// unsupported expressions.
package vm

import (
	"fmt"

	"wolfc/internal/expr"
)

// Kind enumerates the VM's fixed datatypes (paper §2.2: "machine integers,
// reals, complex numbers, tensor representations of these scalars, and
// booleans").
type Kind uint8

const (
	KVoid Kind = iota
	KBool
	KInt
	KReal
	KComplex
	KTensor
)

func (k Kind) String() string {
	switch k {
	case KVoid:
		return "Void"
	case KBool:
		return "Boolean"
	case KInt:
		return "Integer"
	case KReal:
		return "Real"
	case KComplex:
		return "Complex"
	case KTensor:
		return "Tensor"
	}
	return "?"
}

// Value is a boxed VM value. Every stack slot carries the full box — the
// unboxing cost on each operation is part of the baseline the new compiler
// improves on (paper §6 "operates on boxed array ... unboxing overhead").
type Value struct {
	Kind Kind
	B    bool
	I    int64
	R    float64
	C    complex128
	T    *Tensor
}

// Typed constructors.
func BoolValue(b bool) Value          { return Value{Kind: KBool, B: b} }
func IntValue(i int64) Value          { return Value{Kind: KInt, I: i} }
func RealValue(r float64) Value       { return Value{Kind: KReal, R: r} }
func ComplexValue(c complex128) Value { return Value{Kind: KComplex, C: c} }
func TensorValue(t *Tensor) Value     { return Value{Kind: KTensor, T: t} }

// AsReal converts a numeric value to float64.
func (v Value) AsReal() (float64, bool) {
	switch v.Kind {
	case KInt:
		return float64(v.I), true
	case KReal:
		return v.R, true
	}
	return 0, false
}

func (v Value) String() string {
	switch v.Kind {
	case KVoid:
		return "Null"
	case KBool:
		if v.B {
			return "True"
		}
		return "False"
	case KInt:
		return fmt.Sprintf("%d", v.I)
	case KReal:
		return fmt.Sprintf("%g", v.R)
	case KComplex:
		return fmt.Sprintf("%g+%gI", real(v.C), imag(v.C))
	case KTensor:
		return v.T.String()
	}
	return "?"
}

// Tensor is the VM's boxed dense array: rank, dims, and a flat element
// slice of a single scalar kind.
type Tensor struct {
	Elem Kind // KInt, KReal, KBool, or KComplex
	Dims []int
	I    []int64
	R    []float64
	C    []complex128
}

// NewIntTensor allocates an integer tensor with the given dims.
func NewIntTensor(dims ...int) *Tensor {
	return &Tensor{Elem: KInt, Dims: dims, I: make([]int64, product(dims))}
}

// NewRealTensor allocates a real tensor with the given dims.
func NewRealTensor(dims ...int) *Tensor {
	return &Tensor{Elem: KReal, Dims: dims, R: make([]float64, product(dims))}
}

func product(dims []int) int {
	p := 1
	for _, d := range dims {
		p *= d
	}
	return p
}

// Len returns the first-dimension length.
func (t *Tensor) Len() int {
	if len(t.Dims) == 0 {
		return 0
	}
	return t.Dims[0]
}

// FlatLen returns the total number of scalar elements.
func (t *Tensor) FlatLen() int { return product(t.Dims) }

// Copy returns a deep copy. The bytecode VM copies eagerly on assignment and
// part-mutation — the paper's "copying on read ... major performance
// limiting factor" for the baseline (§3 F5).
func (t *Tensor) Copy() *Tensor {
	out := &Tensor{Elem: t.Elem, Dims: append([]int{}, t.Dims...)}
	out.I = append([]int64{}, t.I...)
	out.R = append([]float64{}, t.R...)
	out.C = append([]complex128{}, t.C...)
	return out
}

// flatIndex resolves possibly-negative 1-based multi-indices to a flat
// offset plus the number of consumed dims.
func (t *Tensor) flatIndex(idxs []int64) (int, error) {
	if len(idxs) > len(t.Dims) {
		return 0, fmt.Errorf("too many indices (%d) for rank-%d tensor", len(idxs), len(t.Dims))
	}
	off := 0
	stride := product(t.Dims)
	for d, ix := range idxs {
		stride /= t.Dims[d]
		i := int(ix)
		if i < 0 {
			i = t.Dims[d] + 1 + i
		}
		if i < 1 || i > t.Dims[d] {
			return 0, fmt.Errorf("index %d out of range for dimension %d (size %d)", ix, d+1, t.Dims[d])
		}
		off += (i - 1) * stride
	}
	return off, nil
}

// Part extracts t[[idxs...]]: a scalar when all dims are consumed, a
// sub-tensor copy otherwise.
func (t *Tensor) Part(idxs ...int64) (Value, error) {
	off, err := t.flatIndex(idxs)
	if err != nil {
		return Value{}, err
	}
	if len(idxs) == len(t.Dims) {
		switch t.Elem {
		case KInt:
			return IntValue(t.I[off]), nil
		case KReal:
			return RealValue(t.R[off]), nil
		case KComplex:
			return ComplexValue(t.C[off]), nil
		}
		return Value{}, fmt.Errorf("bad tensor element kind %v", t.Elem)
	}
	subDims := append([]int{}, t.Dims[len(idxs):]...)
	n := product(subDims)
	sub := &Tensor{Elem: t.Elem, Dims: subDims}
	switch t.Elem {
	case KInt:
		sub.I = append([]int64{}, t.I[off:off+n]...)
	case KReal:
		sub.R = append([]float64{}, t.R[off:off+n]...)
	case KComplex:
		sub.C = append([]complex128{}, t.C[off:off+n]...)
	}
	return TensorValue(sub), nil
}

// SetPart writes a scalar into t[[idxs...]] in place. Callers are
// responsible for copying first (the VM always copies; the new compiler's
// alias analysis usually avoids it).
func (t *Tensor) SetPart(v Value, idxs ...int64) error {
	if len(idxs) != len(t.Dims) {
		return fmt.Errorf("part assignment needs %d indices, got %d", len(t.Dims), len(idxs))
	}
	off, err := t.flatIndex(idxs)
	if err != nil {
		return err
	}
	switch t.Elem {
	case KInt:
		if v.Kind != KInt {
			return fmt.Errorf("cannot store %v into integer tensor", v.Kind)
		}
		t.I[off] = v.I
	case KReal:
		r, ok := v.AsReal()
		if !ok {
			return fmt.Errorf("cannot store %v into real tensor", v.Kind)
		}
		t.R[off] = r
	case KComplex:
		switch v.Kind {
		case KComplex:
			t.C[off] = v.C
		case KReal:
			t.C[off] = complex(v.R, 0)
		case KInt:
			t.C[off] = complex(float64(v.I), 0)
		default:
			return fmt.Errorf("cannot store %v into complex tensor", v.Kind)
		}
	default:
		return fmt.Errorf("bad tensor element kind %v", t.Elem)
	}
	return nil
}

func (t *Tensor) String() string {
	if len(t.Dims) == 1 && t.FlatLen() <= 8 {
		s := "{"
		for i := 0; i < t.FlatLen(); i++ {
			if i > 0 {
				s += ", "
			}
			switch t.Elem {
			case KInt:
				s += fmt.Sprintf("%d", t.I[i])
			case KReal:
				s += fmt.Sprintf("%g", t.R[i])
			case KComplex:
				s += fmt.Sprintf("%g", t.C[i])
			}
		}
		return s + "}"
	}
	return fmt.Sprintf("Tensor[%v, %v]", t.Elem, t.Dims)
}

// FromExpr converts an interpreter expression to a VM value.
func FromExpr(e expr.Expr) (Value, error) {
	switch x := e.(type) {
	case *expr.Integer:
		if !x.IsMachine() {
			return Value{}, fmt.Errorf("integer %s exceeds machine range", x)
		}
		return IntValue(x.Int64()), nil
	case *expr.Real:
		return RealValue(x.V), nil
	case *expr.Complex:
		return ComplexValue(complex(x.Re, x.Im)), nil
	case *expr.Symbol:
		if x == expr.SymTrue {
			return BoolValue(true), nil
		}
		if x == expr.SymFalse {
			return BoolValue(false), nil
		}
		if x == expr.SymNull {
			return Value{Kind: KVoid}, nil
		}
		return Value{}, fmt.Errorf("symbol %s is not a VM value", x.Name)
	case *expr.Rational:
		f, _ := x.V.Float64()
		return RealValue(f), nil
	case *expr.Normal:
		if _, ok := expr.IsNormal(x, expr.SymList); ok {
			return tensorFromList(x)
		}
	}
	return Value{}, fmt.Errorf("cannot convert %s to a VM value", expr.InputForm(e))
}

func tensorFromList(l *expr.Normal) (Value, error) {
	// Determine shape and element kind from the first traversal.
	dims := []int{}
	cur := expr.Expr(l)
	for {
		n, ok := expr.IsNormal(cur, expr.SymList)
		if !ok {
			break
		}
		dims = append(dims, n.Len())
		if n.Len() == 0 {
			break
		}
		cur = n.Arg(1)
	}
	elem := KInt
	var scan func(e expr.Expr, depth int) error
	var flatI []int64
	var flatR []float64
	first := true
	scan = func(e expr.Expr, depth int) error {
		if depth < len(dims) {
			n, ok := expr.IsNormal(e, expr.SymList)
			if !ok || n.Len() != dims[depth] {
				return fmt.Errorf("ragged or non-rectangular list")
			}
			for _, a := range n.Args() {
				if err := scan(a, depth+1); err != nil {
					return err
				}
			}
			return nil
		}
		switch x := e.(type) {
		case *expr.Integer:
			if !x.IsMachine() {
				return fmt.Errorf("big integer in tensor")
			}
			flatI = append(flatI, x.Int64())
			flatR = append(flatR, float64(x.Int64()))
		case *expr.Real:
			if first || elem == KInt {
				elem = KReal
			}
			flatI = append(flatI, int64(x.V))
			flatR = append(flatR, x.V)
		default:
			return fmt.Errorf("unsupported tensor element %s", expr.InputForm(e))
		}
		first = false
		return nil
	}
	if err := scan(l, 0); err != nil {
		return Value{}, err
	}
	t := &Tensor{Elem: elem, Dims: dims}
	if elem == KInt {
		t.I = flatI
	} else {
		t.R = flatR
	}
	return TensorValue(t), nil
}

// ToExpr converts a VM value back to an interpreter expression.
func ToExpr(v Value) expr.Expr {
	switch v.Kind {
	case KVoid:
		return expr.SymNull
	case KBool:
		return expr.Bool(v.B)
	case KInt:
		return expr.FromInt64(v.I)
	case KReal:
		return expr.FromFloat(v.R)
	case KComplex:
		return expr.FromComplex(real(v.C), imag(v.C))
	case KTensor:
		return tensorToExpr(v.T, 0, 0)
	}
	return expr.SymFailed
}

func tensorToExpr(t *Tensor, dim, off int) expr.Expr {
	if dim == len(t.Dims) {
		switch t.Elem {
		case KInt:
			return expr.FromInt64(t.I[off])
		case KReal:
			return expr.FromFloat(t.R[off])
		case KComplex:
			return expr.FromComplex(real(t.C[off]), imag(t.C[off]))
		}
		return expr.SymFailed
	}
	stride := 1
	for _, d := range t.Dims[dim+1:] {
		stride *= d
	}
	elems := make([]expr.Expr, t.Dims[dim])
	for i := range elems {
		elems[i] = tensorToExpr(t, dim+1, off+i*stride)
	}
	return expr.List(elems...)
}
