package vm

import (
	"testing"

	"wolfc/internal/expr"
	"wolfc/internal/parser"
)

// The legacy bytecode compiler's structural tensor runtime calls
// (OpRuntime Reverse/Flatten/Transpose/Take), §2.2's fixed-function style.
func TestCompileStructuralRuntimeOps(t *testing.T) {
	k := newKernel()
	cases := []struct{ src, arg, want string }{
		{`Compile[{{v, _Integer, 1}}, Reverse[v]]`, "{1, 2, 3}", "{3, 2, 1}"},
		{`Compile[{{v, _Integer, 1}}, Take[v, 2]]`, "{7, 8, 9}", "{7, 8}"},
		{`Compile[{{v, _Real, 2}}, Transpose[v]]`, "{{1., 2.}, {3., 4.}}", "{{1., 3.}, {2., 4.}}"},
		{`Compile[{{v, _Real, 2}}, Flatten[v]]`, "{{1., 2.}, {3., 4.}}", "{1., 2., 3., 4.}"},
		// The dynamic Part of a runtime-call result coerces through the
		// VM's fixed datatypes and widens to real — the §2.2 limitation the
		// baseline is built to exhibit.
		{`Compile[{{v, _Integer, 1}}, Total[Reverse[v]] + Take[v, 1][[1]]]`, "{5, 6, 7}", "23."},
	}
	for _, cse := range cases {
		cf := compileSrc(t, k, cse.src)
		arg, err := FromExpr(parser.MustParse(cse.arg))
		if err != nil {
			t.Fatal(err)
		}
		out := callScalar(t, k, cf, arg)
		if got := expr.InputForm(ToExpr(out)); got != cse.want {
			t.Fatalf("%s on %s = %s, want %s", cse.src, cse.arg, got, cse.want)
		}
	}
	// Take beyond the length is a runtime error, caught as the VM's
	// part-range condition.
	cf := compileSrc(t, k, `Compile[{{v, _Integer, 1}}, Take[v, 9]]`)
	arg, _ := FromExpr(parser.MustParse("{1, 2}"))
	if _, err := cf.Call(k, arg); err == nil {
		t.Fatal("Take[{1,2}, 9] must fail at runtime")
	}
}
