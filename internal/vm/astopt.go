package vm

import (
	"fmt"
	"sort"

	"wolfc/internal/expr"
)

// AST-level common subexpression elimination, the optimisation the paper
// attributes to the bytecode compiler (§2.2: "the bytecode compiler first
// performs optimizations on the AST, such as common sub-expression
// elimination"). A repeated pure subtree whose variables are never assigned
// anywhere in the body is hoisted into a Module temporary.

// pureCSEHeads are heads whose evaluation has no side effects and always
// yields the same value for the same inputs.
var pureCSEHeads = map[string]bool{
	"Plus": true, "Times": true, "Subtract": true, "Divide": true,
	"Power": true, "Minus": true, "Mod": true, "Quotient": true,
	"Sin": true, "Cos": true, "Tan": true, "Exp": true, "Log": true,
	"Sqrt": true, "Abs": true, "Floor": true, "Ceiling": true,
	"Round": true, "ArcTan": true, "Min": true, "Max": true,
	"Less": true, "LessEqual": true, "Greater": true, "GreaterEqual": true,
	"Equal": true, "Unequal": true, "BitAnd": true, "BitOr": true,
	"BitXor": true,
}

// cseOptimize hoists repeated pure subexpressions of body into Module
// temporaries. assigned is the set of symbols written anywhere in the body
// (their subtrees are not safe to hoist).
func cseOptimize(body expr.Expr) expr.Expr {
	assigned := map[*expr.Symbol]bool{}
	expr.Walk(body, func(e expr.Expr) bool {
		if n, ok := e.(*expr.Normal); ok {
			if h, ok := n.Head().(*expr.Symbol); ok && n.Len() >= 1 {
				switch h.Name {
				case "Set", "SetDelayed", "Increment", "Decrement",
					"AddTo", "SubtractFrom", "TimesBy", "DivideBy":
					if s, ok := n.Arg(1).(*expr.Symbol); ok {
						assigned[s] = true
					}
					// Part assignments mutate the underlying variable too.
					if p, ok := expr.IsNormal(n.Arg(1), expr.Sym("Part")); ok && p.Len() >= 1 {
						if s, ok := p.Arg(1).(*expr.Symbol); ok {
							assigned[s] = true
						}
					}
				case "Module", "Block", "With":
					// Locals of inner scopes are assigned by their inits.
					if l, ok := expr.IsNormal(n.Arg(1), expr.SymList); ok {
						for _, v := range l.Args() {
							if s, ok := v.(*expr.Symbol); ok {
								assigned[s] = true
							}
							if st, ok := expr.IsNormalN(v, expr.SymSet, 2); ok {
								if s, ok := st.Arg(1).(*expr.Symbol); ok {
									assigned[s] = true
								}
							}
						}
					}
				}
			}
		}
		return true
	})

	// Count every hoistable subtree (including nested occurrences).
	counts := map[uint64]int{}
	reps := map[uint64]expr.Expr{}
	expr.Walk(body, func(e expr.Expr) bool {
		if hoistable(e, assigned) {
			h := expr.Hash(e)
			counts[h]++
			reps[h] = e
		}
		return true
	})
	var candidates []expr.Expr
	for h, n := range counts {
		if n >= 2 {
			candidates = append(candidates, reps[h])
		}
	}
	// Largest subtrees first, so x*Sin[x] wins over Sin[x] when both
	// repeat; ties broken deterministically by FullForm.
	sort.Slice(candidates, func(i, j int) bool {
		si, sj := treeSize(candidates[i]), treeSize(candidates[j])
		if si != sj {
			return si > sj
		}
		return expr.FullForm(candidates[i]) < expr.FullForm(candidates[j])
	})

	var temps []expr.Expr // Set[tmp, subtree] initialisers
	out := body
	seq := 0
	for _, sub := range candidates {
		// Recount in the current tree: an earlier hoist may have consumed
		// these occurrences.
		n := 0
		expr.Walk(out, func(e expr.Expr) bool {
			if expr.SameQ(e, sub) {
				n++
				return false
			}
			return true
		})
		if n < 2 {
			continue
		}
		seq++
		tmp := expr.Sym(fmt.Sprintf("WVMCSE$%d", seq))
		temps = append(temps, expr.New(expr.SymSet, tmp, sub))
		out = expr.Replace(out, func(e expr.Expr) expr.Expr {
			if expr.SameQ(e, sub) {
				return tmp
			}
			return e
		})
	}
	if len(temps) == 0 {
		return body
	}
	return expr.New(expr.SymModule, expr.List(temps...), out)
}

// treeSize counts nodes.
func treeSize(e expr.Expr) int {
	n := 0
	expr.Walk(e, func(expr.Expr) bool { n++; return true })
	return n
}

// hoistable reports whether e is a non-trivial pure subtree over
// never-assigned variables.
func hoistable(e expr.Expr, assigned map[*expr.Symbol]bool) bool {
	n, ok := e.(*expr.Normal)
	if !ok || n.Len() == 0 {
		return false
	}
	h, ok := n.Head().(*expr.Symbol)
	if !ok || !pureCSEHeads[h.Name] {
		return false
	}
	pure := true
	expr.Walk(e, func(sub expr.Expr) bool {
		switch x := sub.(type) {
		case *expr.Symbol:
			if assigned[x] {
				pure = false
			}
		case *expr.Normal:
			if hh, ok := x.Head().(*expr.Symbol); ok {
				if !pureCSEHeads[hh.Name] {
					pure = false
				}
			} else {
				pure = false
			}
		}
		return pure
	})
	return pure
}
