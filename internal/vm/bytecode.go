package vm

import (
	"fmt"
	"strings"
)

// Op is a Wolfram Virtual Machine opcode. The WVM is a stack machine: each
// instruction pops its operands from and pushes its result to an operand
// stack of boxed Values.
type Op uint8

const (
	OpNop        Op = iota
	OpPushConst     // push consts[A]
	OpLoad          // push slot A
	OpStore         // pop into slot A
	OpDup           // duplicate top of stack
	OpPop           // discard top of stack
	OpJmp           // pc = A
	OpJmpIfFalse    // pop; if false pc = A
	OpJmpIfTrue     // pop; if true pc = A

	// Typed arithmetic. Integer forms are overflow-checked and raise a
	// numeric exception for interpreter fallback (F2).
	OpAddI
	OpAddR
	OpSubI
	OpSubR
	OpMulI
	OpMulR
	OpDivR
	OpModI
	OpQuotI
	OpNegI
	OpNegR
	OpPowI
	OpPowR
	OpBAnd
	OpBOr
	OpBXor
	OpShl
	OpShr
	OpToReal // coerce int on top of stack to real

	// Comparisons (typed).
	OpLtI
	OpLtR
	OpLeI
	OpLeR
	OpGtI
	OpGtR
	OpGeI
	OpGeR
	OpEqI
	OpEqR
	OpNeI
	OpNeR
	OpNot
	OpAndB // eager boolean and (operands already evaluated)
	OpOrB  // eager boolean or

	// Calls into the maths runtime: A = function id.
	OpMath1 // unary real function
	OpMath2 // binary real function

	// Tensor operations (boxed; see paper §6 on unboxing overhead).
	OpLength
	OpLengthV  // A = slot; length of a tensor variable without copying
	OpPart     // A = number of indices; pops indices then tensor
	OpPartV    // A = slot, B = number of indices; indexes the slot directly
	OpSetPart  // A = slot, B = number of indices; pops value then indices; mutates in place (slots uniquely own their tensors under copy-on-read)
	OpNewTable // unused placeholder; see OpRuntime for builders

	// Runtime library calls (Dot, Total, random, table building): A = id,
	// B = argc.
	OpRuntime

	// Escape hatch: evaluate escapes[A] in the interpreter with the current
	// variable bindings (paper §2.2 "inserts a statement which invokes the
	// interpreter at runtime").
	OpCallInterp

	// OpCoerce converts the dynamically-typed result of an interpreter
	// escape to the statically expected kind (A), raising a type error for
	// interpreter-fallback otherwise.
	OpCoerce

	// Abort polling at loop heads (F3).
	OpAbortCheck

	OpRet
)

var opNames = map[Op]string{
	OpNop: "Nop", OpPushConst: "PushConst", OpLoad: "Load", OpStore: "Store",
	OpDup: "Dup", OpPop: "Pop", OpJmp: "Jmp", OpJmpIfFalse: "JmpIfFalse",
	OpJmpIfTrue: "JmpIfTrue", OpAddI: "AddI", OpAddR: "AddR", OpSubI: "SubI",
	OpSubR: "SubR", OpMulI: "MulI", OpMulR: "MulR", OpDivR: "DivR",
	OpModI: "ModI", OpQuotI: "QuotI", OpNegI: "NegI", OpNegR: "NegR",
	OpPowI: "PowI", OpPowR: "PowR", OpBAnd: "BAnd", OpBOr: "BOr",
	OpBXor: "BXor", OpShl: "Shl", OpShr: "Shr", OpToReal: "ToReal", OpLtI: "LtI",
	OpLtR: "LtR", OpLeI: "LeI", OpLeR: "LeR", OpGtI: "GtI", OpGtR: "GtR",
	OpGeI: "GeI", OpGeR: "GeR", OpEqI: "EqI", OpEqR: "EqR", OpNeI: "NeI",
	OpNeR: "NeR", OpNot: "Not", OpAndB: "AndB", OpOrB: "OrB",
	OpMath1: "Math1", OpMath2: "Math2",
	OpLength: "Length", OpLengthV: "LengthV", OpPart: "Part", OpPartV: "PartV",
	OpSetPart: "SetPart", OpNewTable: "NewTable", OpRuntime: "Runtime", OpCallInterp: "CallInterp",
	OpAbortCheck: "AbortCheck", OpCoerce: "Coerce", OpRet: "Ret",
}

// Instr is one bytecode instruction with up to two immediate operands.
type Instr struct {
	Op   Op
	A, B int32
}

func (in Instr) String() string {
	name := opNames[in.Op]
	switch in.Op {
	case OpNop, OpDup, OpPop, OpRet, OpAbortCheck, OpNot, OpAndB, OpOrB,
		OpAddI, OpAddR, OpSubI, OpSubR, OpMulI, OpMulR, OpDivR, OpModI,
		OpQuotI, OpNegI, OpNegR, OpPowI, OpPowR, OpToReal,
		OpBAnd, OpBOr, OpBXor, OpShl, OpShr,
		OpLtI, OpLtR, OpLeI, OpLeR, OpGtI, OpGtR, OpGeI, OpGeR,
		OpEqI, OpEqR, OpNeI, OpNeR, OpLength:
		return name
	case OpRuntime, OpSetPart, OpPartV:
		return fmt.Sprintf("%s %d %d", name, in.A, in.B)
	default:
		return fmt.Sprintf("%s %d", name, in.A)
	}
}

// Math function ids for OpMath1/OpMath2.
const (
	MfSin = iota
	MfCos
	MfTan
	MfExp
	MfLog
	MfSqrt
	MfAbs
	MfFloor
	MfCeiling
	MfRound
	MfArcTan
	MfArcSin
	MfArcCos
	MfSign
	// Binary
	MfArcTan2
	MfMin
	MfMax
	MfLog2 // Log[b, x]
	MfPow
)

var mathNames = []string{
	"Sin", "Cos", "Tan", "Exp", "Log", "Sqrt", "Abs", "Floor", "Ceiling",
	"Round", "ArcTan", "ArcSin", "ArcCos", "Sign", "ArcTan2", "Min", "Max",
	"Log2", "Pow",
}

// Runtime function ids for OpRuntime.
const (
	RtDot = iota
	RtTotal
	RtRandomReal // argc 0 or 2 (lo, hi)
	RtRandomInt  // argc 2 (lo, hi)
	RtTableReal  // argc 1: length n -> zero real tensor
	RtTableInt   // argc 1: length n -> zero int tensor
	RtTranspose  // argc 1
	RtReverse    // argc 1
	RtFlatten    // argc 1
	RtN          // argc 1: int->real identity on tensors/scalars
	RtTake       // argc 2: (tensor, n) -> first n elements
)

var runtimeNames = []string{
	"Dot", "Total", "RandomReal", "RandomInteger", "TableReal", "TableInt",
	"Transpose", "Reverse", "Flatten", "N", "Take",
}

// Disassemble renders the bytecode for inspection, in the spirit of the
// serialised CompiledFunction shown in paper §2.2.
func (cf *CompiledFunction) Disassemble() string {
	var b strings.Builder
	fmt.Fprintf(&b, "WVMFunction[%d args, %d slots, %d consts]\n",
		cf.NumArgs, len(cf.SlotKinds), len(cf.Consts))
	for i, s := range cf.SlotKinds {
		fmt.Fprintf(&b, "  slot %d: %v\n", i, s)
	}
	for pc, in := range cf.Code {
		fmt.Fprintf(&b, "%4d  %s\n", pc, in.String())
	}
	return b.String()
}
