package vm

import (
	"fmt"
	"sync"

	"wolfc/internal/expr"
	"wolfc/internal/kernel"
	"wolfc/internal/pattern"
)

// Kernel integration: Install registers the classic Compile keyword and the
// CompiledFunction applier, so bytecode-compiled functions behave like any
// other function in a session (F1), fall back to the interpreter on runtime
// errors (F2), and honour aborts (F3).

var (
	registryMu  sync.Mutex
	registry    = map[int64]*CompiledFunction{}
	registrySeq int64
)

func registerCompiled(cf *CompiledFunction) int64 {
	registryMu.Lock()
	defer registryMu.Unlock()
	registrySeq++
	registry[registrySeq] = cf
	return registrySeq
}

// Lookup returns a registered compiled function by id; used by tools that
// disassemble CompiledFunction expressions.
func Lookup(id int64) (*CompiledFunction, bool) {
	registryMu.Lock()
	defer registryMu.Unlock()
	cf, ok := registry[id]
	return cf, ok
}

var symCompiledFunction = expr.Sym("CompiledFunction")

// Install adds Compile and CompiledFunction handling to a kernel.
func Install(k *kernel.Kernel) {
	k.Register("Compile", kernel.HoldAll, biCompile)
	k.RegisterApplier("CompiledFunction", applyCompiled)
}

// biCompile implements Compile[{specs}, body]. On compile failure the
// uncompiled Function is returned, as the engine does — the code still runs,
// interpreted.
func biCompile(k *kernel.Kernel, n *expr.Normal) (expr.Expr, bool) {
	if n.Len() < 2 {
		return n, false
	}
	specs, err := ParseArgSpecs(n.Arg(1))
	if err != nil {
		k.Out.Write([]byte(fmt.Sprintf("Compile::nospec: %v; returning uncompiled Function\n", err)))
		return uncompiledFunction(n), true
	}
	cf, err := Compile(k, specs, n.Arg(2))
	if err != nil {
		k.Out.Write([]byte(fmt.Sprintf("Compile::nocomp: %v; returning uncompiled Function\n", err)))
		return uncompiledFunction(n), true
	}
	id := registerCompiled(cf)
	// CompiledFunction[{compilerVersion, engineVersion, id}, argnames, source]
	return expr.New(symCompiledFunction,
		expr.List(expr.FromInt64(int64(cf.CompilerVersion)),
			expr.FromInt64(int64(cf.EngineVersion)),
			expr.FromInt64(id)),
		cf.Source), true
}

func uncompiledFunction(n *expr.Normal) expr.Expr {
	specs, err := ParseArgSpecs(n.Arg(1))
	if err != nil {
		return expr.SymFailed
	}
	return expr.New(expr.SymFunction, argNameList(specs), n.Arg(2))
}

// applyCompiled runs CompiledFunction[meta, source][args...], falling back
// to interpreting source on any VM runtime error (the soft failure mode).
func applyCompiled(k *kernel.Kernel, head *expr.Normal, args []expr.Expr) (expr.Expr, bool) {
	if head.Len() != 2 {
		return nil, false
	}
	meta, ok := expr.IsNormalN(head.Arg(1), expr.SymList, 3)
	if !ok {
		return nil, false
	}
	idE, ok := meta.Arg(3).(*expr.Integer)
	if !ok || !idE.IsMachine() {
		return nil, false
	}
	cf, found := Lookup(idE.Int64())
	source := head.Arg(2)
	if !found {
		// Version/session mismatch: recompile from source, as the engine
		// does when the stamps do not match (paper §2.2).
		fn, ok := expr.IsNormalN(source, expr.SymFunction, 2)
		if !ok {
			return nil, false
		}
		return interpretSource(k, fn, args), true
	}

	vmArgs := make([]Value, len(args))
	for i, a := range args {
		v, err := FromExpr(a)
		if err != nil {
			// Argument outside the VM's domain: interpret instead.
			fn, _ := expr.IsNormalN(source, expr.SymFunction, 2)
			if fn == nil {
				return nil, false
			}
			return interpretSource(k, fn, args), true
		}
		vmArgs[i] = v
	}
	out, err := cf.Call(k, vmArgs...)
	if err == nil {
		return ToExpr(out), true
	}
	var verr *Error
	if e, isVM := err.(*Error); isVM {
		verr = e
	}
	if verr != nil && verr.Kind == ErrAborted {
		return expr.SymAborted, true
	}
	// Soft failure: report and re-evaluate with the interpreter (F2).
	fmt.Fprintf(k.Out, "CompiledFunction::cfse: compiled code runtime error (%v); reverting to uncompiled evaluation\n", err)
	fn, ok := expr.IsNormalN(source, expr.SymFunction, 2)
	if !ok {
		return expr.SymFailed, true
	}
	return interpretSource(k, fn, args), true
}

// interpretSource applies the stored Function to args via the kernel.
func interpretSource(k *kernel.Kernel, fn *expr.Normal, args []expr.Expr) expr.Expr {
	params, ok := expr.IsNormal(fn.Arg(1), expr.SymList)
	if !ok {
		return expr.SymFailed
	}
	if params.Len() != len(args) {
		return expr.SymFailed
	}
	b := pattern.Bindings{}
	for i := 1; i <= params.Len(); i++ {
		name, ok := params.Arg(i).(*expr.Symbol)
		if !ok {
			return expr.SymFailed
		}
		b[name] = args[i-1]
	}
	return k.Eval(pattern.Substitute(fn.Arg(2), b))
}
