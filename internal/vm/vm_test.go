package vm

import (
	"io"
	"strings"
	"testing"
	"time"

	"wolfc/internal/expr"
	"wolfc/internal/kernel"
	"wolfc/internal/parser"
)

func newKernel() *kernel.Kernel {
	k := kernel.New()
	k.Out = io.Discard
	Install(k)
	return k
}

// compileSrc compiles Compile[...] source text.
func compileSrc(t *testing.T, k *kernel.Kernel, src string) *CompiledFunction {
	t.Helper()
	e := parser.MustParse(src)
	cf, err := CompileExpr(k, e)
	if err != nil {
		t.Fatalf("compile %q: %v", src, err)
	}
	return cf
}

func callScalar(t *testing.T, k *kernel.Kernel, cf *CompiledFunction, args ...Value) Value {
	t.Helper()
	out, err := cf.Call(k, args...)
	if err != nil {
		t.Fatalf("call: %v", err)
	}
	return out
}

func TestCompileScalarArithmetic(t *testing.T) {
	k := newKernel()
	cf := compileSrc(t, k, "Compile[{{x, _Real}}, x^2 + 2*x + 1]")
	out := callScalar(t, k, cf, RealValue(3))
	if out.Kind != KReal || out.R != 16 {
		t.Fatalf("got %v", out)
	}
	// Integer arguments are coerced to Real parameters.
	out = callScalar(t, k, cf, IntValue(3))
	if out.R != 16 {
		t.Fatalf("int arg coercion: %v", out)
	}
}

func TestCompileIntegerArithmetic(t *testing.T) {
	k := newKernel()
	cf := compileSrc(t, k, "Compile[{{n, _Integer}}, Mod[n*n + 7, 10]]")
	out := callScalar(t, k, cf, IntValue(6))
	if out.Kind != KInt || out.I != 3 {
		t.Fatalf("got %v", out)
	}
}

func TestCompileControlFlow(t *testing.T) {
	k := newKernel()
	// Loop summing 1..n.
	cf := compileSrc(t, k, `Compile[{{n, _Integer}},
		Module[{s = 0, i = 1},
			While[i <= n, s = s + i; i = i + 1];
			s]]`)
	out := callScalar(t, k, cf, IntValue(100))
	if out.I != 5050 {
		t.Fatalf("sum = %v", out)
	}
	// If with both branches.
	cf2 := compileSrc(t, k, "Compile[{{x, _Real}}, If[x > 0, x, -x]]")
	if got := callScalar(t, k, cf2, RealValue(-2.5)); got.R != 2.5 {
		t.Fatalf("abs = %v", got)
	}
	// Do with iterator.
	cf3 := compileSrc(t, k, `Compile[{{n, _Integer}},
		Module[{s = 0}, Do[s += j, {j, 1, n}]; s]]`)
	if got := callScalar(t, k, cf3, IntValue(10)); got.I != 55 {
		t.Fatalf("do sum = %v", got)
	}
	// For loop.
	cf4 := compileSrc(t, k, `Compile[{{n, _Integer}},
		Module[{s = 0}, For[i = 0, i < n, i++, s += i]; s]]`)
	if got := callScalar(t, k, cf4, IntValue(5)); got.I != 10 {
		t.Fatalf("for sum = %v", got)
	}
}

func TestCompileMathFunctions(t *testing.T) {
	k := newKernel()
	cf := compileSrc(t, k, "Compile[{{x, _Real}}, Sin[x]^2 + Cos[x]^2]")
	out := callScalar(t, k, cf, RealValue(0.7))
	if out.R < 0.9999999 || out.R > 1.0000001 {
		t.Fatalf("sin^2+cos^2 = %v", out)
	}
	cf2 := compileSrc(t, k, "Compile[{{x, _Real}}, Floor[x] + Ceiling[x]]")
	if got := callScalar(t, k, cf2, RealValue(2.5)); got.I != 5 {
		t.Fatalf("floor+ceiling = %v", got)
	}
	cf3 := compileSrc(t, k, "Compile[{{a, _Integer}, {b, _Integer}}, Min[a, b] + Max[a, b]]")
	if got := callScalar(t, k, cf3, IntValue(3), IntValue(9)); got.I != 12 {
		t.Fatalf("min+max = %v", got)
	}
}

func TestCompileTensors(t *testing.T) {
	k := newKernel()
	// Sum the elements of a vector by explicit loop.
	cf := compileSrc(t, k, `Compile[{{v, _Real, 1}},
		Module[{s = 0., i = 1},
			While[i <= Length[v], s = s + v[[i]]; i++];
			s]]`)
	vec := NewRealTensor(4)
	copy(vec.R, []float64{1, 2, 3, 4})
	out := callScalar(t, k, cf, TensorValue(vec))
	if out.R != 10 {
		t.Fatalf("vector sum = %v", out)
	}
	// Negative indexing.
	cf2 := compileSrc(t, k, "Compile[{{v, _Real, 1}}, v[[-1]]]")
	if got := callScalar(t, k, cf2, TensorValue(vec)); got.R != 4 {
		t.Fatalf("v[[-1]] = %v", got)
	}
	// Table building.
	cf3 := compileSrc(t, k, "Compile[{{n, _Integer}}, Table[i*i, {i, 1, n}]]")
	got := callScalar(t, k, cf3, IntValue(5))
	if got.Kind != KTensor || got.T.I[4] != 25 {
		t.Fatalf("table = %v", got)
	}
	// Part assignment mutates only the compiled copy.
	cf4 := compileSrc(t, k, `Compile[{{v, _Real, 1}},
		Module[{w = v}, w[[1]] = 99.; w[[1]] + v[[1]]]]`)
	if got := callScalar(t, k, cf4, TensorValue(vec)); got.R != 100 {
		t.Fatalf("copy semantics: %v", got)
	}
	if vec.R[0] != 1 {
		t.Fatal("caller's tensor mutated through compiled function")
	}
}

func TestCompileOverflowFallbackError(t *testing.T) {
	k := newKernel()
	cf := compileSrc(t, k, "Compile[{{n, _Integer}}, n*n]")
	_, err := cf.Call(k, IntValue(1<<62))
	verr, ok := err.(*Error)
	if !ok || verr.Kind != ErrOverflow {
		t.Fatalf("expected overflow error, got %v", err)
	}
}

func TestCompiledFunctionIntegration(t *testing.T) {
	// Full pipeline: Compile[...] inside the kernel, then call it like a
	// regular function (F1).
	k := newKernel()
	out, err := k.Run(parser.MustParse("cf = Compile[{{x, _Real}}, Sin[x] + x^2]; cf[2.0]"))
	if err != nil {
		t.Fatal(err)
	}
	r, ok := out.(*expr.Real)
	if !ok {
		t.Fatalf("result = %s", expr.InputForm(out))
	}
	want := 4.909297426825682
	if r.V < want-1e-12 || r.V > want+1e-12 {
		t.Fatalf("cf[2.0] = %v, want %v", r.V, want)
	}
}

func TestSoftFallbackOnOverflow(t *testing.T) {
	// Compiled fib overflows int64 for n=200; the wrapper must print a
	// warning and re-evaluate with the interpreter's bignums (paper §2.2).
	k := kernel.New()
	var log strings.Builder
	k.Out = &log
	Install(k)
	_, err := k.Run(parser.MustParse("cpow = Compile[{{n, _Integer}}, n*n*n*n*n*n*n*n*n*n]"))
	if err != nil {
		t.Fatal(err)
	}
	out, err := k.Run(parser.MustParse("cpow[12345]"))
	if err != nil {
		t.Fatal(err)
	}
	i, ok := out.(*expr.Integer)
	if !ok {
		t.Fatalf("result = %s", expr.InputForm(out))
	}
	if i.IsMachine() {
		t.Fatalf("12345^10 must be a bignum, got %s", i)
	}
	if !strings.Contains(log.String(), "reverting to uncompiled evaluation") {
		t.Fatalf("missing fallback warning; log = %q", log.String())
	}
}

func TestInterpreterEscape(t *testing.T) {
	// An unsupported call compiles to an interpreter escape, not a failure
	// (paper §2.2).
	k := newKernel()
	k.Run(parser.MustParse("userFunc[x_] := x*3"))
	cf := compileSrc(t, k, "Compile[{{x, _Real}}, userFunc[x] + 1.0]")
	found := false
	for _, in := range cf.Code {
		if in.Op == OpCallInterp {
			found = true
		}
	}
	if !found {
		t.Fatal("expected an interpreter escape instruction")
	}
	out := callScalar(t, k, cf, RealValue(2))
	if out.R != 7 {
		t.Fatalf("escape result = %v", out)
	}
}

func TestStringsRejected(t *testing.T) {
	// Limitation L1: strings are not VM values. A string stored into a VM
	// variable is a hard compile failure...
	k := newKernel()
	e := parser.MustParse(`Compile[{{x, _Real}}, Module[{s = "abc"}, x]]`)
	if _, err := CompileExpr(k, e); err == nil {
		t.Fatal("string-valued variable must not bytecode-compile")
	}
	// ...while a string-consuming call in expression position merely
	// escapes to the interpreter (its numeric result is representable).
	cf := compileSrc(t, k, `Compile[{{x, _Real}}, StringLength["abc"] + x]`)
	escapes := 0
	for _, in := range cf.Code {
		if in.Op == OpCallInterp {
			escapes++
		}
	}
	if escapes == 0 {
		t.Fatal("string call should compile to an interpreter escape")
	}
	if got := callScalar(t, k, cf, RealValue(1)); got.R != 4 {
		t.Fatalf("escaped StringLength result = %v", got)
	}
}

func TestAbortCompiledLoop(t *testing.T) {
	k := newKernel()
	cf := compileSrc(t, k, `Compile[{{n, _Integer}},
		Module[{i = 0}, While[i >= 0, i = Mod[i + 1, 1000]]; i]]`)
	go func() {
		time.Sleep(20 * time.Millisecond)
		k.Abort()
	}()
	_, err := cf.Call(k, IntValue(1))
	verr, ok := err.(*Error)
	if !ok || verr.Kind != ErrAborted {
		t.Fatalf("expected abort, got %v", err)
	}
	k.ClearAbort()
}

func TestDisassemble(t *testing.T) {
	k := newKernel()
	cf := compileSrc(t, k, "Compile[{{x, _Real}}, Sin[x] + x]")
	dis := cf.Disassemble()
	for _, want := range []string{"WVMFunction", "Load", "Math1", "AddR", "Ret"} {
		if !strings.Contains(dis, want) {
			t.Fatalf("disassembly missing %q:\n%s", want, dis)
		}
	}
}

func TestValueConversionRoundTrip(t *testing.T) {
	k := newKernel()
	_ = k
	exprs := []string{"3", "2.5", "True", "False", "{1, 2, 3}", "{1.5, 2.5}", "{{1, 2}, {3, 4}}"}
	for _, src := range exprs {
		e := parser.MustParse(src)
		v, err := FromExpr(e)
		if err != nil {
			t.Fatalf("FromExpr(%s): %v", src, err)
		}
		back := ToExpr(v)
		if !expr.SameQ(e, back) {
			t.Fatalf("round trip %s -> %s", src, expr.InputForm(back))
		}
	}
	// Big integers are outside the machine domain.
	if _, err := FromExpr(expr.NewS("Hold")); err == nil {
		t.Fatal("Hold[] should not convert")
	}
}

func TestTensorPartOps(t *testing.T) {
	m := NewRealTensor(2, 3)
	copy(m.R, []float64{1, 2, 3, 4, 5, 6})
	v, err := m.Part(2, 3)
	if err != nil || v.R != 6 {
		t.Fatalf("m[[2,3]] = %v, %v", v, err)
	}
	row, err := m.Part(1)
	if err != nil || row.Kind != KTensor || row.T.R[1] != 2 {
		t.Fatalf("m[[1]] = %v, %v", row, err)
	}
	if _, err := m.Part(3, 1); err == nil {
		t.Fatal("out of range must fail")
	}
	if err := m.SetPart(RealValue(9), 1, -1); err != nil {
		t.Fatal(err)
	}
	if m.R[2] != 9 {
		t.Fatalf("negative index set: %v", m.R)
	}
}

func TestDotThroughVM(t *testing.T) {
	k := newKernel()
	cf := compileSrc(t, k, "Compile[{{a, _Real, 2}, {b, _Real, 2}}, Dot[a, b]]")
	a := NewRealTensor(2, 2)
	copy(a.R, []float64{1, 2, 3, 4})
	b := NewRealTensor(2, 2)
	copy(b.R, []float64{5, 6, 7, 8})
	out := callScalar(t, k, cf, TensorValue(a), TensorValue(b))
	if out.Kind != KTensor {
		t.Fatalf("dot kind = %v", out.Kind)
	}
	want := []float64{19, 22, 43, 50}
	for i, w := range want {
		if out.T.R[i] != w {
			t.Fatalf("dot[%d] = %v, want %v", i, out.T.R[i], w)
		}
	}
}

func TestVersionMismatchRecompiles(t *testing.T) {
	// A CompiledFunction whose id is not in this session's registry (e.g.
	// deserialised from elsewhere) falls back to its source.
	k := newKernel()
	out, err := k.Run(parser.MustParse(
		"CompiledFunction[{11, 12, 999999}, Function[{x}, x + 1]][41]"))
	if err != nil {
		t.Fatal(err)
	}
	if expr.InputForm(out) != "42" {
		t.Fatalf("recompile fallback = %s", expr.InputForm(out))
	}
}

func TestASTLevelCSE(t *testing.T) {
	// §2.2: the bytecode compiler performs common subexpression elimination
	// on the AST. Sin[x]*Sin[x] + Sin[x] compiles Sin once.
	k := newKernel()
	cf := compileSrc(t, k, "Compile[{{x, _Real}}, Sin[x]*Sin[x] + Sin[x]]")
	sins := 0
	for _, in := range cf.Code {
		if in.Op == OpMath1 && in.A == MfSin {
			sins++
		}
	}
	if sins != 1 {
		t.Fatalf("Sin compiled %d times, want 1 (AST CSE):\n%s", sins, cf.Disassemble())
	}
	out := callScalar(t, k, cf, RealValue(0.5))
	want := mathSin(0.5)*mathSin(0.5) + mathSin(0.5)
	if out.R < want-1e-12 || out.R > want+1e-12 {
		t.Fatalf("CSE changed the result: %v vs %v", out.R, want)
	}
	// Subtrees over assigned variables must NOT be hoisted.
	cf2 := compileSrc(t, k, `Compile[{{n, _Integer}},
		Module[{s = 0, i = 1},
			While[i <= n, s = s + i*i + i*i; i = i + 1];
			s]]`)
	if got := callScalar(t, k, cf2, IntValue(3)); got.I != 28 {
		t.Fatalf("loop with assigned vars = %v, want 28", got)
	}
}

func mathSin(x float64) float64 {
	out, _ := math1(MfSin, x)
	return out
}
