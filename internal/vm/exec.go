package vm

import (
	"fmt"
	"math"
	"time"

	"wolfc/internal/blas"
	"wolfc/internal/expr"
	"wolfc/internal/kernel"
	"wolfc/internal/obs"
	"wolfc/internal/pattern"
)

// wvmMetrics aggregates invocation metrics over every bytecode-compiled
// function: the baseline VM has no per-function identity worth a registry
// slot each, so the whole backend reports as one row.
var wvmMetrics = obs.RegisterFunc("(all WVM functions)", "wvm")

// ErrorKind classifies VM runtime errors; numeric errors trigger the soft
// interpreter fallback (F2), abort propagates the user interrupt (F3).
type ErrorKind int

const (
	ErrOverflow ErrorKind = iota
	ErrPartRange
	ErrTypeMismatch
	ErrAborted
	ErrUnsupported
)

// Error is a VM runtime error.
type Error struct {
	Kind ErrorKind
	Msg  string
}

func (e *Error) Error() string { return e.Msg }

func vmErrf(kind ErrorKind, format string, args ...any) *Error {
	return &Error{Kind: kind, Msg: fmt.Sprintf(format, args...)}
}

// CompiledFunction is a bytecode-compiled function ready to run on the WVM.
type CompiledFunction struct {
	NumArgs   int
	ArgKinds  []Kind
	SlotKinds []Kind
	SlotSyms  []*expr.Symbol // original names, for interpreter escapes
	Consts    []Value
	Code      []Instr
	Escapes   []expr.Expr // expressions evaluated via OpCallInterp
	Source    expr.Expr   // the original Function, for recompile/fallback

	// CompilerVersion/EngineVersion mimic the version stamps the engine
	// checks before running (paper §2.2).
	CompilerVersion, EngineVersion int
}

// Call runs the compiled function on the VM. The kernel supplies the abort
// flag, the random source, and the evaluator for interpreter escapes.
func (cf *CompiledFunction) Call(k *kernel.Kernel, args ...Value) (Value, error) {
	if len(args) != cf.NumArgs {
		return Value{}, vmErrf(ErrTypeMismatch, "expected %d arguments, got %d", cf.NumArgs, len(args))
	}
	slots := make([]Value, len(cf.SlotKinds))
	for i, a := range args {
		// Coerce int arguments to real slots.
		if cf.ArgKinds[i] == KReal && a.Kind == KInt {
			a = RealValue(float64(a.I))
		}
		if a.Kind != cf.ArgKinds[i] && cf.ArgKinds[i] != KVoid {
			if !(a.Kind == KTensor && cf.ArgKinds[i] == KTensor) {
				return Value{}, vmErrf(ErrTypeMismatch, "argument %d: expected %v, got %v",
					i+1, cf.ArgKinds[i], a.Kind)
			}
		}
		slots[i] = a
	}
	m := &machine{cf: cf, k: k, slots: slots, stack: make([]Value, 0, 64)}
	if obs.Enabled() {
		t0 := time.Now()
		v, err := m.run()
		wvmMetrics.RecordInvoke(time.Since(t0))
		if vmErr, ok := err.(*Error); ok {
			if vmErr.Kind == ErrAborted {
				wvmMetrics.RecordAbort()
			} else {
				wvmMetrics.RecordFallback()
			}
		}
		return v, err
	}
	return m.run()
}

type machine struct {
	cf    *CompiledFunction
	k     *kernel.Kernel
	slots []Value
	stack []Value
}

func (m *machine) push(v Value) { m.stack = append(m.stack, v) }
func (m *machine) pop() Value {
	v := m.stack[len(m.stack)-1]
	m.stack = m.stack[:len(m.stack)-1]
	return v
}

func (m *machine) run() (Value, error) {
	code := m.cf.Code
	pc := 0
	for pc < len(code) {
		in := code[pc]
		pc++
		switch in.Op {
		case OpNop:
		case OpPushConst:
			m.push(m.cf.Consts[in.A])
		case OpLoad:
			v := m.slots[in.A]
			// Copy-on-read for tensors: the baseline has no alias analysis,
			// so any read of a tensor variable copies (paper §3 F5 "the
			// bytecode compiler performs copying on read"). Element access
			// uses OpPartV and does not pay this cost.
			if v.Kind == KTensor {
				v = TensorValue(v.T.Copy())
			}
			m.push(v)
		case OpStore:
			m.slots[in.A] = m.pop()
		case OpDup:
			m.push(m.stack[len(m.stack)-1])
		case OpPop:
			m.pop()
		case OpJmp:
			pc = int(in.A)
		case OpJmpIfFalse:
			v := m.pop()
			if v.Kind != KBool {
				return Value{}, vmErrf(ErrTypeMismatch, "condition is %v, not Boolean", v.Kind)
			}
			if !v.B {
				pc = int(in.A)
			}
		case OpJmpIfTrue:
			v := m.pop()
			if v.Kind != KBool {
				return Value{}, vmErrf(ErrTypeMismatch, "condition is %v, not Boolean", v.Kind)
			}
			if v.B {
				pc = int(in.A)
			}

		case OpAddI:
			b, a := m.pop(), m.pop()
			s := a.I + b.I
			if (a.I > 0 && b.I > 0 && s < 0) || (a.I < 0 && b.I < 0 && s >= 0) {
				return Value{}, vmErrf(ErrOverflow, "IntegerOverflow in Plus[%d, %d]", a.I, b.I)
			}
			m.push(IntValue(s))
		case OpAddR:
			b, a := m.pop(), m.pop()
			m.push(RealValue(a.R + b.R))
		case OpSubI:
			b, a := m.pop(), m.pop()
			d := a.I - b.I
			if (a.I >= 0 && b.I < 0 && d < 0) || (a.I < 0 && b.I > 0 && d >= 0) {
				return Value{}, vmErrf(ErrOverflow, "IntegerOverflow in Subtract[%d, %d]", a.I, b.I)
			}
			m.push(IntValue(d))
		case OpSubR:
			b, a := m.pop(), m.pop()
			m.push(RealValue(a.R - b.R))
		case OpMulI:
			b, a := m.pop(), m.pop()
			if a.I != 0 && b.I != 0 {
				p := a.I * b.I
				if p/b.I != a.I || (a.I == -1 && b.I == math.MinInt64) || (b.I == -1 && a.I == math.MinInt64) {
					return Value{}, vmErrf(ErrOverflow, "IntegerOverflow in Times[%d, %d]", a.I, b.I)
				}
				m.push(IntValue(p))
			} else {
				m.push(IntValue(0))
			}
		case OpMulR:
			b, a := m.pop(), m.pop()
			m.push(RealValue(a.R * b.R))
		case OpDivR:
			b, a := m.pop(), m.pop()
			m.push(RealValue(a.R / b.R))
		case OpModI:
			b, a := m.pop(), m.pop()
			if b.I == 0 {
				return Value{}, vmErrf(ErrOverflow, "Mod by zero")
			}
			r := a.I % b.I
			if r != 0 && (r < 0) != (b.I < 0) {
				r += b.I
			}
			m.push(IntValue(r))
		case OpQuotI:
			b, a := m.pop(), m.pop()
			if b.I == 0 {
				return Value{}, vmErrf(ErrOverflow, "Quotient by zero")
			}
			q := a.I / b.I
			if (a.I%b.I != 0) && ((a.I < 0) != (b.I < 0)) {
				q--
			}
			m.push(IntValue(q))
		case OpNegI:
			a := m.pop()
			if a.I == math.MinInt64 {
				return Value{}, vmErrf(ErrOverflow, "IntegerOverflow in Minus")
			}
			m.push(IntValue(-a.I))
		case OpNegR:
			a := m.pop()
			m.push(RealValue(-a.R))
		case OpPowI:
			b, a := m.pop(), m.pop()
			if b.I < 0 {
				return Value{}, vmErrf(ErrTypeMismatch, "negative integer power in PowI")
			}
			result := int64(1)
			base := a.I
			for i := int64(0); i < b.I; i++ {
				if base != 0 && result != 0 {
					p := result * base
					if p/base != result {
						return Value{}, vmErrf(ErrOverflow, "IntegerOverflow in Power[%d, %d]", a.I, b.I)
					}
					result = p
				} else {
					result = 0
				}
			}
			m.push(IntValue(result))
		case OpPowR:
			b, a := m.pop(), m.pop()
			m.push(RealValue(math.Pow(a.R, b.R)))
		case OpBAnd:
			b, a := m.pop(), m.pop()
			m.push(IntValue(a.I & b.I))
		case OpBOr:
			b, a := m.pop(), m.pop()
			m.push(IntValue(a.I | b.I))
		case OpBXor:
			b, a := m.pop(), m.pop()
			m.push(IntValue(a.I ^ b.I))
		case OpShl:
			b, a := m.pop(), m.pop()
			m.push(IntValue(a.I << uint64(b.I)))
		case OpShr:
			b, a := m.pop(), m.pop()
			m.push(IntValue(a.I >> uint64(b.I)))
		case OpToReal:
			a := m.pop()
			switch a.Kind {
			case KInt:
				m.push(RealValue(float64(a.I)))
			case KReal:
				m.push(a)
			case KTensor:
				if a.T.Elem == KInt {
					t := NewRealTensor(a.T.Dims...)
					for i, v := range a.T.I {
						t.R[i] = float64(v)
					}
					m.push(TensorValue(t))
				} else {
					m.push(a)
				}
			default:
				return Value{}, vmErrf(ErrTypeMismatch, "cannot coerce %v to Real", a.Kind)
			}

		case OpLtI:
			b, a := m.pop(), m.pop()
			m.push(BoolValue(a.I < b.I))
		case OpLtR:
			b, a := m.pop(), m.pop()
			m.push(BoolValue(a.R < b.R))
		case OpLeI:
			b, a := m.pop(), m.pop()
			m.push(BoolValue(a.I <= b.I))
		case OpLeR:
			b, a := m.pop(), m.pop()
			m.push(BoolValue(a.R <= b.R))
		case OpGtI:
			b, a := m.pop(), m.pop()
			m.push(BoolValue(a.I > b.I))
		case OpGtR:
			b, a := m.pop(), m.pop()
			m.push(BoolValue(a.R > b.R))
		case OpGeI:
			b, a := m.pop(), m.pop()
			m.push(BoolValue(a.I >= b.I))
		case OpGeR:
			b, a := m.pop(), m.pop()
			m.push(BoolValue(a.R >= b.R))
		case OpEqI:
			b, a := m.pop(), m.pop()
			m.push(BoolValue(a.I == b.I))
		case OpEqR:
			b, a := m.pop(), m.pop()
			m.push(BoolValue(a.R == b.R))
		case OpNeI:
			b, a := m.pop(), m.pop()
			m.push(BoolValue(a.I != b.I))
		case OpNeR:
			b, a := m.pop(), m.pop()
			m.push(BoolValue(a.R != b.R))
		case OpNot:
			a := m.pop()
			if a.Kind != KBool {
				return Value{}, vmErrf(ErrTypeMismatch, "Not of %v", a.Kind)
			}
			m.push(BoolValue(!a.B))
		case OpAndB:
			b, a := m.pop(), m.pop()
			if a.Kind != KBool || b.Kind != KBool {
				return Value{}, vmErrf(ErrTypeMismatch, "And of %v, %v", a.Kind, b.Kind)
			}
			m.push(BoolValue(a.B && b.B))
		case OpOrB:
			b, a := m.pop(), m.pop()
			if a.Kind != KBool || b.Kind != KBool {
				return Value{}, vmErrf(ErrTypeMismatch, "Or of %v, %v", a.Kind, b.Kind)
			}
			m.push(BoolValue(a.B || b.B))

		case OpMath1:
			a := m.pop()
			r, ok := a.AsReal()
			if !ok {
				return Value{}, vmErrf(ErrTypeMismatch, "%s of %v", mathNames[in.A], a.Kind)
			}
			out, isInt := math1(int(in.A), r)
			if isInt {
				m.push(IntValue(int64(out)))
			} else {
				m.push(RealValue(out))
			}
		case OpMath2:
			b, a := m.pop(), m.pop()
			ra, ok1 := a.AsReal()
			rb, ok2 := b.AsReal()
			if !ok1 || !ok2 {
				return Value{}, vmErrf(ErrTypeMismatch, "%s of %v, %v", mathNames[in.A], a.Kind, b.Kind)
			}
			// Min/Max preserve integer kind.
			if (in.A == MfMin || in.A == MfMax) && a.Kind == KInt && b.Kind == KInt {
				if (in.A == MfMin) == (a.I < b.I) {
					m.push(a)
				} else {
					m.push(b)
				}
				break
			}
			m.push(RealValue(math2(int(in.A), ra, rb)))

		case OpLength:
			a := m.pop()
			if a.Kind != KTensor {
				return Value{}, vmErrf(ErrTypeMismatch, "Length of %v", a.Kind)
			}
			m.push(IntValue(int64(a.T.Len())))
		case OpLengthV:
			v := m.slots[in.A]
			if v.Kind != KTensor {
				return Value{}, vmErrf(ErrTypeMismatch, "Length of %v", v.Kind)
			}
			m.push(IntValue(int64(v.T.Len())))
		case OpPart:
			nIdx := int(in.A)
			idxs := make([]int64, nIdx)
			for i := nIdx - 1; i >= 0; i-- {
				v := m.pop()
				if v.Kind != KInt {
					return Value{}, vmErrf(ErrTypeMismatch, "Part index is %v", v.Kind)
				}
				idxs[i] = v.I
			}
			t := m.pop()
			if t.Kind != KTensor {
				return Value{}, vmErrf(ErrTypeMismatch, "Part of %v", t.Kind)
			}
			out, err := t.T.Part(idxs...)
			if err != nil {
				return Value{}, vmErrf(ErrPartRange, "Part: %v", err)
			}
			m.push(out)
		case OpPartV:
			nIdx := int(in.B)
			idxs := make([]int64, nIdx)
			for i := nIdx - 1; i >= 0; i-- {
				v := m.pop()
				if v.Kind != KInt {
					return Value{}, vmErrf(ErrTypeMismatch, "Part index is %v", v.Kind)
				}
				idxs[i] = v.I
			}
			t := m.slots[in.A]
			if t.Kind != KTensor {
				return Value{}, vmErrf(ErrTypeMismatch, "Part of %v", t.Kind)
			}
			out, err := t.T.Part(idxs...)
			if err != nil {
				return Value{}, vmErrf(ErrPartRange, "Part: %v", err)
			}
			m.push(out)
		case OpSetPart:
			nIdx := int(in.B)
			val := m.pop()
			idxs := make([]int64, nIdx)
			for i := nIdx - 1; i >= 0; i-- {
				v := m.pop()
				if v.Kind != KInt {
					return Value{}, vmErrf(ErrTypeMismatch, "Part index is %v", v.Kind)
				}
				idxs[i] = v.I
			}
			slot := int(in.A)
			cur := m.slots[slot]
			if cur.Kind != KTensor {
				return Value{}, vmErrf(ErrTypeMismatch, "Part assignment to %v", cur.Kind)
			}
			// Under copy-on-read, slot tensors are uniquely owned, so the
			// mutation is safe in place.
			if err := cur.T.SetPart(val, idxs...); err != nil {
				return Value{}, vmErrf(ErrPartRange, "Part assignment: %v", err)
			}
			m.push(val)

		case OpRuntime:
			if err := m.runtime(int(in.A), int(in.B)); err != nil {
				return Value{}, err
			}

		case OpCallInterp:
			out, err := m.callInterp(int(in.A))
			if err != nil {
				return Value{}, err
			}
			m.push(out)

		case OpCoerce:
			v := m.pop()
			want := Kind(in.A)
			switch {
			case v.Kind == want:
				m.push(v)
			case v.Kind == KInt && want == KReal:
				m.push(RealValue(float64(v.I)))
			default:
				return Value{}, vmErrf(ErrTypeMismatch,
					"escaped expression produced %v where %v was expected", v.Kind, want)
			}

		case OpAbortCheck:
			if m.k != nil && m.k.Aborted() {
				return Value{}, vmErrf(ErrAborted, "aborted")
			}

		case OpRet:
			if len(m.stack) == 0 {
				return Value{Kind: KVoid}, nil
			}
			return m.pop(), nil
		default:
			return Value{}, vmErrf(ErrUnsupported, "bad opcode %d", in.Op)
		}
	}
	return Value{Kind: KVoid}, nil
}

func math1(id int, x float64) (out float64, isInt bool) {
	switch id {
	case MfSin:
		return math.Sin(x), false
	case MfCos:
		return math.Cos(x), false
	case MfTan:
		return math.Tan(x), false
	case MfExp:
		return math.Exp(x), false
	case MfLog:
		return math.Log(x), false
	case MfSqrt:
		return math.Sqrt(x), false
	case MfAbs:
		return math.Abs(x), false
	case MfFloor:
		return math.Floor(x), true
	case MfCeiling:
		return math.Ceil(x), true
	case MfRound:
		return math.RoundToEven(x), true
	case MfArcTan:
		return math.Atan(x), false
	case MfArcSin:
		return math.Asin(x), false
	case MfArcCos:
		return math.Acos(x), false
	case MfSign:
		switch {
		case x > 0:
			return 1, true
		case x < 0:
			return -1, true
		}
		return 0, true
	}
	return math.NaN(), false
}

func math2(id int, a, b float64) float64 {
	switch id {
	case MfArcTan2:
		return math.Atan2(b, a)
	case MfMin:
		return math.Min(a, b)
	case MfMax:
		return math.Max(a, b)
	case MfLog2:
		return math.Log(b) / math.Log(a)
	case MfPow:
		return math.Pow(a, b)
	}
	return math.NaN()
}

// runtime dispatches an OpRuntime call.
func (m *machine) runtime(id, argc int) error {
	args := make([]Value, argc)
	for i := argc - 1; i >= 0; i-- {
		args[i] = m.pop()
	}
	switch id {
	case RtDot:
		out, err := tensorDot(args[0], args[1])
		if err != nil {
			return err
		}
		m.push(out)
	case RtTotal:
		if args[0].Kind != KTensor {
			return vmErrf(ErrTypeMismatch, "Total of %v", args[0].Kind)
		}
		t := args[0].T
		if len(t.Dims) != 1 {
			return vmErrf(ErrTypeMismatch, "Total of rank-%d tensor unsupported in WVM", len(t.Dims))
		}
		if t.Elem == KInt {
			m.push(IntValue(blas.ISum(t.I)))
		} else {
			m.push(RealValue(blas.DSum(t.R)))
		}
	case RtRandomReal:
		lo, hi := 0.0, 1.0
		if argc == 2 {
			lo, _ = args[0].AsReal()
			hi, _ = args[1].AsReal()
		}
		// Routed through the kernel for reproducibility with the
		// interpreter's random stream.
		out, err := m.k.Run(expr.NewS("RandomReal",
			expr.List(expr.FromFloat(lo), expr.FromFloat(hi))))
		if err != nil {
			return vmErrf(ErrUnsupported, "RandomReal: %v", err)
		}
		v, _ := FromExpr(out)
		m.push(v)
	case RtRandomInt:
		out, err := m.k.Run(expr.NewS("RandomInteger",
			expr.List(ToExpr(args[0]), ToExpr(args[1]))))
		if err != nil {
			return vmErrf(ErrUnsupported, "RandomInteger: %v", err)
		}
		v, _ := FromExpr(out)
		m.push(v)
	case RtTableReal:
		n := args[0].I
		m.push(TensorValue(NewRealTensor(int(n))))
	case RtTableInt:
		n := args[0].I
		m.push(TensorValue(NewIntTensor(int(n))))
	case RtTake:
		if args[0].Kind != KTensor || args[1].Kind != KInt {
			return vmErrf(ErrTypeMismatch, "Take of %v, %v", args[0].Kind, args[1].Kind)
		}
		t := args[0].T
		n := int(args[1].I)
		if n < 0 || n > t.Len() {
			return vmErrf(ErrPartRange, "Take %d from length %d", n, t.Len())
		}
		out := &Tensor{Elem: t.Elem, Dims: []int{n}}
		switch t.Elem {
		case KInt:
			out.I = append([]int64(nil), t.I[:n]...)
		case KReal:
			out.R = append([]float64(nil), t.R[:n]...)
		case KComplex:
			out.C = append([]complex128(nil), t.C[:n]...)
		default:
			return vmErrf(ErrUnsupported, "Take of %v tensor", t.Elem)
		}
		m.push(TensorValue(out))
	case RtReverse:
		if args[0].Kind != KTensor || len(args[0].T.Dims) != 1 {
			return vmErrf(ErrTypeMismatch, "Reverse of %v", args[0].Kind)
		}
		t := args[0].T
		n := t.Len()
		out := &Tensor{Elem: t.Elem, Dims: []int{n}}
		switch t.Elem {
		case KInt:
			out.I = make([]int64, n)
			for i := 0; i < n; i++ {
				out.I[i] = t.I[n-1-i]
			}
		case KReal:
			out.R = make([]float64, n)
			for i := 0; i < n; i++ {
				out.R[i] = t.R[n-1-i]
			}
		case KComplex:
			out.C = make([]complex128, n)
			for i := 0; i < n; i++ {
				out.C[i] = t.C[n-1-i]
			}
		default:
			return vmErrf(ErrUnsupported, "Reverse of %v tensor", t.Elem)
		}
		m.push(TensorValue(out))
	case RtTranspose:
		if args[0].Kind != KTensor || len(args[0].T.Dims) != 2 {
			return vmErrf(ErrTypeMismatch, "Transpose needs a rank-2 tensor")
		}
		t := args[0].T
		r, c := t.Dims[0], t.Dims[1]
		out := &Tensor{Elem: t.Elem, Dims: []int{c, r}}
		switch t.Elem {
		case KInt:
			out.I = make([]int64, r*c)
			for i := 0; i < r; i++ {
				for j := 0; j < c; j++ {
					out.I[j*r+i] = t.I[i*c+j]
				}
			}
		case KReal:
			out.R = make([]float64, r*c)
			for i := 0; i < r; i++ {
				for j := 0; j < c; j++ {
					out.R[j*r+i] = t.R[i*c+j]
				}
			}
		default:
			return vmErrf(ErrUnsupported, "Transpose of %v tensor", t.Elem)
		}
		m.push(TensorValue(out))
	case RtFlatten:
		if args[0].Kind != KTensor {
			return vmErrf(ErrTypeMismatch, "Flatten of %v", args[0].Kind)
		}
		t := args[0].T
		// Fresh storage, not a view: the WVM's mutation protocol assumes
		// distinct tensors never share backing arrays.
		out := &Tensor{
			Elem: t.Elem, Dims: []int{t.FlatLen()},
			I: append([]int64(nil), t.I...),
			R: append([]float64(nil), t.R...),
			C: append([]complex128(nil), t.C...),
		}
		m.push(TensorValue(out))
	default:
		return vmErrf(ErrUnsupported, "bad runtime call %d", id)
	}
	return nil
}

// tensorDot implements Dot through the shared BLAS kernels (the MKL
// stand-in), like both compilers in the paper.
func tensorDot(a, b Value) (Value, error) {
	if a.Kind != KTensor || b.Kind != KTensor {
		return Value{}, vmErrf(ErrTypeMismatch, "Dot of %v, %v", a.Kind, b.Kind)
	}
	ta, tb := a.T.toReal(), b.T.toReal()
	switch {
	case len(ta.Dims) == 1 && len(tb.Dims) == 1:
		if ta.Dims[0] != tb.Dims[0] {
			return Value{}, vmErrf(ErrTypeMismatch, "Dot length mismatch")
		}
		return RealValue(blas.DDot(ta.R, tb.R)), nil
	case len(ta.Dims) == 2 && len(tb.Dims) == 1:
		m, n := ta.Dims[0], ta.Dims[1]
		if n != tb.Dims[0] {
			return Value{}, vmErrf(ErrTypeMismatch, "Dot shape mismatch")
		}
		out := NewRealTensor(m)
		blas.DGemv(m, n, ta.R, tb.R, out.R)
		return TensorValue(out), nil
	case len(ta.Dims) == 2 && len(tb.Dims) == 2:
		m, k0, n := ta.Dims[0], ta.Dims[1], tb.Dims[1]
		if k0 != tb.Dims[0] {
			return Value{}, vmErrf(ErrTypeMismatch, "Dot shape mismatch")
		}
		out := NewRealTensor(m, n)
		blas.DGemm(m, k0, n, ta.R, tb.R, out.R)
		return TensorValue(out), nil
	}
	return Value{}, vmErrf(ErrUnsupported, "Dot of ranks %d, %d", len(a.T.Dims), len(b.T.Dims))
}

// toReal returns a real view/copy of the tensor.
func (t *Tensor) toReal() *Tensor {
	if t.Elem == KReal {
		return t
	}
	out := NewRealTensor(t.Dims...)
	for i, v := range t.I {
		out.R[i] = float64(v)
	}
	return out
}

// callInterp evaluates an escaped expression in the interpreter with the
// current variable values substituted in (paper §2.2).
func (m *machine) callInterp(idx int) (Value, error) {
	if m.k == nil {
		return Value{}, vmErrf(ErrUnsupported, "no kernel attached for interpreter escape")
	}
	b := pattern.Bindings{}
	for i, sym := range m.cf.SlotSyms {
		if sym != nil && m.slots[i].Kind != KVoid {
			b[sym] = ToExpr(m.slots[i])
		}
	}
	bound := pattern.Substitute(m.cf.Escapes[idx], b)
	out, err := m.k.Run(bound)
	if err != nil {
		return Value{}, vmErrf(ErrUnsupported, "interpreter escape: %v", err)
	}
	if out == expr.SymAborted {
		return Value{}, vmErrf(ErrAborted, "aborted")
	}
	v, convErr := FromExpr(out)
	if convErr != nil {
		return Value{}, vmErrf(ErrUnsupported, "interpreter escape result: %v", convErr)
	}
	return v, nil
}
