package vm

import (
	"fmt"

	"wolfc/internal/expr"
	"wolfc/internal/kernel"
)

// The bytecode compiler: a single forward monolithic transformation (paper
// §2.2) from the expression AST to WVM bytecode. Types are propagated
// bottom-up; anything unknown is assumed Real, and unsupported expressions
// compile to interpreter-escape instructions.

// ctype is the compile-time type of an expression: a scalar kind, or a
// tensor with an element kind.
type ctype struct {
	kind Kind
	elem Kind // element kind when kind == KTensor
}

// KDyn is a compile-time-only kind for values whose runtime type is unknown
// (interpreter escapes); OpCoerce narrows them where a static type is
// required.
const KDyn Kind = 100

var (
	ctDyn     = ctype{kind: KDyn}
	ctInt     = ctype{kind: KInt}
	ctReal    = ctype{kind: KReal}
	ctBool    = ctype{kind: KBool}
	ctVoid    = ctype{kind: KVoid}
	ctComplex = ctype{kind: KComplex}
)

func ctTensor(elem Kind) ctype { return ctype{kind: KTensor, elem: elem} }

// CompileError reports why an expression cannot be bytecode-compiled at all
// (escapes handle merely-unsupported subexpressions; this is for structural
// failures like string arguments).
type CompileError struct{ Msg string }

func (e *CompileError) Error() string { return e.Msg }

// ArgSpec declares one compiled-function parameter, mirroring the classic
// Compile[{{x, _Real}, {v, _Real, 1}}, ...] specifications.
type ArgSpec struct {
	Name *expr.Symbol
	Type ctype
}

// ParseArgSpecs interprets the first argument of Compile: a list of names
// (assumed Real), or {name, _Type} / {name, _Type, rank} lists.
func ParseArgSpecs(spec expr.Expr) ([]ArgSpec, error) {
	l, ok := expr.IsNormal(spec, expr.SymList)
	if !ok {
		return nil, &CompileError{Msg: "Compile: argument list expected"}
	}
	var out []ArgSpec
	for _, a := range l.Args() {
		switch x := a.(type) {
		case *expr.Symbol:
			out = append(out, ArgSpec{Name: x, Type: ctReal})
		case *expr.Normal:
			item, ok := expr.IsNormal(x, expr.SymList)
			if !ok || item.Len() < 1 || item.Len() > 3 {
				return nil, &CompileError{Msg: fmt.Sprintf("Compile: bad argument spec %s", expr.InputForm(a))}
			}
			name, ok := item.Arg(1).(*expr.Symbol)
			if !ok {
				return nil, &CompileError{Msg: fmt.Sprintf("Compile: bad argument name in %s", expr.InputForm(a))}
			}
			t := ctReal
			if item.Len() >= 2 {
				blank, ok := expr.IsNormal(item.Arg(2), expr.SymBlank)
				if !ok || blank.Len() != 1 {
					return nil, &CompileError{Msg: fmt.Sprintf("Compile: bad type pattern in %s", expr.InputForm(a))}
				}
				head, ok := blank.Arg(1).(*expr.Symbol)
				if !ok {
					return nil, &CompileError{Msg: "Compile: bad type head"}
				}
				switch head.Name {
				case "Integer":
					t = ctInt
				case "Real":
					t = ctReal
				case "Complex":
					t = ctComplex
				case "True", "False", "Boolean":
					t = ctBool
				default:
					return nil, &CompileError{Msg: fmt.Sprintf("Compile: unsupported type _%s", head.Name)}
				}
			}
			if item.Len() == 3 {
				rank, ok := item.Arg(3).(*expr.Integer)
				if !ok || !rank.IsMachine() || rank.Int64() < 1 {
					return nil, &CompileError{Msg: "Compile: bad tensor rank"}
				}
				t = ctTensor(t.kind)
			}
			out = append(out, ArgSpec{Name: name, Type: t})
		default:
			return nil, &CompileError{Msg: fmt.Sprintf("Compile: bad argument spec %s", expr.InputForm(a))}
		}
	}
	return out, nil
}

// CompileExpr compiles the classic form Compile[{specs...}, body].
func CompileExpr(k *kernel.Kernel, e expr.Expr) (*CompiledFunction, error) {
	n, ok := expr.IsNormal(e, expr.Sym("Compile"))
	if !ok || n.Len() < 2 {
		return nil, &CompileError{Msg: "Compile[{args}, body] expected"}
	}
	specs, err := ParseArgSpecs(n.Arg(1))
	if err != nil {
		return nil, err
	}
	return Compile(k, specs, n.Arg(2))
}

// Compile translates body with the given parameters into WVM bytecode.
func Compile(k *kernel.Kernel, args []ArgSpec, body expr.Expr) (*CompiledFunction, error) {
	c := &compiler{
		k:     k,
		slots: map[*expr.Symbol]int{},
		cf: &CompiledFunction{
			NumArgs:         len(args),
			CompilerVersion: 11,
			EngineVersion:   12,
		},
	}
	for _, a := range args {
		idx := c.newSlot(a.Name, a.Type)
		c.cf.ArgKinds = append(c.cf.ArgKinds, c.slotTypes[idx].kind)
	}
	c.cf.Source = expr.New(expr.SymFunction, argNameList(args), body)
	// AST-level CSE before code generation (§2.2).
	body = cseOptimize(body)
	c.inferVarTypes(body)
	t, err := c.compile(body, true)
	if err != nil {
		return nil, err
	}
	_ = t
	c.emit(OpRet, 0, 0)
	for _, st := range c.slotTypes {
		c.cf.SlotKinds = append(c.cf.SlotKinds, st.kind)
	}
	return c.cf, nil
}

func argNameList(args []ArgSpec) expr.Expr {
	names := make([]expr.Expr, len(args))
	for i, a := range args {
		names[i] = a.Name
	}
	return expr.List(names...)
}

type compiler struct {
	k         *kernel.Kernel
	cf        *CompiledFunction
	slots     map[*expr.Symbol]int
	slotTypes []ctype
}

func (c *compiler) newSlot(sym *expr.Symbol, t ctype) int {
	idx := len(c.slotTypes)
	c.slots[sym] = idx
	c.slotTypes = append(c.slotTypes, t)
	c.cf.SlotSyms = append(c.cf.SlotSyms, sym)
	return idx
}

func (c *compiler) emit(op Op, a, b int32) int {
	c.cf.Code = append(c.cf.Code, Instr{Op: op, A: a, B: b})
	return len(c.cf.Code) - 1
}

func (c *compiler) patch(at int, target int) {
	c.cf.Code[at].A = int32(target)
}

func (c *compiler) here() int { return len(c.cf.Code) }

func (c *compiler) pushConst(v Value) {
	for i, cv := range c.cf.Consts {
		if cv.Kind == v.Kind && cv == v {
			c.emit(OpPushConst, int32(i), 0)
			return
		}
	}
	c.cf.Consts = append(c.cf.Consts, v)
	c.emit(OpPushConst, int32(len(c.cf.Consts)-1), 0)
}

// inferVarTypes fixpoints variable types over all assignments in the body so
// a single forward pass can emit typed opcodes.
func (c *compiler) inferVarTypes(body expr.Expr) {
	for pass := 0; pass < 4; pass++ {
		changed := false
		var walk func(e expr.Expr)
		walk = func(e expr.Expr) {
			n, ok := e.(*expr.Normal)
			if !ok {
				return
			}
			if h, ok := n.Head().(*expr.Symbol); ok {
				switch h.Name {
				case "Set":
					if n.Len() == 2 {
						if sym, ok := n.Arg(1).(*expr.Symbol); ok {
							t := c.typeOf(n.Arg(2))
							if c.recordVar(sym, t) {
								changed = true
							}
						}
					}
				case "Module", "Block", "With":
					if n.Len() == 2 {
						if l, ok := expr.IsNormal(n.Arg(1), expr.SymList); ok {
							for _, v := range l.Args() {
								if s, ok := expr.IsNormalN(v, expr.SymSet, 2); ok {
									if sym, ok := s.Arg(1).(*expr.Symbol); ok {
										if c.recordVar(sym, c.typeOf(s.Arg(2))) {
											changed = true
										}
									}
								} else if sym, ok := v.(*expr.Symbol); ok {
									if c.recordVar(sym, ctReal) {
										changed = true
									}
								}
							}
						}
					}
				case "Do", "Table", "Sum":
					for i := 2; i <= n.Len(); i++ {
						if it, ok := expr.IsNormal(n.Arg(i), expr.SymList); ok && it.Len() >= 2 {
							if sym, ok := it.Arg(1).(*expr.Symbol); ok {
								t := ctInt
								for j := 2; j <= it.Len(); j++ {
									if c.typeOf(it.Arg(j)).kind == KReal {
										t = ctReal
									}
								}
								if c.recordVar(sym, t) {
									changed = true
								}
							}
						}
					}
				case "For":
					// Handled through the nested Set in its init/step.
				}
			}
			walk(n.Head())
			for _, a := range n.Args() {
				walk(a)
			}
		}
		walk(body)
		if !changed {
			break
		}
	}
}

// recordVar joins a type into a variable slot, creating it on first sight;
// reports whether anything changed.
func (c *compiler) recordVar(sym *expr.Symbol, t ctype) bool {
	idx, ok := c.slots[sym]
	if !ok {
		c.newSlot(sym, t)
		return true
	}
	joined := joinTypes(c.slotTypes[idx], t)
	if joined != c.slotTypes[idx] {
		c.slotTypes[idx] = joined
		return true
	}
	return false
}

// joinTypes computes the least upper type of two assignments to one slot.
func joinTypes(a, b ctype) ctype {
	if a == b {
		return a
	}
	if a.kind == KVoid {
		return b
	}
	if b.kind == KVoid {
		return a
	}
	if a.kind == KInt && b.kind == KReal || a.kind == KReal && b.kind == KInt {
		return ctReal
	}
	if a.kind == KTensor && b.kind == KTensor {
		return ctTensor(joinTypes(ctype{kind: a.elem}, ctype{kind: b.elem}).kind)
	}
	// Incompatible: fall back to Real (the "unknown is Real" rule).
	return ctReal
}

// typeOf infers the type of an expression bottom-up; unknown is Real.
func (c *compiler) typeOf(e expr.Expr) ctype {
	switch x := e.(type) {
	case *expr.Integer:
		if x.IsMachine() {
			return ctInt
		}
		return ctReal
	case *expr.Real:
		return ctReal
	case *expr.Complex:
		return ctComplex
	case *expr.Rational:
		return ctReal
	case *expr.Symbol:
		if x == expr.SymTrue || x == expr.SymFalse {
			return ctBool
		}
		if x == expr.SymNull {
			return ctVoid
		}
		if idx, ok := c.slots[x]; ok {
			return c.slotTypes[idx]
		}
		return ctReal
	case *expr.Normal:
		h, ok := x.Head().(*expr.Symbol)
		if !ok {
			return ctReal
		}
		switch h.Name {
		case "List":
			elem := KInt
			for _, a := range x.Args() {
				at := c.typeOf(a)
				switch at.kind {
				case KReal:
					elem = KReal
				case KTensor:
					// Nested list: element kind bubbles up.
					if at.elem == KReal {
						elem = KReal
					}
				}
			}
			return ctTensor(elem)
		case "Plus", "Times", "Subtract", "Minus", "Mod", "Quotient", "Max", "Min":
			t := ctInt
			for _, a := range x.Args() {
				at := c.typeOf(a)
				if at.kind == KReal {
					t = ctReal
				}
				if at.kind == KTensor {
					return at
				}
			}
			return t
		case "Divide":
			return ctReal
		case "Power":
			bt := c.typeOf(x.Arg(1))
			et := c.typeOf(x.Arg(2))
			if bt.kind == KInt && et.kind == KInt {
				if lit, ok := x.Arg(2).(*expr.Integer); ok && lit.IsMachine() && lit.Int64() >= 0 {
					return ctInt
				}
			}
			return ctReal
		case "Equal", "Unequal", "Less", "LessEqual", "Greater", "GreaterEqual",
			"And", "Or", "Not", "SameQ", "UnsameQ", "EvenQ", "OddQ":
			return ctBool
		case "If":
			if x.Len() >= 3 {
				return joinTypes(c.typeOf(x.Arg(2)), c.typeOf(x.Arg(3)))
			}
			if x.Len() == 2 {
				return c.typeOf(x.Arg(2))
			}
			return ctVoid
		case "CompoundExpression":
			if x.Len() == 0 {
				return ctVoid
			}
			return c.typeOf(x.Arg(x.Len()))
		case "Module", "Block":
			if x.Len() == 2 {
				return c.typeOf(x.Arg(2))
			}
			return ctVoid
		case "While", "Do", "For":
			return ctVoid
		case "Set":
			if x.Len() == 2 {
				return c.typeOf(x.Arg(2))
			}
			return ctVoid
		case "Increment", "Decrement", "AddTo", "SubtractFrom", "TimesBy":
			return c.typeOf(x.Arg(1))
		case "DivideBy":
			return ctReal
		case "Part":
			t := c.typeOf(x.Arg(1))
			if t.kind == KTensor {
				// Consuming one index of a rank-1 tensor yields the scalar.
				return ctype{kind: t.elem}
			}
			return ctReal
		case "Length", "Floor", "Ceiling", "Round", "Sign", "Boole",
			"BitAnd", "BitOr", "BitXor", "BitShiftLeft", "BitShiftRight":
			return ctInt
		case "Sin", "Cos", "Tan", "Exp", "Log", "Sqrt", "ArcTan", "ArcSin",
			"ArcCos", "N":
			return ctReal
		case "Abs":
			return c.typeOf(x.Arg(1))
		case "Total":
			t := c.typeOf(x.Arg(1))
			if t.kind == KTensor {
				return ctype{kind: t.elem}
			}
			return ctReal
		case "Dot":
			return ctTensor(KReal) // refined at compile time for vec·vec
		case "RandomReal":
			return ctReal
		case "RandomInteger":
			return ctInt
		case "Table":
			return ctTensor(c.typeOf(x.Arg(1)).kind)
		case "ConstantArray":
			// Evaluated through an interpreter escape; the element type
			// follows the fill value.
			if x.Len() >= 1 {
				return ctTensor(c.typeOf(x.Arg(1)).kind)
			}
			return ctTensor(KReal)
		}
		return ctReal
	}
	return ctReal
}

// coerce emits conversions to make the value on the stack (of type from)
// usable as type want. It returns the resulting type; incompatible pairs
// are reported as a compile error.
func (c *compiler) coerce(from, want ctype) (ctype, error) {
	if from == want || want.kind == KVoid {
		return from, nil
	}
	if from.kind == KDyn {
		// Escaped expressions carry no static type; narrow at runtime.
		c.emit(OpCoerce, int32(want.kind), 0)
		return want, nil
	}
	if from.kind == KInt && want.kind == KReal {
		c.emit(OpToReal, 0, 0)
		return ctReal, nil
	}
	if from.kind == KTensor && want.kind == KTensor {
		if from.elem == KInt && want.elem == KReal {
			c.emit(OpToReal, 0, 0)
			return want, nil
		}
		return from, nil
	}
	return from, &CompileError{Msg: fmt.Sprintf("cannot convert %v to %v", from.kind, want.kind)}
}

// compile emits code for e. When needValue is false the expression is in
// statement position and must leave the stack unchanged. Returns the type
// of the pushed value (ctVoid when nothing was pushed).
func (c *compiler) compile(e expr.Expr, needValue bool) (ctype, error) {
	switch x := e.(type) {
	case *expr.Integer:
		if !needValue {
			return ctVoid, nil
		}
		if !x.IsMachine() {
			return c.escape(e, needValue)
		}
		c.pushConst(IntValue(x.Int64()))
		return ctInt, nil
	case *expr.Real:
		if !needValue {
			return ctVoid, nil
		}
		c.pushConst(RealValue(x.V))
		return ctReal, nil
	case *expr.Rational:
		if !needValue {
			return ctVoid, nil
		}
		f, _ := x.V.Float64()
		c.pushConst(RealValue(f))
		return ctReal, nil
	case *expr.Symbol:
		if !needValue {
			return ctVoid, nil
		}
		switch x {
		case expr.SymTrue:
			c.pushConst(BoolValue(true))
			return ctBool, nil
		case expr.SymFalse:
			c.pushConst(BoolValue(false))
			return ctBool, nil
		case expr.SymNull:
			c.pushConst(Value{Kind: KVoid})
			return ctVoid, nil
		}
		if x.Name == "Pi" {
			c.pushConst(RealValue(3.141592653589793))
			return ctReal, nil
		}
		if x.Name == "E" {
			c.pushConst(RealValue(2.718281828459045))
			return ctReal, nil
		}
		if idx, ok := c.slots[x]; ok {
			c.emit(OpLoad, int32(idx), 0)
			return c.slotTypes[idx], nil
		}
		return c.escape(e, needValue)
	case *expr.String:
		// Strings are outside the WVM's datatypes (limitation L1).
		return ctVoid, &CompileError{Msg: "strings are not supported by the bytecode compiler"}
	case *expr.Normal:
		return c.compileNormal(x, needValue)
	}
	return c.escape(e, needValue)
}

func (c *compiler) compileNormal(n *expr.Normal, needValue bool) (ctype, error) {
	h, ok := n.Head().(*expr.Symbol)
	if !ok {
		return c.escape(n, needValue)
	}
	switch h.Name {
	case "CompoundExpression":
		for i := 1; i < n.Len(); i++ {
			if _, err := c.compile(n.Arg(i), false); err != nil {
				return ctVoid, err
			}
		}
		if n.Len() == 0 {
			return ctVoid, nil
		}
		return c.compile(n.Arg(n.Len()), needValue)

	case "Set":
		if n.Len() != 2 {
			return c.escape(n, needValue)
		}
		return c.compileSet(n.Arg(1), n.Arg(2), needValue)

	case "Module", "Block":
		if n.Len() != 2 {
			return c.escape(n, needValue)
		}
		l, ok := expr.IsNormal(n.Arg(1), expr.SymList)
		if !ok {
			return c.escape(n, needValue)
		}
		for _, v := range l.Args() {
			if s, ok := expr.IsNormalN(v, expr.SymSet, 2); ok {
				if _, err := c.compileSet(s.Arg(1), s.Arg(2), false); err != nil {
					return ctVoid, err
				}
			}
		}
		return c.compile(n.Arg(2), needValue)

	case "If":
		return c.compileIf(n, needValue)
	case "While":
		return c.compileWhile(n, needValue)
	case "For":
		return c.compileFor(n, needValue)
	case "Do":
		return c.compileDo(n, needValue)
	case "Table":
		return c.compileTable(n, needValue)

	case "Plus":
		return c.compileNaryArith(n, OpAddI, OpAddR, needValue)
	case "Times":
		return c.compileNaryArith(n, OpMulI, OpMulR, needValue)
	case "Subtract":
		if n.Len() != 2 {
			return c.escape(n, needValue)
		}
		return c.compileBinArith(n.Arg(1), n.Arg(2), OpSubI, OpSubR, needValue)
	case "Minus":
		if n.Len() != 1 {
			return c.escape(n, needValue)
		}
		t, err := c.compile(n.Arg(1), true)
		if err != nil {
			return ctVoid, err
		}
		switch t.kind {
		case KInt:
			c.emit(OpNegI, 0, 0)
		case KReal:
			c.emit(OpNegR, 0, 0)
		default:
			return ctVoid, &CompileError{Msg: "Minus of non-scalar"}
		}
		return c.discardIfStmt(t, needValue), nil
	case "Divide":
		if n.Len() != 2 {
			return c.escape(n, needValue)
		}
		t1, err := c.compileAs(n.Arg(1), ctReal)
		if err != nil {
			return ctVoid, err
		}
		_ = t1
		if _, err := c.compileAs(n.Arg(2), ctReal); err != nil {
			return ctVoid, err
		}
		c.emit(OpDivR, 0, 0)
		return c.discardIfStmt(ctReal, needValue), nil
	case "Power":
		if n.Len() != 2 {
			return c.escape(n, needValue)
		}
		want := c.typeOf(n)
		if want.kind == KInt {
			if _, err := c.compileAs(n.Arg(1), ctInt); err != nil {
				return ctVoid, err
			}
			if _, err := c.compileAs(n.Arg(2), ctInt); err != nil {
				return ctVoid, err
			}
			c.emit(OpPowI, 0, 0)
			return c.discardIfStmt(ctInt, needValue), nil
		}
		if _, err := c.compileAs(n.Arg(1), ctReal); err != nil {
			return ctVoid, err
		}
		if _, err := c.compileAs(n.Arg(2), ctReal); err != nil {
			return ctVoid, err
		}
		c.emit(OpPowR, 0, 0)
		return c.discardIfStmt(ctReal, needValue), nil
	case "Mod":
		if n.Len() != 2 {
			return c.escape(n, needValue)
		}
		return c.compileIntBin(n, OpModI, needValue)
	case "Quotient":
		if n.Len() != 2 {
			return c.escape(n, needValue)
		}
		return c.compileIntBin(n, OpQuotI, needValue)

	case "Less", "LessEqual", "Greater", "GreaterEqual", "Equal", "Unequal":
		return c.compileComparison(n, h.Name, needValue)
	case "And", "Or":
		return c.compileLogic(n, h.Name == "And", needValue)
	case "Not":
		if n.Len() != 1 {
			return c.escape(n, needValue)
		}
		if _, err := c.compileAs(n.Arg(1), ctBool); err != nil {
			return ctVoid, err
		}
		c.emit(OpNot, 0, 0)
		return c.discardIfStmt(ctBool, needValue), nil

	case "Increment", "Decrement":
		return c.compileIncDec(n, h.Name == "Increment", needValue)
	case "AddTo", "SubtractFrom", "TimesBy":
		return c.compileOpAssign(n, h.Name, needValue)

	case "Sin", "Cos", "Tan", "Exp", "Log", "Sqrt", "Abs", "Floor",
		"Ceiling", "Round", "ArcTan", "ArcSin", "ArcCos", "Sign":
		return c.compileMath1(n, h.Name, needValue)
	case "Min", "Max":
		return c.compileMinMax(n, h.Name == "Min", needValue)
	case "N":
		if n.Len() != 1 {
			return c.escape(n, needValue)
		}
		t, err := c.compile(n.Arg(1), true)
		if err != nil {
			return ctVoid, err
		}
		if t.kind == KInt || (t.kind == KTensor && t.elem == KInt) {
			c.emit(OpToReal, 0, 0)
			if t.kind == KTensor {
				t = ctTensor(KReal)
			} else {
				t = ctReal
			}
		}
		return c.discardIfStmt(t, needValue), nil
	case "Boole":
		if n.Len() != 1 {
			return c.escape(n, needValue)
		}
		// Boole[b] compiles as If[b, 1, 0].
		return c.compileIf(expr.NewS("If", n.Arg(1), expr.FromInt64(1), expr.FromInt64(0)), needValue)

	case "BitAnd":
		return c.compileNaryArith(n, OpBAnd, OpBAnd, needValue)
	case "BitOr":
		return c.compileNaryArith(n, OpBOr, OpBOr, needValue)
	case "BitXor":
		return c.compileNaryArith(n, OpBXor, OpBXor, needValue)
	case "BitShiftLeft":
		if n.Len() != 2 {
			return c.escape(n, needValue)
		}
		return c.compileIntBin(n, OpShl, needValue)
	case "BitShiftRight":
		if n.Len() != 2 {
			return c.escape(n, needValue)
		}
		return c.compileIntBin(n, OpShr, needValue)

	case "Part":
		return c.compilePart(n, needValue)
	case "Length":
		if n.Len() != 1 {
			return c.escape(n, needValue)
		}
		if sym, ok := n.Arg(1).(*expr.Symbol); ok {
			if idx, found := c.slots[sym]; found && c.slotTypes[idx].kind == KTensor {
				c.emit(OpLengthV, int32(idx), 0)
				return c.discardIfStmt(ctInt, needValue), nil
			}
		}
		t, err := c.compile(n.Arg(1), true)
		if err != nil {
			return ctVoid, err
		}
		if t.kind != KTensor {
			return ctVoid, &CompileError{Msg: "Length of non-tensor"}
		}
		c.emit(OpLength, 0, 0)
		return c.discardIfStmt(ctInt, needValue), nil
	case "Total":
		if n.Len() != 1 {
			return c.escape(n, needValue)
		}
		t, err := c.compile(n.Arg(1), true)
		if err != nil {
			return ctVoid, err
		}
		if t.kind != KTensor {
			return ctVoid, &CompileError{Msg: "Total of non-tensor"}
		}
		c.emit(OpRuntime, RtTotal, 1)
		return c.discardIfStmt(ctype{kind: t.elem}, needValue), nil
	case "Reverse", "Flatten", "Transpose":
		if n.Len() != 1 {
			return c.escape(n, needValue)
		}
		t, err := c.compile(n.Arg(1), true)
		if err != nil {
			return ctVoid, err
		}
		if t.kind != KTensor {
			return ctVoid, &CompileError{Msg: h.Name + " of non-tensor"}
		}
		switch h.Name {
		case "Reverse":
			c.emit(OpRuntime, RtReverse, 1)
		case "Flatten":
			c.emit(OpRuntime, RtFlatten, 1)
		case "Transpose":
			c.emit(OpRuntime, RtTranspose, 1)
		}
		return c.discardIfStmt(t, needValue), nil
	case "Take":
		if n.Len() != 2 {
			return c.escape(n, needValue)
		}
		t, err := c.compile(n.Arg(1), true)
		if err != nil {
			return ctVoid, err
		}
		if t.kind != KTensor {
			return ctVoid, &CompileError{Msg: "Take of non-tensor"}
		}
		if _, err := c.compile(n.Arg(2), true); err != nil {
			return ctVoid, err
		}
		c.emit(OpRuntime, RtTake, 2)
		return c.discardIfStmt(t, needValue), nil
	case "Dot":
		if n.Len() != 2 {
			return c.escape(n, needValue)
		}
		t1, err := c.compile(n.Arg(1), true)
		if err != nil {
			return ctVoid, err
		}
		t2, err := c.compile(n.Arg(2), true)
		if err != nil {
			return ctVoid, err
		}
		c.emit(OpRuntime, RtDot, 2)
		out := ctTensor(KReal)
		if t1.kind == KTensor && t2.kind == KTensor {
			// vec·vec yields a scalar.
			out = ctReal // refined below
		}
		// Without rank tracking beyond rank-1/2, assume scalar for two
		// rank-1 args is not distinguishable statically; the runtime value
		// carries its own kind, so report Real for vec·vec and tensor
		// otherwise — both are safe for the stack discipline.
		_ = out
		return c.discardIfStmt(ctTensor(KReal), needValue), nil

	case "RandomReal":
		switch n.Len() {
		case 0:
			c.emit(OpRuntime, RtRandomReal, 0)
			return c.discardIfStmt(ctReal, needValue), nil
		case 1:
			if rng, ok := expr.IsNormalN(n.Arg(1), expr.SymList, 2); ok {
				if _, err := c.compileAs(rng.Arg(1), ctReal); err != nil {
					return ctVoid, err
				}
				if _, err := c.compileAs(rng.Arg(2), ctReal); err != nil {
					return ctVoid, err
				}
				c.emit(OpRuntime, RtRandomReal, 2)
				return c.discardIfStmt(ctReal, needValue), nil
			}
		}
		return c.escape(n, needValue)
	case "RandomInteger":
		if n.Len() == 1 {
			if rng, ok := expr.IsNormalN(n.Arg(1), expr.SymList, 2); ok {
				if _, err := c.compileAs(rng.Arg(1), ctInt); err != nil {
					return ctVoid, err
				}
				if _, err := c.compileAs(rng.Arg(2), ctInt); err != nil {
					return ctVoid, err
				}
				c.emit(OpRuntime, RtRandomInt, 2)
				return c.discardIfStmt(ctInt, needValue), nil
			}
		}
		return c.escape(n, needValue)
	}
	return c.escape(n, needValue)
}

// compileAs compiles e and coerces the result to want.
func (c *compiler) compileAs(e expr.Expr, want ctype) (ctype, error) {
	t, err := c.compile(e, true)
	if err != nil {
		return ctVoid, err
	}
	out, err := c.coerce(t, want)
	if err != nil {
		return ctVoid, err
	}
	if out.kind != want.kind {
		return ctVoid, &CompileError{Msg: fmt.Sprintf("expected %v, got %v for %s",
			want.kind, out.kind, expr.InputForm(e))}
	}
	return out, nil
}

// discardIfStmt pops the just-pushed value in statement position.
func (c *compiler) discardIfStmt(t ctype, needValue bool) ctype {
	if !needValue {
		c.emit(OpPop, 0, 0)
		return ctVoid
	}
	return t
}

// escape records e for interpreter evaluation at runtime (paper §2.2). Its
// static type follows the "unknown is Real" rule.
func (c *compiler) escape(e expr.Expr, needValue bool) (ctype, error) {
	c.cf.Escapes = append(c.cf.Escapes, e)
	c.emit(OpCallInterp, int32(len(c.cf.Escapes)-1), 0)
	if !needValue {
		c.emit(OpPop, 0, 0)
		return ctVoid, nil
	}
	return ctDyn, nil
}

func (c *compiler) compileSet(lhs, rhs expr.Expr, needValue bool) (ctype, error) {
	switch target := lhs.(type) {
	case *expr.Symbol:
		idx, ok := c.slots[target]
		if !ok {
			idx = c.newSlot(target, c.typeOf(rhs))
		}
		want := c.slotTypes[idx]
		t, err := c.compile(rhs, true)
		if err != nil {
			return ctVoid, err
		}
		t, err = c.coerce(t, want)
		if err != nil {
			return ctVoid, err
		}
		if needValue {
			c.emit(OpDup, 0, 0)
		}
		c.emit(OpStore, int32(idx), 0)
		if needValue {
			return t, nil
		}
		return ctVoid, nil
	case *expr.Normal:
		if p, ok := expr.IsNormal(target, expr.Sym("Part")); ok && p.Len() >= 2 {
			sym, ok := p.Arg(1).(*expr.Symbol)
			if !ok {
				return c.escape(expr.New(expr.SymSet, lhs, rhs), needValue)
			}
			idx, ok := c.slots[sym]
			if !ok || c.slotTypes[idx].kind != KTensor {
				return c.escape(expr.New(expr.SymSet, lhs, rhs), needValue)
			}
			nIdx := p.Len() - 1
			for i := 2; i <= p.Len(); i++ {
				if _, err := c.compileAs(p.Arg(i), ctInt); err != nil {
					return ctVoid, err
				}
			}
			want := ctype{kind: c.slotTypes[idx].elem}
			if _, err := c.compileAs(rhs, want); err != nil {
				return ctVoid, err
			}
			c.emit(OpSetPart, int32(idx), int32(nIdx))
			// OpSetPart leaves the stored value on the stack.
			if !needValue {
				c.emit(OpPop, 0, 0)
				return ctVoid, nil
			}
			return want, nil
		}
	}
	return c.escape(expr.New(expr.SymSet, lhs, rhs), needValue)
}

func (c *compiler) compileIf(e expr.Expr, needValue bool) (ctype, error) {
	n := e.(*expr.Normal)
	if n.Len() < 2 || n.Len() > 3 {
		return c.escape(n, needValue)
	}
	if _, err := c.compileAs(n.Arg(1), ctBool); err != nil {
		return ctVoid, err
	}
	jElse := c.emit(OpJmpIfFalse, 0, 0)
	resType := c.typeOf(n)
	if needValue && resType.kind == KVoid {
		resType = ctReal
	}
	want := resType
	if !needValue {
		want = ctVoid
	}
	if needValue {
		if _, err := c.compileAs(n.Arg(2), want); err != nil {
			return ctVoid, err
		}
	} else {
		if _, err := c.compile(n.Arg(2), false); err != nil {
			return ctVoid, err
		}
	}
	jEnd := c.emit(OpJmp, 0, 0)
	c.patch(jElse, c.here())
	if n.Len() == 3 {
		if needValue {
			if _, err := c.compileAs(n.Arg(3), want); err != nil {
				return ctVoid, err
			}
		} else {
			if _, err := c.compile(n.Arg(3), false); err != nil {
				return ctVoid, err
			}
		}
	} else if needValue {
		c.pushConst(Value{Kind: KVoid})
	}
	c.patch(jEnd, c.here())
	if needValue {
		return resType, nil
	}
	return ctVoid, nil
}

func (c *compiler) compileWhile(n *expr.Normal, needValue bool) (ctype, error) {
	if n.Len() < 1 || n.Len() > 2 {
		return c.escape(n, needValue)
	}
	top := c.here()
	c.emit(OpAbortCheck, 0, 0)
	if _, err := c.compileAs(n.Arg(1), ctBool); err != nil {
		return ctVoid, err
	}
	jEnd := c.emit(OpJmpIfFalse, 0, 0)
	if n.Len() == 2 {
		if _, err := c.compile(n.Arg(2), false); err != nil {
			return ctVoid, err
		}
	}
	c.emit(OpJmp, int32(top), 0)
	c.patch(jEnd, c.here())
	if needValue {
		c.pushConst(Value{Kind: KVoid})
		return ctVoid, nil
	}
	return ctVoid, nil
}

func (c *compiler) compileFor(n *expr.Normal, needValue bool) (ctype, error) {
	if n.Len() < 3 || n.Len() > 4 {
		return c.escape(n, needValue)
	}
	if _, err := c.compile(n.Arg(1), false); err != nil {
		return ctVoid, err
	}
	top := c.here()
	c.emit(OpAbortCheck, 0, 0)
	if _, err := c.compileAs(n.Arg(2), ctBool); err != nil {
		return ctVoid, err
	}
	jEnd := c.emit(OpJmpIfFalse, 0, 0)
	if n.Len() == 4 {
		if _, err := c.compile(n.Arg(4), false); err != nil {
			return ctVoid, err
		}
	}
	if _, err := c.compile(n.Arg(3), false); err != nil {
		return ctVoid, err
	}
	c.emit(OpJmp, int32(top), 0)
	c.patch(jEnd, c.here())
	if needValue {
		c.pushConst(Value{Kind: KVoid})
	}
	return ctVoid, nil
}

// iterVar parses {i, a, b} / {i, n} / n iterator specs for compiled loops.
func (c *compiler) iterParts(spec expr.Expr) (sym *expr.Symbol, lo, hi, step expr.Expr, ok bool) {
	one := expr.FromInt64(1)
	if l, isList := expr.IsNormal(spec, expr.SymList); isList {
		switch l.Len() {
		case 2:
			s, isSym := l.Arg(1).(*expr.Symbol)
			if !isSym {
				return nil, nil, nil, nil, false
			}
			return s, one, l.Arg(2), one, true
		case 3:
			s, isSym := l.Arg(1).(*expr.Symbol)
			if !isSym {
				return nil, nil, nil, nil, false
			}
			return s, l.Arg(2), l.Arg(3), one, true
		case 4:
			s, isSym := l.Arg(1).(*expr.Symbol)
			if !isSym {
				return nil, nil, nil, nil, false
			}
			return s, l.Arg(2), l.Arg(3), l.Arg(4), true
		}
		return nil, nil, nil, nil, false
	}
	return nil, one, spec, one, true
}

func (c *compiler) compileDo(n *expr.Normal, needValue bool) (ctype, error) {
	if n.Len() != 2 {
		return c.escape(n, needValue)
	}
	sym, lo, hi, step, ok := c.iterParts(n.Arg(2))
	if !ok {
		return c.escape(n, needValue)
	}
	if sym == nil {
		sym = expr.Sym(fmt.Sprintf("WVM$do%d", c.here()))
		c.recordVar(sym, ctInt)
	}
	return c.compileCountedLoop(sym, lo, hi, step, func() error {
		_, err := c.compile(n.Arg(1), false)
		return err
	}, needValue)
}

// compileCountedLoop emits i = lo; while (i <= hi) { body; i += step }.
// Only constant positive steps are supported; others escape.
func (c *compiler) compileCountedLoop(sym *expr.Symbol, lo, hi, step expr.Expr,
	body func() error, needValue bool) (ctype, error) {
	idxSlot, ok := c.slots[sym]
	if !ok {
		idxSlot = c.newSlot(sym, ctInt)
	}
	iterT := c.slotTypes[idxSlot]
	if iterT.kind != KInt && iterT.kind != KReal {
		return ctVoid, &CompileError{Msg: "loop variable must be numeric"}
	}
	// hi is evaluated once into a scratch slot.
	hiSym := expr.Sym(fmt.Sprintf("WVM$hi%d", c.here()))
	hiSlot := c.newSlot(hiSym, iterT)
	if _, err := c.compileAs(hi, iterT); err != nil {
		return ctVoid, err
	}
	c.emit(OpStore, int32(hiSlot), 0)
	if _, err := c.compileAs(lo, iterT); err != nil {
		return ctVoid, err
	}
	c.emit(OpStore, int32(idxSlot), 0)
	top := c.here()
	c.emit(OpAbortCheck, 0, 0)
	c.emit(OpLoad, int32(idxSlot), 0)
	c.emit(OpLoad, int32(hiSlot), 0)
	if iterT.kind == KInt {
		c.emit(OpLeI, 0, 0)
	} else {
		c.emit(OpLeR, 0, 0)
	}
	jEnd := c.emit(OpJmpIfFalse, 0, 0)
	if err := body(); err != nil {
		return ctVoid, err
	}
	c.emit(OpLoad, int32(idxSlot), 0)
	if _, err := c.compileAs(step, iterT); err != nil {
		return ctVoid, err
	}
	if iterT.kind == KInt {
		c.emit(OpAddI, 0, 0)
	} else {
		c.emit(OpAddR, 0, 0)
	}
	c.emit(OpStore, int32(idxSlot), 0)
	c.emit(OpJmp, int32(top), 0)
	c.patch(jEnd, c.here())
	if needValue {
		c.pushConst(Value{Kind: KVoid})
	}
	return ctVoid, nil
}

func (c *compiler) compileTable(n *expr.Normal, needValue bool) (ctype, error) {
	if n.Len() != 2 {
		return c.escape(n, needValue)
	}
	sym, lo, hi, step, ok := c.iterParts(n.Arg(2))
	if !ok {
		return c.escape(n, needValue)
	}
	// Only unit-step integer tables compile; the rest escapes.
	if lit, isInt := step.(*expr.Integer); !isInt || lit.Int64() != 1 {
		return c.escape(n, needValue)
	}
	if lit, isInt := lo.(*expr.Integer); !isInt || lit.Int64() != 1 {
		return c.escape(n, needValue)
	}
	bodyT := c.typeOf(n.Arg(1))
	if bodyT.kind != KInt && bodyT.kind != KReal {
		return c.escape(n, needValue)
	}
	if sym == nil {
		sym = expr.Sym(fmt.Sprintf("WVM$tbl%d", c.here()))
	}
	c.recordVar(sym, ctInt)
	// result = zero tensor of length hi
	resSym := expr.Sym(fmt.Sprintf("WVM$res%d", c.here()))
	resSlot := c.newSlot(resSym, ctTensor(bodyT.kind))
	if _, err := c.compileAs(hi, ctInt); err != nil {
		return ctVoid, err
	}
	if bodyT.kind == KInt {
		c.emit(OpRuntime, RtTableInt, 1)
	} else {
		c.emit(OpRuntime, RtTableReal, 1)
	}
	c.emit(OpStore, int32(resSlot), 0)
	_, err := c.compileCountedLoop(sym, lo, hi, expr.FromInt64(1), func() error {
		idxSlot := c.slots[sym]
		c.emit(OpLoad, int32(idxSlot), 0)
		if _, err := c.compileAs(n.Arg(1), bodyT); err != nil {
			return err
		}
		c.emit(OpSetPart, int32(resSlot), 1)
		c.emit(OpPop, 0, 0)
		return nil
	}, false)
	if err != nil {
		return ctVoid, err
	}
	c.emit(OpLoad, int32(resSlot), 0)
	return c.discardIfStmt(ctTensor(bodyT.kind), needValue), nil
}

func (c *compiler) compileNaryArith(n *expr.Normal, opI, opR Op, needValue bool) (ctype, error) {
	if n.Len() == 0 {
		return c.escape(n, needValue)
	}
	want := c.typeOf(n)
	if want.kind != KInt && want.kind != KReal {
		return c.escape(n, needValue)
	}
	if _, err := c.compileAs(n.Arg(1), want); err != nil {
		return ctVoid, err
	}
	for i := 2; i <= n.Len(); i++ {
		if _, err := c.compileAs(n.Arg(i), want); err != nil {
			return ctVoid, err
		}
		if want.kind == KInt {
			c.emit(opI, 0, 0)
		} else {
			c.emit(opR, 0, 0)
		}
	}
	return c.discardIfStmt(want, needValue), nil
}

func (c *compiler) compileBinArith(a, b expr.Expr, opI, opR Op, needValue bool) (ctype, error) {
	want := joinTypes(c.typeOf(a), c.typeOf(b))
	if want.kind != KInt && want.kind != KReal {
		return c.escape(expr.NewS("Subtract", a, b), needValue)
	}
	if _, err := c.compileAs(a, want); err != nil {
		return ctVoid, err
	}
	if _, err := c.compileAs(b, want); err != nil {
		return ctVoid, err
	}
	if want.kind == KInt {
		c.emit(opI, 0, 0)
	} else {
		c.emit(opR, 0, 0)
	}
	return c.discardIfStmt(want, needValue), nil
}

func (c *compiler) compileIntBin(n *expr.Normal, op Op, needValue bool) (ctype, error) {
	if _, err := c.compileAs(n.Arg(1), ctInt); err != nil {
		return ctVoid, err
	}
	if _, err := c.compileAs(n.Arg(2), ctInt); err != nil {
		return ctVoid, err
	}
	c.emit(op, 0, 0)
	return c.discardIfStmt(ctInt, needValue), nil
}

var cmpOps = map[string][2]Op{
	"Less":         {OpLtI, OpLtR},
	"LessEqual":    {OpLeI, OpLeR},
	"Greater":      {OpGtI, OpGtR},
	"GreaterEqual": {OpGeI, OpGeR},
	"Equal":        {OpEqI, OpEqR},
	"Unequal":      {OpNeI, OpNeR},
}

func (c *compiler) compileComparison(n *expr.Normal, name string, needValue bool) (ctype, error) {
	if n.Len() < 2 {
		return c.escape(n, needValue)
	}
	if n.Len() > 2 {
		// a < b < c desugars to a < b && b < c.
		var conj []expr.Expr
		for i := 1; i < n.Len(); i++ {
			conj = append(conj, expr.NewS(name, n.Arg(i), n.Arg(i+1)))
		}
		return c.compileLogic(expr.NewS("And", conj...), true, needValue)
	}
	want := joinTypes(c.typeOf(n.Arg(1)), c.typeOf(n.Arg(2)))
	if want.kind != KInt && want.kind != KReal {
		return c.escape(n, needValue)
	}
	if _, err := c.compileAs(n.Arg(1), want); err != nil {
		return ctVoid, err
	}
	if _, err := c.compileAs(n.Arg(2), want); err != nil {
		return ctVoid, err
	}
	ops := cmpOps[name]
	if want.kind == KInt {
		c.emit(ops[0], 0, 0)
	} else {
		c.emit(ops[1], 0, 0)
	}
	return c.discardIfStmt(ctBool, needValue), nil
}

// compileLogic emits short-circuit And/Or.
func (c *compiler) compileLogic(e expr.Expr, isAnd bool, needValue bool) (ctype, error) {
	n := e.(*expr.Normal)
	if n.Len() == 0 {
		c.pushConst(BoolValue(isAnd))
		return c.discardIfStmt(ctBool, needValue), nil
	}
	var shorts []int
	for i := 1; i <= n.Len(); i++ {
		if _, err := c.compileAs(n.Arg(i), ctBool); err != nil {
			return ctVoid, err
		}
		if i < n.Len() {
			if isAnd {
				shorts = append(shorts, c.emit(OpJmpIfFalse, 0, 0))
			} else {
				shorts = append(shorts, c.emit(OpJmpIfTrue, 0, 0))
			}
		}
	}
	jDone := c.emit(OpJmp, 0, 0)
	shortTarget := c.here()
	c.pushConst(BoolValue(!isAnd))
	for _, s := range shorts {
		c.patch(s, shortTarget)
	}
	c.patch(jDone, c.here())
	return c.discardIfStmt(ctBool, needValue), nil
}

func (c *compiler) compileIncDec(n *expr.Normal, inc bool, needValue bool) (ctype, error) {
	if n.Len() != 1 {
		return c.escape(n, needValue)
	}
	sym, ok := n.Arg(1).(*expr.Symbol)
	if !ok {
		return c.escape(n, needValue)
	}
	idx, ok := c.slots[sym]
	if !ok {
		return c.escape(n, needValue)
	}
	t := c.slotTypes[idx]
	if t.kind != KInt && t.kind != KReal {
		return ctVoid, &CompileError{Msg: "Increment of non-numeric variable"}
	}
	c.emit(OpLoad, int32(idx), 0)
	if needValue {
		c.emit(OpDup, 0, 0) // old value is the expression's value
	}
	if t.kind == KInt {
		c.pushConst(IntValue(1))
		if inc {
			c.emit(OpAddI, 0, 0)
		} else {
			c.emit(OpSubI, 0, 0)
		}
	} else {
		c.pushConst(RealValue(1))
		if inc {
			c.emit(OpAddR, 0, 0)
		} else {
			c.emit(OpSubR, 0, 0)
		}
	}
	c.emit(OpStore, int32(idx), 0)
	if needValue {
		return t, nil
	}
	return ctVoid, nil
}

func (c *compiler) compileOpAssign(n *expr.Normal, name string, needValue bool) (ctype, error) {
	if n.Len() != 2 {
		return c.escape(n, needValue)
	}
	sym, ok := n.Arg(1).(*expr.Symbol)
	if !ok {
		return c.escape(n, needValue)
	}
	idx, ok := c.slots[sym]
	if !ok {
		return c.escape(n, needValue)
	}
	t := c.slotTypes[idx]
	if t.kind != KInt && t.kind != KReal {
		return ctVoid, &CompileError{Msg: name + " of non-numeric variable"}
	}
	c.emit(OpLoad, int32(idx), 0)
	if _, err := c.compileAs(n.Arg(2), t); err != nil {
		return ctVoid, err
	}
	var op Op
	switch name {
	case "AddTo":
		if t.kind == KInt {
			op = OpAddI
		} else {
			op = OpAddR
		}
	case "SubtractFrom":
		if t.kind == KInt {
			op = OpSubI
		} else {
			op = OpSubR
		}
	case "TimesBy":
		if t.kind == KInt {
			op = OpMulI
		} else {
			op = OpMulR
		}
	}
	c.emit(op, 0, 0)
	if needValue {
		c.emit(OpDup, 0, 0)
	}
	c.emit(OpStore, int32(idx), 0)
	if needValue {
		return t, nil
	}
	return ctVoid, nil
}

var math1IDs = map[string]int32{
	"Sin": MfSin, "Cos": MfCos, "Tan": MfTan, "Exp": MfExp, "Log": MfLog,
	"Sqrt": MfSqrt, "Abs": MfAbs, "Floor": MfFloor, "Ceiling": MfCeiling,
	"Round": MfRound, "ArcTan": MfArcTan, "ArcSin": MfArcSin,
	"ArcCos": MfArcCos, "Sign": MfSign,
}

func (c *compiler) compileMath1(n *expr.Normal, name string, needValue bool) (ctype, error) {
	if name == "ArcTan" && n.Len() == 2 {
		if _, err := c.compileAs(n.Arg(1), ctReal); err != nil {
			return ctVoid, err
		}
		if _, err := c.compileAs(n.Arg(2), ctReal); err != nil {
			return ctVoid, err
		}
		c.emit(OpMath2, MfArcTan2, 0)
		return c.discardIfStmt(ctReal, needValue), nil
	}
	if n.Len() != 1 {
		return c.escape(n, needValue)
	}
	argT := c.typeOf(n.Arg(1))
	// Abs on integers stays integral.
	if name == "Abs" && argT.kind == KInt {
		// |x| via If[x < 0, -x, x]
		arg := n.Arg(1)
		return c.compileIf(expr.NewS("If",
			expr.NewS("Less", arg, expr.FromInt64(0)),
			expr.NewS("Minus", arg), arg), needValue)
	}
	if _, err := c.compileAs(n.Arg(1), ctReal); err != nil {
		return ctVoid, err
	}
	c.emit(OpMath1, math1IDs[name], 0)
	out := ctReal
	switch name {
	case "Floor", "Ceiling", "Round", "Sign":
		out = ctInt
	}
	return c.discardIfStmt(out, needValue), nil
}

func (c *compiler) compileMinMax(n *expr.Normal, isMin bool, needValue bool) (ctype, error) {
	if n.Len() < 1 {
		return c.escape(n, needValue)
	}
	want := c.typeOf(n)
	if want.kind != KInt && want.kind != KReal {
		return c.escape(n, needValue)
	}
	if _, err := c.compileAs(n.Arg(1), want); err != nil {
		return ctVoid, err
	}
	id := int32(MfMax)
	if isMin {
		id = MfMin
	}
	for i := 2; i <= n.Len(); i++ {
		if _, err := c.compileAs(n.Arg(i), want); err != nil {
			return ctVoid, err
		}
		c.emit(OpMath2, id, 0)
	}
	return c.discardIfStmt(want, needValue), nil
}

func (c *compiler) compilePart(n *expr.Normal, needValue bool) (ctype, error) {
	if n.Len() < 2 {
		return c.escape(n, needValue)
	}
	// Element reads of a tensor variable index the slot directly, avoiding
	// the copy-on-read cost (the real WVM's Part instruction addresses the
	// register).
	if sym, ok := n.Arg(1).(*expr.Symbol); ok {
		if idx, found := c.slots[sym]; found && c.slotTypes[idx].kind == KTensor {
			for i := 2; i <= n.Len(); i++ {
				if _, err := c.compileAs(n.Arg(i), ctInt); err != nil {
					return ctVoid, err
				}
			}
			c.emit(OpPartV, int32(idx), int32(n.Len()-1))
			out := ctype{kind: c.slotTypes[idx].elem}
			if n.Len()-1 < 1 {
				out = c.slotTypes[idx]
			}
			return c.discardIfStmt(out, needValue), nil
		}
	}
	t, err := c.compile(n.Arg(1), true)
	if err != nil {
		return ctVoid, err
	}
	if t.kind != KTensor {
		return ctVoid, &CompileError{Msg: "Part of non-tensor"}
	}
	for i := 2; i <= n.Len(); i++ {
		if _, err := c.compileAs(n.Arg(i), ctInt); err != nil {
			return ctVoid, err
		}
	}
	c.emit(OpPart, int32(n.Len()-1), 0)
	return c.discardIfStmt(ctype{kind: t.elem}, needValue), nil
}
