// Package artifact is the disk tier of the compiled-artifact store
// (ROADMAP item 4): a content-addressed directory of serialised compiled
// modules keyed by the process-independent half of the compile-cache key.
// A fleet of processes sharing one directory compiles each function once;
// every later process — or the same process after a restart — loads the
// typed module from disk and only re-runs code generation.
//
// The store is deliberately dumb about what it holds: payloads are opaque
// bytes (the codegen.Marshal library format) and the caller owns key
// derivation. What the store does own is integrity and atomicity:
//
//   - Writes go to a temp file in the same directory and are renamed into
//     place, so readers never observe a partial entry and concurrent
//     writers of the same key settle on one complete file.
//   - Every entry carries a header — format magic+version, the full
//     32-byte content key, payload length, and a SHA-256 payload checksum.
//     A read validates all four; any mismatch (torn write survived a
//     crash, bit rot, a truncated file, a format bump) deletes the entry
//     and reports a clean miss. Corruption is never an error the caller
//     has to handle — the compile pipeline just recompiles and rewrites.
//
// Entries whose compiled code depends on process-local state (function-
// registry calls, CCF.RegDeps) must not reach the store; core enforces
// that gate before calling Put, mirroring the ExportLibrary rules.
package artifact

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// formatMagic versions the on-disk entry layout. Bumping the trailing
// digits invalidates every existing entry: readers treat an unknown magic
// as corruption, drop the file, and fall through to a recompile.
const formatMagic = "WCAF0001"

const (
	keyLen    = sha256.Size
	sumLen    = sha256.Size
	headerLen = len(formatMagic) + keyLen + 8 + sumLen // + payload

	// maxPayload bounds a single entry (64 MiB). Serialised modules are
	// kilobytes; anything larger is corruption, not data.
	maxPayload = 64 << 20

	entryExt = ".wca"
)

// Stats is a snapshot of store activity since Open (counters) plus the
// current on-disk footprint (gauges). BytesOnDisk/Entries track entries
// this store instance has observed: the Open scan plus its own writes,
// drops, and evictions.
type Stats struct {
	Hits         uint64 `json:"hits"`
	Misses       uint64 `json:"misses"`
	Writes       uint64 `json:"writes"`
	WriteErrors  uint64 `json:"write_errors"`
	CorruptDrops uint64 `json:"corrupt_drops"`
	Evictions    uint64 `json:"evictions"`
	BytesOnDisk  int64  `json:"bytes_on_disk"`
	Entries      int    `json:"entries"`
}

// Store is a handle on one artifact directory. Safe for concurrent use by
// any number of goroutines; multiple processes may share the directory
// (atomic rename keeps entries consistent, and cross-process races on the
// same key converge because the content key determines the payload).
type Store struct {
	dir string

	mu           sync.Mutex
	maxBytes     int64 // 0 = unbounded
	bytes        int64
	entries      int
	hits         uint64
	misses       uint64
	writes       uint64
	writeErrors  uint64
	corruptDrops uint64
	evictions    uint64

	// mem, when non-nil, makes the store memory-backed (OpenMemory): one
	// process's sessions share compiled modules through the same stable-key
	// tier without touching disk. Headers and checksums are skipped — bytes
	// in a map cannot tear — but the Get/Put/eviction contract is identical.
	mem    map[string]memEntry
	memSeq uint64

	// hitCounts tallies Get hits per entry for this store instance.
	// Eviction is least-frequently-used before oldest: an entry every
	// session reloads outlives a burst of one-shot compiles even when the
	// burst is newer. Counts are process-local (not persisted), so a fresh
	// process starts from zero and age breaks the ties.
	hitCounts map[string]uint64
}

// memEntry is one memory-backed payload; seq orders eviction (oldest
// first, standing in for the disk tier's mtime).
type memEntry struct {
	payload []byte
	seq     uint64
}

// Open creates (if needed) and scans the artifact directory. The scan
// only sizes the existing footprint; entry validation happens lazily on
// Get, so a directory full of stale or corrupt entries opens instantly.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("artifact: empty store directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("artifact: %w", err)
	}
	s := &Store{dir: dir, hitCounts: map[string]uint64{}}
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("artifact: %w", err)
	}
	for _, e := range ents {
		if e.IsDir() || filepath.Ext(e.Name()) != entryExt {
			continue
		}
		if info, err := e.Info(); err == nil {
			s.bytes += info.Size()
			s.entries++
		}
	}
	return s, nil
}

// OpenMemory returns a memory-backed store: same keying, counters, and
// bounds as the disk tier, no filesystem. A serving process uses it so all
// sessions share each other's compiles even with no -artifact-dir
// configured; entries die with the process.
func OpenMemory() *Store {
	return &Store{mem: map[string]memEntry{}, hitCounts: map[string]uint64{}}
}

// Dir returns the store directory ("" for a memory-backed store).
func (s *Store) Dir() string { return s.dir }

// InMemory reports whether the store is memory-backed.
func (s *Store) InMemory() bool { return s.mem != nil }

// SetMaxBytes bounds the on-disk footprint (0 = unbounded) and evicts
// oldest-first if the bound is already exceeded. Returns the previous
// bound.
func (s *Store) SetMaxBytes(n int64) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	prev := s.maxBytes
	if n < 0 {
		n = 0
	}
	s.maxBytes = n
	s.evictLocked()
	return prev
}

// Stats returns a snapshot of the store counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Hits:         s.hits,
		Misses:       s.misses,
		Writes:       s.writes,
		WriteErrors:  s.writeErrors,
		CorruptDrops: s.corruptDrops,
		Evictions:    s.evictions,
		BytesOnDisk:  s.bytes,
		Entries:      s.entries,
	}
}

func (s *Store) path(key string) string {
	return filepath.Join(s.dir, hex.EncodeToString([]byte(key))+entryExt)
}

// Get returns the payload stored under key, or (nil, false) on a miss.
// A present-but-invalid entry — wrong magic (format bump), key mismatch,
// bad length, checksum failure — is deleted and reported as a miss.
func (s *Store) Get(key string) ([]byte, bool) {
	if len(key) != keyLen {
		return nil, false
	}
	if s.mem != nil {
		s.mu.Lock()
		defer s.mu.Unlock()
		e, ok := s.mem[key]
		if !ok {
			s.misses++
			return nil, false
		}
		s.hits++
		s.hitCounts[key]++
		return e.payload, true
	}
	p := s.path(key)
	raw, err := os.ReadFile(p)
	if err != nil {
		s.mu.Lock()
		s.misses++
		s.mu.Unlock()
		return nil, false
	}
	payload, ok := validate(raw, key)
	if !ok {
		s.drop(p, key, int64(len(raw)))
		s.mu.Lock()
		s.misses++
		s.mu.Unlock()
		return nil, false
	}
	s.mu.Lock()
	s.hits++
	s.hitCounts[key]++
	s.mu.Unlock()
	return payload, true
}

// HitCount returns how many Get hits this store instance has served for
// key — the frequency the LFU eviction order is built from.
func (s *Store) HitCount(key string) uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.hitCounts[key]
}

// validate checks an entry's header against the expected key and returns
// the payload on success.
func validate(raw []byte, key string) ([]byte, bool) {
	if len(raw) < headerLen {
		return nil, false
	}
	off := 0
	if string(raw[:len(formatMagic)]) != formatMagic {
		return nil, false
	}
	off += len(formatMagic)
	if string(raw[off:off+keyLen]) != key {
		return nil, false
	}
	off += keyLen
	plen := binary.BigEndian.Uint64(raw[off : off+8])
	off += 8
	if plen > maxPayload || int64(plen) != int64(len(raw)-headerLen) {
		return nil, false
	}
	sum := raw[off : off+sumLen]
	off += sumLen
	payload := raw[off:]
	got := sha256.Sum256(payload)
	if string(got[:]) != string(sum) {
		return nil, false
	}
	return payload, true
}

// DropUndecodable removes an entry whose payload passed the store's
// integrity checks but could not be decoded by the caller (e.g. a module
// written by an incompatible serialiser under the same store format).
// Counted as a corrupt drop so the fleet's /metrics surfaces it.
func (s *Store) DropUndecodable(key string) {
	if len(key) != keyLen {
		return
	}
	if s.mem != nil {
		s.mu.Lock()
		if e, ok := s.mem[key]; ok {
			delete(s.mem, key)
			delete(s.hitCounts, key)
			s.bytes -= int64(len(e.payload))
			s.entries--
		}
		s.corruptDrops++
		s.mu.Unlock()
		return
	}
	p := s.path(key)
	if info, err := os.Stat(p); err == nil {
		s.drop(p, key, info.Size())
	}
}

// drop removes a corrupt entry and adjusts the footprint accounting.
func (s *Store) drop(path, key string, size int64) {
	err := os.Remove(path)
	s.mu.Lock()
	s.corruptDrops++
	if err == nil {
		delete(s.hitCounts, key)
		s.bytes -= size
		s.entries--
		if s.bytes < 0 {
			s.bytes = 0
		}
		if s.entries < 0 {
			s.entries = 0
		}
	}
	s.mu.Unlock()
}

// Put stores payload under key. Content addressing makes Put idempotent:
// if the entry already exists it is left untouched (same key ⇒ same
// payload). Write failures are counted and swallowed — the disk tier is
// an optimisation, never a correctness dependency.
func (s *Store) Put(key string, payload []byte) {
	if len(key) != keyLen || len(payload) == 0 || len(payload) > maxPayload {
		return
	}
	if s.mem != nil {
		s.mu.Lock()
		if _, ok := s.mem[key]; !ok {
			s.memSeq++
			s.mem[key] = memEntry{payload: append([]byte{}, payload...), seq: s.memSeq}
			s.writes++
			s.bytes += int64(len(payload))
			s.entries++
			s.evictLocked()
		}
		s.mu.Unlock()
		return
	}
	p := s.path(key)
	if _, err := os.Stat(p); err == nil {
		return // already stored
	}
	buf := make([]byte, 0, headerLen+len(payload))
	buf = append(buf, formatMagic...)
	buf = append(buf, key...)
	var lenb [8]byte
	binary.BigEndian.PutUint64(lenb[:], uint64(len(payload)))
	buf = append(buf, lenb[:]...)
	sum := sha256.Sum256(payload)
	buf = append(buf, sum[:]...)
	buf = append(buf, payload...)

	tmp, err := os.CreateTemp(s.dir, ".put-*")
	if err != nil {
		s.noteWriteError()
		return
	}
	tmpName := tmp.Name()
	_, werr := tmp.Write(buf)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmpName)
		s.noteWriteError()
		return
	}
	if err := os.Rename(tmpName, p); err != nil {
		os.Remove(tmpName)
		s.noteWriteError()
		return
	}
	s.mu.Lock()
	s.writes++
	s.bytes += int64(len(buf))
	s.entries++
	s.evictLocked()
	s.mu.Unlock()
}

func (s *Store) noteWriteError() {
	s.mu.Lock()
	s.writeErrors++
	s.mu.Unlock()
}

// evictLocked enforces maxBytes by deleting least-frequently-used entries
// first (this instance's hit tally), breaking ties oldest-first (mtime on
// disk, insertion order in memory). Called with s.mu held.
func (s *Store) evictLocked() {
	if s.maxBytes <= 0 || s.bytes <= s.maxBytes {
		return
	}
	if s.mem != nil {
		type mc struct {
			key  string
			e    memEntry
			hits uint64
		}
		cands := make([]mc, 0, len(s.mem))
		for k, e := range s.mem {
			cands = append(cands, mc{k, e, s.hitCounts[k]})
		}
		sort.Slice(cands, func(i, j int) bool {
			if cands[i].hits != cands[j].hits {
				return cands[i].hits < cands[j].hits
			}
			return cands[i].e.seq < cands[j].e.seq
		})
		for _, c := range cands {
			if s.bytes <= s.maxBytes {
				break
			}
			delete(s.mem, c.key)
			delete(s.hitCounts, c.key)
			s.bytes -= int64(len(c.e.payload))
			s.entries--
			s.evictions++
		}
		return
	}
	ents, err := os.ReadDir(s.dir)
	if err != nil {
		return
	}
	type cand struct {
		path  string
		key   string
		size  int64
		mtime int64
		hits  uint64
	}
	var cands []cand
	for _, e := range ents {
		if e.IsDir() || filepath.Ext(e.Name()) != entryExt {
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		c := cand{
			path:  filepath.Join(s.dir, e.Name()),
			size:  info.Size(),
			mtime: info.ModTime().UnixNano(),
		}
		// The filename is the hex content key; recover it to join against
		// the hit tally. An undecodable name just counts as never hit.
		base := e.Name()[:len(e.Name())-len(entryExt)]
		if raw, err := hex.DecodeString(base); err == nil && len(raw) == keyLen {
			c.key = string(raw)
			c.hits = s.hitCounts[c.key]
		}
		cands = append(cands, c)
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].hits != cands[j].hits {
			return cands[i].hits < cands[j].hits
		}
		return cands[i].mtime < cands[j].mtime
	})
	for _, c := range cands {
		if s.bytes <= s.maxBytes {
			break
		}
		if os.Remove(c.path) == nil {
			if c.key != "" {
				delete(s.hitCounts, c.key)
			}
			s.bytes -= c.size
			s.entries--
			s.evictions++
		}
	}
	if s.bytes < 0 {
		s.bytes = 0
	}
	if s.entries < 0 {
		s.entries = 0
	}
}
