package artifact

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func testKey(seed string) string {
	h := sha256.Sum256([]byte(seed))
	return string(h[:])
}

func mustOpen(t *testing.T) *Store {
	t.Helper()
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestPutGetRoundTrip(t *testing.T) {
	s := mustOpen(t)
	key := testKey("k1")
	payload := []byte("compiled module bytes")
	s.Put(key, payload)
	got, ok := s.Get(key)
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("Get = %q, %v; want %q, true", got, ok, payload)
	}
	st := s.Stats()
	if st.Writes != 1 || st.Hits != 1 || st.Misses != 0 || st.Entries != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.BytesOnDisk != int64(headerLen+len(payload)) {
		t.Fatalf("BytesOnDisk = %d, want %d", st.BytesOnDisk, headerLen+len(payload))
	}
}

func TestGetMissingIsMiss(t *testing.T) {
	s := mustOpen(t)
	if _, ok := s.Get(testKey("absent")); ok {
		t.Fatal("expected miss")
	}
	if st := s.Stats(); st.Misses != 1 {
		t.Fatalf("Misses = %d, want 1", st.Misses)
	}
}

func TestPutIsIdempotent(t *testing.T) {
	s := mustOpen(t)
	key := testKey("k")
	s.Put(key, []byte("payload"))
	s.Put(key, []byte("payload"))
	st := s.Stats()
	if st.Writes != 1 || st.Entries != 1 {
		t.Fatalf("stats after double Put = %+v", st)
	}
}

func TestReopenSeesExistingEntries(t *testing.T) {
	dir := t.TempDir()
	s1, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := testKey("persist")
	s1.Put(key, []byte("survives restarts"))

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := s2.Get(key)
	if !ok || string(got) != "survives restarts" {
		t.Fatalf("reopened Get = %q, %v", got, ok)
	}
	if st := s2.Stats(); st.Entries != 1 || st.BytesOnDisk == 0 {
		t.Fatalf("reopen scan stats = %+v", st)
	}
}

// Corruption anywhere in the entry — header or payload — must be a clean
// miss that removes the file, never an error or a wrong payload.
func TestCorruptionIsCleanMiss(t *testing.T) {
	for _, tc := range []struct {
		name   string
		mutate func([]byte) []byte
	}{
		{"magic flip", flipAt(0)},
		{"version bump", flipAt(len(formatMagic) - 1)},
		{"key flip", flipAt(len(formatMagic) + 3)},
		{"length flip", flipAt(len(formatMagic) + keyLen + 7)},
		{"checksum flip", flipAt(len(formatMagic) + keyLen + 8 + 5)},
		{"payload flip", flipAt(headerLen + 2)},
		{"truncated header", func(b []byte) []byte { return b[:headerLen/2] }},
		{"truncated payload", func(b []byte) []byte { return b[:len(b)-3] }},
		{"empty file", func(b []byte) []byte { return nil }},
		{"appended junk", func(b []byte) []byte { return append(b, 0xFF, 0x00, 0xFF) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s := mustOpen(t)
			key := testKey("victim " + tc.name)
			s.Put(key, []byte("payload bytes under test"))
			p := s.path(key)
			raw, err := os.ReadFile(p)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(p, tc.mutate(raw), 0o644); err != nil {
				t.Fatal(err)
			}
			if got, ok := s.Get(key); ok {
				t.Fatalf("corrupt entry returned payload %q", got)
			}
			if _, err := os.Stat(p); !os.IsNotExist(err) {
				t.Fatalf("corrupt entry not removed: %v", err)
			}
			st := s.Stats()
			if st.CorruptDrops != 1 {
				t.Fatalf("CorruptDrops = %d, want 1", st.CorruptDrops)
			}
			// The store self-heals: a rewrite after the drop works.
			s.Put(key, []byte("payload bytes under test"))
			if _, ok := s.Get(key); !ok {
				t.Fatal("rewrite after corrupt drop missed")
			}
		})
	}
}

func flipAt(off int) func([]byte) []byte {
	return func(b []byte) []byte {
		if off < len(b) {
			b[off] ^= 0x40
		}
		return b
	}
}

// A format-version bump (different magic) written by a future process
// reads as a miss here and is dropped, so mixed-version fleets degrade to
// recompiles rather than loading entries they cannot parse.
func TestVersionBumpInvalidates(t *testing.T) {
	s := mustOpen(t)
	key := testKey("versioned")
	s.Put(key, []byte("old world payload"))
	p := s.path(key)
	raw, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	copy(raw, "WCAF9999")
	if err := os.WriteFile(p, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(key); ok {
		t.Fatal("future-format entry served")
	}
	if st := s.Stats(); st.CorruptDrops != 1 {
		t.Fatalf("CorruptDrops = %d, want 1", st.CorruptDrops)
	}
}

// An entry stored under one key must not satisfy a different key even if
// the file is copied into place (the header binds the full content key,
// not just the filename).
func TestKeyMismatchRejected(t *testing.T) {
	s := mustOpen(t)
	k1, k2 := testKey("a"), testKey("b")
	s.Put(k1, []byte("payload for a"))
	raw, err := os.ReadFile(s.path(k1))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(s.path(k2), raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if got, ok := s.Get(k2); ok {
		t.Fatalf("cross-key entry served: %q", got)
	}
}

func TestRejectsBadKeysAndPayloads(t *testing.T) {
	s := mustOpen(t)
	s.Put("short", []byte("x"))  // wrong key length
	s.Put(testKey("empty"), nil) // empty payload
	if st := s.Stats(); st.Writes != 0 {
		t.Fatalf("invalid Put wrote: %+v", st)
	}
	if _, ok := s.Get("short"); ok {
		t.Fatal("short key hit")
	}
}

func TestMaxBytesEvictsOldest(t *testing.T) {
	s := mustOpen(t)
	payload := bytes.Repeat([]byte("x"), 100)
	entrySize := int64(headerLen + len(payload))
	keys := make([]string, 4)
	for i := range keys {
		keys[i] = testKey(fmt.Sprintf("evict-%d", i))
		s.Put(keys[i], payload)
		// mtime granularity on some filesystems is coarse; space the
		// writes so oldest-first ordering is deterministic.
		past := time.Now().Add(time.Duration(i-len(keys)) * time.Hour)
		os.Chtimes(s.path(keys[i]), past, past)
	}
	s.SetMaxBytes(2 * entrySize)
	st := s.Stats()
	if st.Entries != 2 || st.Evictions != 2 {
		t.Fatalf("after SetMaxBytes: %+v", st)
	}
	if _, ok := s.Get(keys[0]); ok {
		t.Fatal("oldest entry survived eviction")
	}
	if _, ok := s.Get(keys[3]); !ok {
		t.Fatal("newest entry evicted")
	}
}

// Concurrent readers, writers, corruptors, and evictors on overlapping
// keys: run under -race. Correctness bar: Get never returns a payload
// that differs from what Put stored for that key.
func TestConcurrentAccess(t *testing.T) {
	s := mustOpen(t)
	s.SetMaxBytes(64 << 10)
	const keys = 16
	payloadFor := func(i int) []byte {
		return bytes.Repeat([]byte{byte('a' + i)}, 200+i)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for it := 0; it < 200; it++ {
				i := (g + it) % keys
				key := testKey(fmt.Sprintf("conc-%d", i))
				switch it % 4 {
				case 0:
					s.Put(key, payloadFor(i))
				case 1, 2:
					if got, ok := s.Get(key); ok && !bytes.Equal(got, payloadFor(i)) {
						t.Errorf("key %d: wrong payload (%d bytes)", i, len(got))
					}
				case 3:
					// Simulate an external truncation racing readers.
					p := s.path(key)
					if raw, err := os.ReadFile(p); err == nil && len(raw) > 4 {
						os.WriteFile(p+".t", raw[:len(raw)/2], 0o644)
						os.Rename(p+".t", p)
					}
				}
			}
		}(g)
	}
	wg.Wait()
	// The store must still function after the storm.
	key := testKey("post-storm")
	s.Put(key, []byte("still alive"))
	if _, ok := s.Get(key); !ok {
		t.Fatal("store broken after concurrent access")
	}
}

func TestOpenRejectsEmptyDir(t *testing.T) {
	if _, err := Open(""); err == nil {
		t.Fatal("Open(\"\") succeeded")
	}
}

func TestOpenIgnoresForeignFiles(t *testing.T) {
	dir := t.TempDir()
	os.WriteFile(filepath.Join(dir, "README.txt"), []byte("not an artifact"), 0o644)
	os.Mkdir(filepath.Join(dir, "sub"), 0o755)
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Entries != 0 {
		t.Fatalf("foreign files counted: %+v", st)
	}
}

// TestMemoryStore exercises OpenMemory: same Get/Put/eviction contract as
// the disk store, no filesystem underneath.
func TestMemoryStore(t *testing.T) {
	s := OpenMemory()
	if !s.InMemory() || s.Dir() != "" {
		t.Fatalf("InMemory = %v, Dir = %q", s.InMemory(), s.Dir())
	}
	key := testKey("mem1")
	payload := []byte("compiled module bytes")
	s.Put(key, payload)
	got, ok := s.Get(key)
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("Get = %q, %v; want %q, true", got, ok, payload)
	}
	if _, ok := s.Get(testKey("absent")); ok {
		t.Fatal("expected miss")
	}
	s.Put(key, []byte("different")) // idempotent: first write wins
	got, _ = s.Get(key)
	if !bytes.Equal(got, payload) {
		t.Fatalf("second Put overwrote: %q", got)
	}
	st := s.Stats()
	if st.Writes != 1 || st.Hits != 2 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v", st)
	}
	s.DropUndecodable(key)
	if _, ok := s.Get(key); ok {
		t.Fatal("entry survives DropUndecodable")
	}
	if st := s.Stats(); st.CorruptDrops != 1 || st.Entries != 0 {
		t.Fatalf("stats after drop = %+v", st)
	}
}

// TestMemoryStoreEvictsOldest checks seq-ordered eviction under a byte cap.
func TestMemoryStoreEvictsOldest(t *testing.T) {
	s := OpenMemory()
	payload := bytes.Repeat([]byte("x"), 100)
	keys := make([]string, 5)
	for i := range keys {
		keys[i] = testKey(fmt.Sprintf("evict-%d", i))
		s.Put(keys[i], payload)
	}
	s.SetMaxBytes(250) // room for two 100-byte entries
	if st := s.Stats(); st.BytesOnDisk > 250 {
		t.Fatalf("BytesOnDisk = %d after cap", st.BytesOnDisk)
	}
	// Oldest inserted go first; the newest survive.
	if _, ok := s.Get(keys[0]); ok {
		t.Fatal("oldest entry survived eviction")
	}
	if _, ok := s.Get(keys[4]); !ok {
		t.Fatal("newest entry was evicted")
	}
	if st := s.Stats(); st.Evictions == 0 {
		t.Fatalf("stats = %+v, want evictions", st)
	}
}

// TestMemoryStoreConcurrent hammers the memory store from many goroutines.
func TestMemoryStoreConcurrent(t *testing.T) {
	s := OpenMemory()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				key := testKey(fmt.Sprintf("c-%d", i%10))
				s.Put(key, []byte(fmt.Sprintf("payload-%d", i%10)))
				s.Get(key)
			}
		}(g)
	}
	wg.Wait()
	if st := s.Stats(); st.Entries != 10 {
		t.Fatalf("Entries = %d, want 10", st.Entries)
	}
}

// Eviction is least-frequently-used before oldest: a heavily-hit old entry
// outlives an unhit newer one, on disk and in memory.
func TestMaxBytesEvictsLFUBeforeOldest(t *testing.T) {
	s := mustOpen(t)
	payload := bytes.Repeat([]byte("x"), 100)
	entrySize := int64(headerLen + len(payload))
	keys := make([]string, 4)
	for i := range keys {
		keys[i] = testKey(fmt.Sprintf("lfu-%d", i))
		s.Put(keys[i], payload)
		past := time.Now().Add(time.Duration(i-len(keys)) * time.Hour)
		os.Chtimes(s.path(keys[i]), past, past)
	}
	// keys[0] is the oldest but also the only one anybody reloads.
	for i := 0; i < 3; i++ {
		if _, ok := s.Get(keys[0]); !ok {
			t.Fatal("warm-up hit missed")
		}
	}
	if n := s.HitCount(keys[0]); n != 3 {
		t.Fatalf("HitCount = %d, want 3", n)
	}
	s.SetMaxBytes(2 * entrySize)
	st := s.Stats()
	if st.Entries != 2 || st.Evictions != 2 {
		t.Fatalf("after SetMaxBytes: %+v", st)
	}
	if _, ok := s.Get(keys[0]); !ok {
		t.Fatal("frequently-hit oldest entry was evicted")
	}
	// Of the never-hit entries the oldest two go; the newest survives.
	if _, ok := s.Get(keys[1]); ok {
		t.Fatal("unhit old entry survived over the hit one")
	}
	if _, ok := s.Get(keys[3]); !ok {
		t.Fatal("newest unhit entry evicted before older unhit ones")
	}
}

func TestMemoryStoreEvictsLFUBeforeOldest(t *testing.T) {
	s := OpenMemory()
	payload := bytes.Repeat([]byte("y"), 100)
	keys := make([]string, 3)
	for i := range keys {
		keys[i] = testKey(fmt.Sprintf("memlfu-%d", i))
		s.Put(keys[i], payload)
	}
	// Oldest entry, only one hit — still beats the unhit ones.
	if _, ok := s.Get(keys[0]); !ok {
		t.Fatal("warm-up hit missed")
	}
	s.SetMaxBytes(150) // room for one 100-byte entry
	if _, ok := s.Get(keys[0]); !ok {
		t.Fatal("hit entry evicted from the memory store")
	}
	if _, ok := s.Get(keys[1]); ok {
		t.Fatal("unhit entry survived over the hit one")
	}
	if st := s.Stats(); st.Entries != 1 || st.Evictions != 2 {
		t.Fatalf("after SetMaxBytes: %+v", st)
	}
}
