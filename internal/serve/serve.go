// Package serve is the multi-tenant evaluation service (ISSUE 8): each
// session owns one isolated engine.Engine (kernel + compiler + tiering +
// registry namespace), while the process-wide sharded compile cache and
// the artifact store are shared across sessions, so tenant B's hot-query
// compile is warm because tenant A already paid for it — without either
// observing the other's definitions.
//
// The HTTP surface is deliberately small and JSON-only:
//
//	POST   /v1/sessions               -> {"id": "s-1"}
//	POST   /v1/sessions/{id}/eval     {"input": "...", "timeout_ms": 5000}
//	                                  -> {"value", "output", "timed_out", "duration_ms"}
//	DELETE /v1/sessions/{id}          -> 204
//	GET    /v1/sessions               -> {"sessions": [...], "count": n}
//	GET    /healthz                   -> ok
//	GET    /metrics                   -> obs text format
//
// Request deadlines ride the kernel's abort machinery (engine.Eval arms a
// timer that fires Kernel.Abort); admission is bounded by a token channel
// sized MaxInflight — when every token is taken the handler answers 429
// immediately rather than queueing unboundedly on the engine mutex.
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"wolfc/internal/core"
	"wolfc/internal/engine"
	"wolfc/internal/expr"
	"wolfc/internal/obs"
)

var (
	ctrSessionsCreated   = obs.NewCounter("serve_sessions_created")
	ctrSessionsDestroyed = obs.NewCounter("serve_sessions_destroyed")
	ctrSessionsEvicted   = obs.NewCounter("serve_sessions_evicted")
	ctrEvals             = obs.NewCounter("serve_evals")
	ctrEvalErrors        = obs.NewCounter("serve_eval_errors")
	ctrTimeouts          = obs.NewCounter("serve_timeouts")
	ctrRejectedBusy      = obs.NewCounter("serve_rejected_busy")
	ctrRejectedSessions  = obs.NewCounter("serve_rejected_sessions")

	// Per-tenant series (ISSUE 9): request counts and eval latency labelled
	// by engine/session id, cardinality-bounded with LRU fold-over into
	// engine="_overflow" — the sum stays exact past the cap instead of
	// degrading to process-wide-only aggregates at the old 128-engine cliff.
	vecEvalRequests = obs.NewCounterVec("serve_eval_requests", "engine", 0)
	vecEvalLatency  = obs.NewHistogramVec("serve_eval_latency", "engine", 0)

	// activeSessions backs the wolfc_serve_sessions_active gauge. It is
	// package-level (summed over every Server in the process) because gauge
	// providers cannot unregister: one permanent provider instead of a leak
	// per short-lived test Server.
	activeSessions atomic.Int64
)

func init() {
	obs.RegisterGaugeProvider(func() []obs.Gauge {
		return []obs.Gauge{{Name: "serve_sessions_active", Value: float64(activeSessions.Load())}}
	})
}

// Options configures a Server.
type Options struct {
	// MaxSessions bounds live sessions (0 = default 64). Creation past the
	// bound answers 429.
	MaxSessions int
	// MaxInflight bounds concurrently admitted eval requests across all
	// sessions (0 = default 32). Admission past the bound answers 429.
	MaxInflight int
	// DefaultTimeout applies when a request omits timeout_ms (0 = 30s).
	DefaultTimeout time.Duration
	// MaxTimeout caps any requested deadline (0 = 5m).
	MaxTimeout time.Duration
	// Tiering enables profile-guided auto-compilation inside each session's
	// engine.
	Tiering bool
	// Tier tunes the per-session tiering policy when Tiering is set.
	Tier core.TierPolicy
	// IdleTimeout evicts sessions that have neither evaluated nor been
	// created within the window (0 = never evict, the default). Sessions
	// with an eval in flight are never evicted regardless of age.
	IdleTimeout time.Duration
}

func (o Options) withDefaults() Options {
	if o.MaxSessions <= 0 {
		o.MaxSessions = 64
	}
	if o.MaxInflight <= 0 {
		o.MaxInflight = 32
	}
	if o.DefaultTimeout <= 0 {
		o.DefaultTimeout = 30 * time.Second
	}
	if o.MaxTimeout <= 0 {
		o.MaxTimeout = 5 * time.Minute
	}
	return o
}

type session struct {
	eng     *engine.Engine
	created time.Time

	mu       sync.Mutex
	lastUsed time.Time
	evals    uint64
	busy     int // evals currently holding this session (janitor guard)
}

// Server owns the session table and the admission tokens.
type Server struct {
	opts     Options
	inflight chan struct{}

	mu       sync.Mutex
	sessions map[string]*session
	seq      uint64
	closed   bool

	janitorStop chan struct{} // nil unless IdleTimeout > 0
	janitorDone chan struct{}
}

// NewServer builds a Server. The caller wires the process-shared pieces
// (artifact store via core.SetArtifactStore, metrics sink) before serving.
func NewServer(opts Options) *Server {
	opts = opts.withDefaults()
	s := &Server{
		opts:     opts,
		inflight: make(chan struct{}, opts.MaxInflight),
		sessions: make(map[string]*session),
	}
	if opts.IdleTimeout > 0 {
		s.janitorStop = make(chan struct{})
		s.janitorDone = make(chan struct{})
		go s.janitor()
	}
	return s
}

// janitor periodically evicts sessions idle past IdleTimeout. The sweep
// interval tracks the timeout (a quarter of it, clamped to [50ms, 30s]) so
// short test timeouts evict promptly without waking a long-lived server up
// constantly.
func (s *Server) janitor() {
	defer close(s.janitorDone)
	interval := s.opts.IdleTimeout / 4
	if interval < 50*time.Millisecond {
		interval = 50 * time.Millisecond
	}
	if interval > 30*time.Second {
		interval = 30 * time.Second
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-s.janitorStop:
			return
		case <-t.C:
			s.evictIdle(time.Now())
		}
	}
}

// evictIdle destroys every session whose last use is older than
// IdleTimeout and has no eval in flight. Exposed through the janitor only;
// the cutoff parameter keeps it testable.
func (s *Server) evictIdle(now time.Time) int {
	cutoff := now.Add(-s.opts.IdleTimeout)
	var doomed []*session
	s.mu.Lock()
	for id, ses := range s.sessions {
		if ses == nil {
			continue // reserved slot still being built
		}
		ses.mu.Lock()
		idle := ses.busy == 0 && ses.lastUsed.Before(cutoff)
		ses.mu.Unlock()
		if idle {
			delete(s.sessions, id)
			doomed = append(doomed, ses)
		}
	}
	s.mu.Unlock()
	for _, ses := range doomed {
		ses.eng.Close()
		activeSessions.Add(-1)
		ctrSessionsEvicted.Inc()
		ctrSessionsDestroyed.Inc()
	}
	return len(doomed)
}

// Handler returns the HTTP routing surface.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/sessions", s.handleCreate)
	mux.HandleFunc("GET /v1/sessions", s.handleList)
	mux.HandleFunc("POST /v1/sessions/{id}/eval", s.handleEval)
	mux.HandleFunc("DELETE /v1/sessions/{id}", s.handleDestroy)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		obs.RenderMetrics(w)
	})
	// /debug/traces (+ ?format=chrome) and /debug/pprof/* ride the same
	// mux, so a serve deployment gets traces and profiles wherever it
	// already scrapes /metrics.
	obs.RegisterDebugHandlers(mux)
	return mux
}

// Close destroys every session (engines release their registry entries and
// obs slots), stops the idle janitor, and refuses further creates.
func (s *Server) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	doomed := make([]*session, 0, len(s.sessions))
	for _, ses := range s.sessions {
		if ses != nil {
			doomed = append(doomed, ses)
		}
	}
	s.sessions = map[string]*session{}
	s.mu.Unlock()
	if s.janitorStop != nil {
		close(s.janitorStop)
		<-s.janitorDone
	}
	for _, ses := range doomed {
		ses.eng.Close()
		activeSessions.Add(-1)
		ctrSessionsDestroyed.Inc()
	}
}

// SessionCount returns the number of live sessions.
func (s *Server) SessionCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.sessions)
}

type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, errorBody{Error: fmt.Sprintf(format, args...)})
}

type createResponse struct {
	ID string `json:"id"`
}

func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		writeError(w, http.StatusServiceUnavailable, "server shutting down")
		return
	}
	if len(s.sessions) >= s.opts.MaxSessions {
		s.mu.Unlock()
		ctrRejectedSessions.Inc()
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "session limit reached (%d)", s.opts.MaxSessions)
		return
	}
	s.seq++
	id := fmt.Sprintf("s-%d", s.seq)
	// Reserve the slot before the (comparatively slow) engine build so a
	// create burst cannot overshoot MaxSessions.
	s.sessions[id] = nil
	s.mu.Unlock()

	eng := engine.New(engine.Options{ID: id, Tiering: s.opts.Tiering, Tier: s.opts.Tier})
	now := time.Now()
	ses := &session{eng: eng, created: now, lastUsed: now}

	s.mu.Lock()
	if s.closed {
		delete(s.sessions, id)
		s.mu.Unlock()
		eng.Close()
		writeError(w, http.StatusServiceUnavailable, "server shutting down")
		return
	}
	s.sessions[id] = ses
	s.mu.Unlock()
	ctrSessionsCreated.Inc()
	activeSessions.Add(1)
	writeJSON(w, http.StatusCreated, createResponse{ID: id})
}

func (s *Server) lookup(id string) (*session, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ses, ok := s.sessions[id]
	if !ok || ses == nil { // nil = reserved slot still being built
		return nil, false
	}
	return ses, true
}

type sessionInfo struct {
	ID      string `json:"id"`
	Created string `json:"created"`
	Evals   uint64 `json:"evals"`
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	infos := make([]sessionInfo, 0, len(s.sessions))
	for id, ses := range s.sessions {
		if ses == nil {
			continue
		}
		ses.mu.Lock()
		infos = append(infos, sessionInfo{ID: id, Created: ses.created.UTC().Format(time.RFC3339), Evals: ses.evals})
		ses.mu.Unlock()
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{"sessions": infos, "count": len(infos)})
}

func (s *Server) handleDestroy(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.mu.Lock()
	ses, ok := s.sessions[id]
	if ok && ses != nil {
		delete(s.sessions, id)
	}
	s.mu.Unlock()
	if !ok || ses == nil {
		writeError(w, http.StatusNotFound, "no session %q", id)
		return
	}
	// Abort any in-flight evaluation so Close's engine-mutex acquisition
	// doesn't wait out a long-running query.
	ses.eng.Abort()
	ses.eng.Close()
	activeSessions.Add(-1)
	ctrSessionsDestroyed.Inc()
	w.WriteHeader(http.StatusNoContent)
}

type evalRequest struct {
	Input     string `json:"input"`
	TimeoutMS int64  `json:"timeout_ms"`
}

type evalResponse struct {
	Value      string  `json:"value"`
	Output     string  `json:"output,omitempty"`
	TimedOut   bool    `json:"timed_out,omitempty"`
	DurationMS float64 `json:"duration_ms"`
}

func (s *Server) handleEval(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	ses, ok := s.lookup(id)
	if !ok {
		writeError(w, http.StatusNotFound, "no session %q", id)
		return
	}
	var req evalRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if strings.TrimSpace(req.Input) == "" {
		writeError(w, http.StatusBadRequest, "empty input")
		return
	}
	timeout := s.opts.DefaultTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	if timeout > s.opts.MaxTimeout {
		timeout = s.opts.MaxTimeout
	}

	// Bounded admission: take a token or answer 429 now. Tokens bound the
	// number of requests simultaneously holding engine mutexes, so a slow
	// tenant cannot pile unbounded goroutines onto the process.
	select {
	case s.inflight <- struct{}{}:
		defer func() { <-s.inflight }()
	default:
		ctrRejectedBusy.Inc()
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "server at capacity (%d in-flight)", s.opts.MaxInflight)
		return
	}

	// Mark the session busy before evaluating so the idle janitor never
	// closes an engine out from under a running request.
	ses.mu.Lock()
	ses.busy++
	ses.mu.Unlock()

	// Root span for the request (ISSUE 9): minted here — or resumed from a
	// caller-supplied X-Trace-Id so cross-service callers can stitch — and
	// carried to the engine via context. Compile/invoke/fallback events
	// this eval produces, including background tier compiles it triggers,
	// become children of this span.
	ctx := r.Context()
	var sc obs.SpanContext
	if obs.TraceEnabled() {
		if tid, ok := obs.ParseID(r.Header.Get("X-Trace-Id")); ok {
			sc = obs.ResumeTrace(tid, id)
		} else {
			sc = obs.NewTrace(id)
		}
		ctx = obs.WithSpan(ctx, sc)
		w.Header().Set("X-Trace-Id", obs.IDString(sc.TraceID))
	}

	var tStart int64
	if sc.Valid() && !sc.Suppressed() {
		tStart = obs.TraceNow()
	}
	start := time.Now()
	res, err := ses.eng.EvalCtx(ctx, req.Input, timeout)
	dur := time.Since(start)
	if sc.Valid() && !sc.Suppressed() {
		// The root event carries the root span id itself (no parent): every
		// child event Annotate()d from sc points its parent_id here.
		obs.Emit(obs.TraceEvent{Type: "serve", Name: id, TNs: tStart,
			DurNs: dur.Nanoseconds(), Engine: id,
			TraceID: obs.IDString(sc.TraceID), SpanID: obs.IDString(sc.SpanID)})
	}

	ses.mu.Lock()
	ses.lastUsed = time.Now()
	ses.evals++
	ses.busy--
	ses.mu.Unlock()
	ctrEvals.Inc()
	vecEvalRequests.Inc(id)
	vecEvalLatency.Observe(id, dur)
	if res.TimedOut {
		ctrTimeouts.Inc()
	}
	if err != nil {
		ctrEvalErrors.Inc()
		if errors.Is(err, engine.ErrClosed) {
			writeError(w, http.StatusNotFound, "session %q closed", id)
			return
		}
		code := http.StatusUnprocessableEntity
		if strings.HasPrefix(err.Error(), "syntax:") {
			code = http.StatusBadRequest
		}
		writeError(w, code, "%v", err)
		return
	}
	value := ""
	if res.Value != nil {
		value = expr.InputForm(res.Value)
	}
	writeJSON(w, http.StatusOK, evalResponse{
		Value:      value,
		Output:     res.Output,
		TimedOut:   res.TimedOut,
		DurationMS: float64(dur.Microseconds()) / 1000,
	})
}
