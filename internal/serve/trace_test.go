package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"wolfc/internal/core"
	"wolfc/internal/obs"
)

// findLinkedCompile scans the capture store for a trace holding both a
// serve root for session id and a compile event parented on that root.
func findLinkedCompile(id string) (root, compile *obs.TraceEvent) {
	for _, tr := range obs.RecentTraces() {
		var r *obs.TraceEvent
		for i, ev := range tr.Events {
			if ev.Type == "serve" && ev.Name == id {
				r = &tr.Events[i]
				break
			}
		}
		if r == nil {
			continue
		}
		for i, ev := range tr.Events {
			if ev.Type == "compile" && ev.ParentID == r.SpanID {
				return r, &tr.Events[i]
			}
		}
	}
	return nil, nil
}

// TestTraceLinksServeToCompile pins the ISSUE 9 acceptance criterion: a
// single wolfserve eval that triggers a background tier compile yields one
// trace tree whose compile span carries the originating request's trace id
// and engine label.
func TestTraceLinksServeToCompile(t *testing.T) {
	obs.EnableTraceCapture(64)
	defer obs.DisableTraceCapture()

	_, ts := newTestServer(t, Options{
		Tiering: true,
		Tier:    core.TierPolicy{Threshold: 2, Workers: 1},
	})
	id := createSession(t, ts.URL)
	evalIn(t, ts.URL, id, "f[n_] := n*n*n")
	// Two invocations cross the promotion threshold; the second request's
	// span rides the queued background compile.
	for i := 0; i < 3; i++ {
		evalIn(t, ts.URL, id, "f[4]")
	}

	// The tier compile is asynchronous: poll the capture store for the
	// linked tree rather than sleeping a fixed amount.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if root, compile := findLinkedCompile(id); compile != nil {
			if compile.TraceID != root.TraceID {
				t.Fatalf("compile span left the request trace: %q vs %q", compile.TraceID, root.TraceID)
			}
			if compile.Engine != id {
				t.Fatalf("compile span engine label: got %q want %q", compile.Engine, id)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("no serve→compile span tree for %s within deadline; traces: %+v", id, obs.RecentTraces())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestTraceTreesDisjointAcrossEngines evaluates concurrently in two
// sessions and checks every captured trace stays inside one engine: no
// trace mixes two engine labels, and each engine owns at least one tree.
func TestTraceTreesDisjointAcrossEngines(t *testing.T) {
	obs.EnableTraceCapture(256)
	defer obs.DisableTraceCapture()

	_, ts := newTestServer(t, Options{
		Tiering: true,
		Tier:    core.TierPolicy{Threshold: 2, Workers: 1},
	})
	ids := []string{createSession(t, ts.URL), createSession(t, ts.URL)}

	defs := []string{"g[n_] := n + 1", "h[n_] := n - 1"}
	calls := []string{"g[2]", "h[2]"}
	var wg sync.WaitGroup
	for i, id := range ids {
		wg.Add(1)
		go func(id, def, call string) {
			defer wg.Done()
			evalIn(t, ts.URL, id, def)
			for j := 0; j < 8; j++ {
				evalIn(t, ts.URL, id, call)
			}
		}(id, defs[i], calls[i])
	}
	wg.Wait()

	seenEngine := map[string]bool{}
	for _, tr := range obs.RecentTraces() {
		engines := map[string]bool{}
		for _, ev := range tr.Events {
			if ev.Engine != "" {
				engines[ev.Engine] = true
				seenEngine[ev.Engine] = true
			}
		}
		if len(engines) > 1 {
			t.Fatalf("trace %s mixes engines %v: %+v", tr.TraceID, engines, tr.Events)
		}
	}
	for _, id := range ids {
		if !seenEngine[id] {
			t.Fatalf("no trace tree labelled for session %s", id)
		}
	}

	// The per-engine labelled series kept both sessions distinct too.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, id := range ids {
		want := fmt.Sprintf("wolfc_serve_eval_latency_ns_count{engine=%q}", id)
		if !strings.Contains(string(body), want) {
			t.Fatalf("metrics missing per-engine latency series %s", want)
		}
	}
}

// TestDebugTracesEndpoint exercises the HTTP surface: JSON listing,
// ?trace_id filter, and the Chrome trace-event export.
func TestDebugTracesEndpoint(t *testing.T) {
	obs.EnableTraceCapture(64)
	defer obs.DisableTraceCapture()

	_, ts := newTestServer(t, Options{})
	id := createSession(t, ts.URL)
	evalIn(t, ts.URL, id, "1 + 1")

	resp, err := http.Get(ts.URL + "/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var listing struct {
		CaptureEnabled bool                `json:"capture_enabled"`
		Count          int                 `json:"count"`
		Traces         []obs.CapturedTrace `json:"traces"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&listing); err != nil {
		t.Fatalf("/debug/traces: %v", err)
	}
	if !listing.CaptureEnabled || listing.Count == 0 {
		t.Fatalf("expected captured traces: %+v", listing)
	}
	tid := listing.Traces[0].TraceID

	// Filter by trace id.
	resp2, err := http.Get(ts.URL + "/debug/traces?trace_id=" + tid)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if err := json.NewDecoder(resp2.Body).Decode(&listing); err != nil {
		t.Fatal(err)
	}
	if listing.Count != 1 || listing.Traces[0].TraceID != tid {
		t.Fatalf("trace_id filter: %+v", listing)
	}

	// Chrome export wraps the event array in the standard envelope.
	resp3, err := http.Get(ts.URL + "/debug/traces?format=chrome")
	if err != nil {
		t.Fatal(err)
	}
	defer resp3.Body.Close()
	var chrome struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.NewDecoder(resp3.Body).Decode(&chrome); err != nil {
		t.Fatalf("chrome export: %v", err)
	}
	if len(chrome.TraceEvents) == 0 {
		t.Fatal("chrome export empty")
	}
}

// TestTraceResumeHeader checks X-Trace-Id in stitches the response into the
// caller-supplied trace and echoes the id back.
func TestTraceResumeHeader(t *testing.T) {
	obs.EnableTraceCapture(64)
	defer obs.DisableTraceCapture()

	_, ts := newTestServer(t, Options{})
	id := createSession(t, ts.URL)

	const tid = "00000000deadbeef"
	body, _ := json.Marshal(evalRequest{Input: "2 + 2"})
	req, _ := http.NewRequest("POST", fmt.Sprintf("%s/v1/sessions/%s/eval", ts.URL, id), bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Trace-Id", tid)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if got := resp.Header.Get("X-Trace-Id"); got != tid {
		t.Fatalf("X-Trace-Id echo: got %q want %q", got, tid)
	}
	found := false
	for _, tr := range obs.RecentTraces() {
		if tr.TraceID == tid {
			found = true
		}
	}
	if !found {
		t.Fatalf("resumed trace %s not captured: %+v", tid, obs.RecentTraces())
	}
}

// TestIdleEviction checks the janitor evicts idle sessions and leaves busy
// or fresh ones alone, and that the evicted counter and gauge move.
func TestIdleEviction(t *testing.T) {
	s, ts := newTestServer(t, Options{IdleTimeout: 60 * time.Millisecond})
	id := createSession(t, ts.URL)
	evalIn(t, ts.URL, id, "1 + 2")

	deadline := time.Now().Add(5 * time.Second)
	for s.SessionCount() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("session %s not evicted; count %d", id, s.SessionCount())
		}
		time.Sleep(10 * time.Millisecond)
	}
	// The slot is really gone from the API's point of view.
	var er evalResponse
	if code := doJSON(t, "POST", fmt.Sprintf("%s/v1/sessions/%s/eval", ts.URL, id),
		evalRequest{Input: "1"}, &er); code != http.StatusNotFound {
		t.Fatalf("eval after eviction: %d want 404", code)
	}
}

// TestEvictIdleSkipsBusy drives evictIdle directly: a session marked busy
// must survive any cutoff.
func TestEvictIdleSkipsBusy(t *testing.T) {
	s, ts := newTestServer(t, Options{IdleTimeout: time.Millisecond})
	id := createSession(t, ts.URL)
	ses, ok := s.lookup(id)
	if !ok {
		t.Fatal("lookup failed")
	}
	ses.mu.Lock()
	ses.busy++
	ses.mu.Unlock()
	if n := s.evictIdle(time.Now().Add(time.Hour)); n != 0 {
		t.Fatalf("evicted a busy session: %d", n)
	}
	ses.mu.Lock()
	ses.busy--
	ses.mu.Unlock()
	if n := s.evictIdle(time.Now().Add(time.Hour)); n != 1 {
		t.Fatalf("idle session should go: evicted %d", n)
	}
	if s.SessionCount() != 0 {
		t.Fatalf("count after eviction: %d", s.SessionCount())
	}
}
