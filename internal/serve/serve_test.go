package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"wolfc/internal/core"
)

func newTestServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	s := NewServer(opts)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })
	return s, ts
}

func doJSON(t *testing.T, method, url string, body any, out any) int {
	t.Helper()
	var rd *bytes.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	} else {
		rd = bytes.NewReader(nil)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil && resp.StatusCode < 300 {
			t.Fatalf("%s %s: decode: %v", method, url, err)
		}
	}
	return resp.StatusCode
}

func createSession(t *testing.T, base string) string {
	t.Helper()
	var cr createResponse
	if code := doJSON(t, "POST", base+"/v1/sessions", nil, &cr); code != http.StatusCreated {
		t.Fatalf("create session: %d", code)
	}
	return cr.ID
}

func evalIn(t *testing.T, base, id, input string) evalResponse {
	t.Helper()
	var er evalResponse
	code := doJSON(t, "POST", fmt.Sprintf("%s/v1/sessions/%s/eval", base, id),
		evalRequest{Input: input}, &er)
	if code != http.StatusOK {
		t.Fatalf("eval %q in %s: %d", input, id, code)
	}
	return er
}

// TestSessionLifecycle covers create → eval → destroy → 404.
func TestSessionLifecycle(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	id := createSession(t, ts.URL)

	if er := evalIn(t, ts.URL, id, "2 + 3"); er.Value != "5" {
		t.Fatalf("eval = %+v", er)
	}
	// State persists across requests within a session.
	evalIn(t, ts.URL, id, "x = 41")
	if er := evalIn(t, ts.URL, id, "x + 1"); er.Value != "42" {
		t.Fatalf("x + 1 = %+v", er)
	}

	if code := doJSON(t, "DELETE", ts.URL+"/v1/sessions/"+id, nil, nil); code != http.StatusNoContent {
		t.Fatalf("destroy: %d", code)
	}
	var eb errorBody
	if code := doJSON(t, "POST", ts.URL+"/v1/sessions/"+id+"/eval", evalRequest{Input: "1"}, &eb); code != http.StatusNotFound {
		t.Fatalf("eval after destroy: %d", code)
	}
}

// TestSessionIsolation checks two sessions defining the same symbol see
// only their own definitions.
func TestSessionIsolation(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	a := createSession(t, ts.URL)
	b := createSession(t, ts.URL)
	evalIn(t, ts.URL, a, "f[n_] := n + 1")
	evalIn(t, ts.URL, b, "f[n_] := n * 10")
	if er := evalIn(t, ts.URL, a, "f[5]"); er.Value != "6" {
		t.Fatalf("session a: f[5] = %s", er.Value)
	}
	if er := evalIn(t, ts.URL, b, "f[5]"); er.Value != "50" {
		t.Fatalf("session b: f[5] = %s", er.Value)
	}
}

// TestEvalTimeoutHTTP checks timeout_ms aborts a runaway evaluation and
// reports timed_out.
func TestEvalTimeoutHTTP(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	id := createSession(t, ts.URL)
	var er evalResponse
	code := doJSON(t, "POST", fmt.Sprintf("%s/v1/sessions/%s/eval", ts.URL, id),
		evalRequest{Input: "While[True, 1]", TimeoutMS: 50}, &er)
	if code != http.StatusOK {
		t.Fatalf("timeout eval: %d", code)
	}
	if !er.TimedOut || er.Value != "$Aborted" {
		t.Fatalf("eval = %+v, want timed-out $Aborted", er)
	}
	// Session still works.
	if er := evalIn(t, ts.URL, id, "1 + 1"); er.Value != "2" {
		t.Fatalf("post-timeout: %+v", er)
	}
}

// TestAdmissionControl floods a MaxInflight=1 server with slow queries and
// expects 429s with Retry-After rather than queueing.
func TestAdmissionControl(t *testing.T) {
	_, ts := newTestServer(t, Options{MaxInflight: 1})
	id := createSession(t, ts.URL)

	const n = 6
	codes := make([]int, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body, _ := json.Marshal(evalRequest{Input: "Do[i, {i, 1, 2000000}]", TimeoutMS: 10000})
			resp, err := http.Post(fmt.Sprintf("%s/v1/sessions/%s/eval", ts.URL, id),
				"application/json", bytes.NewReader(body))
			if err != nil {
				t.Error(err)
				return
			}
			resp.Body.Close()
			codes[i] = resp.StatusCode
		}(i)
	}
	wg.Wait()
	ok, busy := 0, 0
	for _, c := range codes {
		switch c {
		case http.StatusOK:
			ok++
		case http.StatusTooManyRequests:
			busy++
		default:
			t.Fatalf("unexpected status %d in %v", c, codes)
		}
	}
	if ok == 0 || busy == 0 {
		t.Fatalf("codes = %v, want a mix of 200 and 429", codes)
	}
}

// TestSessionLimit checks creation past MaxSessions answers 429.
func TestSessionLimit(t *testing.T) {
	_, ts := newTestServer(t, Options{MaxSessions: 2})
	createSession(t, ts.URL)
	createSession(t, ts.URL)
	var eb errorBody
	if code := doJSON(t, "POST", ts.URL+"/v1/sessions", nil, &eb); code != http.StatusTooManyRequests {
		t.Fatalf("third create: %d", code)
	}
}

// TestBadRequests covers syntax errors, empty input, and unknown sessions.
func TestBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	id := createSession(t, ts.URL)
	var eb errorBody
	if code := doJSON(t, "POST", fmt.Sprintf("%s/v1/sessions/%s/eval", ts.URL, id),
		evalRequest{Input: "1 +"}, &eb); code != http.StatusBadRequest {
		t.Fatalf("syntax error: %d", code)
	}
	if code := doJSON(t, "POST", fmt.Sprintf("%s/v1/sessions/%s/eval", ts.URL, id),
		evalRequest{Input: "   "}, &eb); code != http.StatusBadRequest {
		t.Fatalf("empty input: %d", code)
	}
	if code := doJSON(t, "POST", ts.URL+"/v1/sessions/nope/eval",
		evalRequest{Input: "1"}, &eb); code != http.StatusNotFound {
		t.Fatalf("unknown session: %d", code)
	}
}

// TestTieredServing drives one session hot enough to promote through the
// tiers over HTTP, checking results stay right across promotions.
func TestTieredServing(t *testing.T) {
	s, ts := newTestServer(t, Options{
		Tiering: true,
		Tier:    core.TierPolicy{Threshold: 4, Workers: 1},
	})
	id := createSession(t, ts.URL)
	evalIn(t, ts.URL, id, "h[n_] := 3*n - 1")
	for round := 0; round < 6; round++ {
		for i := 1; i <= 4; i++ {
			want := fmt.Sprintf("%d", 3*i-1)
			if er := evalIn(t, ts.URL, id, fmt.Sprintf("h[%d]", i)); er.Value != want {
				t.Fatalf("round %d: h[%d] = %s, want %s", round, i, er.Value, want)
			}
		}
		// Drain background compiles so the next round dispatches compiled.
		s.mu.Lock()
		ses := s.sessions[id]
		s.mu.Unlock()
		ses.eng.WaitIdle()
	}
	s.mu.Lock()
	ses := s.sessions[id]
	s.mu.Unlock()
	st := ses.eng.Stats()
	if st.Promotions == 0 {
		t.Fatalf("definition never promoted over HTTP serving: %+v", st)
	}
}

// TestMetricsEndpoint checks /metrics renders and carries serve counters.
func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	id := createSession(t, ts.URL)
	evalIn(t, ts.URL, id, "1 + 1")
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	for _, want := range []string{"wolfc_serve_evals", "wolfc_serve_sessions_created"} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %s:\n%s", want, body)
		}
	}
}

// TestServerClose destroys all sessions and refuses new ones.
func TestServerClose(t *testing.T) {
	s := NewServer(Options{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	id := createSession(t, ts.URL)
	s.Close()
	if n := s.SessionCount(); n != 0 {
		t.Fatalf("%d sessions survive Close", n)
	}
	var eb errorBody
	if code := doJSON(t, "POST", ts.URL+"/v1/sessions", nil, &eb); code != http.StatusServiceUnavailable {
		t.Fatalf("create after Close: %d", code)
	}
	if code := doJSON(t, "POST", ts.URL+"/v1/sessions/"+id+"/eval",
		evalRequest{Input: "1"}, &eb); code != http.StatusNotFound {
		t.Fatalf("eval after Close: %d", code)
	}
	_ = time.Now() // keep time import if asserts change
}
