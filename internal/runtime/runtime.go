// Package runtime is the compiled-code runtime for the new compiler (paper
// §4.5, §4.6): typed dense tensors with copy-on-write sharing, checked
// machine arithmetic whose numeric exceptions drive the soft interpreter
// fallback (F2), reference counting entry points for the memory-management
// pass (F7), string operations, symbolic Expression operations evaluated by
// threaded interpretation through the engine (F8), and the abort flag the
// inserted abort checks poll (F3).
package runtime

import (
	"fmt"
	"math"
	"sync/atomic"

	"wolfc/internal/blas"
	"wolfc/internal/expr"
	"wolfc/internal/obs"
	"wolfc/internal/runtime/par"
)

// Engine is the compiled code's view of the hosting Wolfram Engine: it
// evaluates escaped expressions (KernelFunction, F9) and exposes the abort
// flag and random state. In standalone exported code there is no engine and
// these features are disabled (paper §4.6).
type Engine interface {
	EvalExpr(e expr.Expr) (expr.Expr, error)
	Aborted() bool
	RandReal() float64
	RandInt(lo, hi int64) int64
}

// Exception kinds raised by compiled code. They unwind (as Go panics) to
// the CompiledCodeFunction wrapper, which converts them into the soft
// fallback or an abort (paper §4.5).
type ExceptionKind int

const (
	ExcOverflow ExceptionKind = iota
	ExcPartRange
	ExcDivideByZero
	ExcAbort
	ExcKernel // interpreter escape failed
	ExcType
	// ExcNoMatch is the compiled image of a pattern-dispatch miss: a
	// decision tree compiled from DownValues reached a leaf no rule covers.
	// The tiering engine converts it into an F2 guard miss (interpreter
	// rules take over), never a soft failure — a miss is a property of the
	// arguments, not of the compiled code.
	ExcNoMatch
)

// Exception is the panic payload for compiled-code runtime errors.
type Exception struct {
	Kind ExceptionKind
	Msg  string
}

func (e *Exception) Error() string { return e.Msg }

// excCounters counts thrown exceptions by kind for /metrics. A throw is
// already the expensive path (panic + fallback re-evaluation), so these
// count unconditionally.
var excCounters = [...]*obs.Counter{
	ExcOverflow:     obs.NewCounter("exc_overflow"),
	ExcPartRange:    obs.NewCounter("exc_part_range"),
	ExcDivideByZero: obs.NewCounter("exc_divide_by_zero"),
	ExcAbort:        obs.NewCounter("exc_abort"),
	ExcKernel:       obs.NewCounter("exc_kernel"),
	ExcType:         obs.NewCounter("exc_type"),
	ExcNoMatch:      obs.NewCounter("exc_no_match"),
}

// Throw raises a runtime exception.
func Throw(kind ExceptionKind, format string, args ...any) {
	if int(kind) < len(excCounters) {
		excCounters[kind].Inc()
	}
	panic(&Exception{Kind: kind, Msg: fmt.Sprintf(format, args...)})
}

// --- checked machine arithmetic ---

// AddI64 adds with overflow checking.
func AddI64(a, b int64) int64 {
	s := a + b
	if (a > 0 && b > 0 && s < 0) || (a < 0 && b < 0 && s >= 0) {
		Throw(ExcOverflow, "IntegerOverflow")
	}
	return s
}

// SubI64 subtracts with overflow checking.
func SubI64(a, b int64) int64 {
	d := a - b
	if (a >= 0 && b < 0 && d < 0) || (a < 0 && b > 0 && d >= 0) {
		Throw(ExcOverflow, "IntegerOverflow")
	}
	return d
}

// MulI64 multiplies with overflow checking.
func MulI64(a, b int64) int64 {
	if a == 0 || b == 0 {
		return 0
	}
	p := a * b
	if p/b != a || (a == -1 && b == math.MinInt64) || (b == -1 && a == math.MinInt64) {
		Throw(ExcOverflow, "IntegerOverflow")
	}
	return p
}

// NegI64 negates with overflow checking.
func NegI64(a int64) int64 {
	if a == math.MinInt64 {
		Throw(ExcOverflow, "IntegerOverflow")
	}
	return -a
}

// PowI64 computes integer powers with overflow checking; negative exponents
// are a numeric exception (exact rationals require the interpreter).
func PowI64(base, exp int64) int64 {
	if exp < 0 {
		Throw(ExcOverflow, "NegativePower")
	}
	result := int64(1)
	for n := exp; n > 0; n-- {
		result = MulI64(result, base)
	}
	return result
}

// ModI64 is the language's Mod (sign follows the modulus).
func ModI64(a, m int64) int64 {
	if m == 0 {
		Throw(ExcDivideByZero, "Mod by zero")
	}
	r := a % m
	if r != 0 && (r < 0) != (m < 0) {
		r += m
	}
	return r
}

// QuotI64 is floor division.
func QuotI64(a, m int64) int64 {
	if m == 0 {
		Throw(ExcDivideByZero, "Quotient by zero")
	}
	q := a / m
	if a%m != 0 && (a < 0) != (m < 0) {
		q--
	}
	return q
}

// PowC computes complex powers.
func PowC(b, e complex128) complex128 {
	if b == 0 {
		if real(e) > 0 {
			return 0
		}
		Throw(ExcDivideByZero, "0 to a nonpositive complex power")
	}
	logB := complex(math.Log(AbsC(b)), math.Atan2(imag(b), real(b)))
	p := e * logB
	m := math.Exp(real(p))
	return complex(m*math.Cos(imag(p)), m*math.Sin(imag(p)))
}

// PowCInt computes z^n by repeated squaring.
func PowCInt(b complex128, n int64) complex128 {
	if n < 0 {
		return 1 / PowCInt(b, -n)
	}
	out := complex128(1)
	for n > 0 {
		if n&1 == 1 {
			out *= b
		}
		b *= b
		n >>= 1
	}
	return out
}

// AbsC is the complex modulus.
func AbsC(v complex128) float64 { return math.Hypot(real(v), imag(v)) }

// Kind is a runtime element kind for tensors.
type Kind uint8

const (
	KI64 Kind = iota
	KR64
	KC64
	KBool
	KObj // nested tensors, strings, closures, expressions
)

// Tensor is the compiled runtime's dense array. One of the element slices
// is non-nil according to Elem. refs and shared implement the reference
// counting and copy-on-write protocol (F5/F7): shared marks values that may
// be aliased outside compiled code (function arguments, boxed results);
// SetPart copies first when set. Both fields are manipulated atomically so
// one compiled function can be invoked from many goroutines that share
// argument tensors; they are plain words (not atomic.Int32 values) so a
// Tensor stays value-copyable without tripping vet's copylocks check.
type Tensor struct {
	Elem Kind
	Dims []int
	I    []int64
	F    []float64
	C    []complex128
	B    []bool
	O    []any

	refs   int32
	shared uint32
}

// NewTensor allocates a zeroed tensor.
func NewTensor(elem Kind, dims ...int) *Tensor {
	n := 1
	for _, d := range dims {
		if d < 0 {
			Throw(ExcPartRange, "negative tensor dimension %d", d)
		}
		n *= d
	}
	t := &Tensor{Elem: elem, Dims: dims}
	switch elem {
	case KI64:
		t.I = make([]int64, n)
	case KR64:
		t.F = make([]float64, n)
	case KC64:
		t.C = make([]complex128, n)
	case KBool:
		t.B = make([]bool, n)
	case KObj:
		t.O = make([]any, n)
	}
	return t
}

// FlatLen returns the number of scalar elements.
func (t *Tensor) FlatLen() int {
	n := 1
	for _, d := range t.Dims {
		n *= d
	}
	return n
}

// Len returns the first-dimension length.
func (t *Tensor) Len() int {
	if len(t.Dims) == 0 {
		return 0
	}
	return t.Dims[0]
}

// Copy deep-copies the tensor (one level; nested object elements are shared
// but marked Shared so their own mutation copies).
func (t *Tensor) Copy() *Tensor {
	out := &Tensor{Elem: t.Elem, Dims: append([]int{}, t.Dims...)}
	out.I = append([]int64{}, t.I...)
	out.F = append([]float64{}, t.F...)
	out.C = append([]complex128{}, t.C...)
	out.B = append([]bool{}, t.B...)
	out.O = append([]any{}, t.O...)
	for _, o := range out.O {
		if nt, ok := o.(*Tensor); ok {
			nt.MarkShared()
		}
	}
	return out
}

// Acquire atomically increments the reference count (MemoryAcquire, F7).
func (t *Tensor) Acquire() { atomic.AddInt32(&t.refs, 1) }

// Release atomically decrements the reference count (MemoryRelease). The Go
// garbage collector frees the storage; the count still drives copy-on-write.
// A concurrent over-release is repaired rather than left negative.
func (t *Tensor) Release() {
	if atomic.AddInt32(&t.refs, -1) < 0 {
		atomic.AddInt32(&t.refs, 1)
	}
}

// RefCount reports the current reference count.
func (t *Tensor) RefCount() int32 { return atomic.LoadInt32(&t.refs) }

// MarkShared flags the tensor as possibly aliased from outside compiled
// code, forcing the next mutation through EnsureUnshared to copy.
func (t *Tensor) MarkShared() { atomic.StoreUint32(&t.shared, 1) }

// IsShared reports whether the tensor is flagged as externally aliased.
func (t *Tensor) IsShared() bool { return atomic.LoadUint32(&t.shared) != 0 }

// EnsureUnshared returns t, or a private copy if t may be aliased from
// outside compiled code (the shared flag is set at the ABI boundary:
// unboxed arguments and embedded constants). Aliases created inside
// compiled code are handled statically by the copy-insertion pass, so the
// reference count — which the inserted MemoryAcquire/Release calls maintain
// for lifetime bookkeeping — deliberately does not force copies here.
func (t *Tensor) EnsureUnshared() *Tensor {
	if t.IsShared() {
		return t.Copy()
	}
	return t
}

// index resolves a 1-based possibly-negative index for dimension 0.
func (t *Tensor) index(i int64) int {
	n := int64(t.Len())
	if i < 0 {
		i = n + 1 + i
	}
	if i < 1 || i > n {
		Throw(ExcPartRange, "Part: index %d is out of range for a length-%d tensor", i, n)
	}
	return int(i - 1)
}

// indexUnsafe resolves a 1-based index without range checking (macro loops
// with proven-in-range indices; paper §6 index-check removal).
func (t *Tensor) indexUnsafe(i int64) int { return int(i - 1) }

// Scalar element access for rank-1 tensors.

func (t *Tensor) GetI(i int64) int64       { return t.I[t.index(i)] }
func (t *Tensor) GetF(i int64) float64     { return t.F[t.index(i)] }
func (t *Tensor) GetC(i int64) complex128  { return t.C[t.index(i)] }
func (t *Tensor) GetB(i int64) bool        { return t.B[t.index(i)] }
func (t *Tensor) GetO(i int64) any         { return t.O[t.index(i)] }
func (t *Tensor) GetIU(i int64) int64      { return t.I[t.indexUnsafe(i)] }
func (t *Tensor) GetFU(i int64) float64    { return t.F[t.indexUnsafe(i)] }
func (t *Tensor) GetCU(i int64) complex128 { return t.C[t.indexUnsafe(i)] }
func (t *Tensor) GetBU(i int64) bool       { return t.B[t.indexUnsafe(i)] }
func (t *Tensor) GetOU(i int64) any        { return t.O[t.indexUnsafe(i)] }

// flat2 resolves a rank-2 index pair.
func (t *Tensor) flat2(i, j int64) int {
	rows, cols := int64(t.Dims[0]), int64(t.Dims[1])
	if i < 0 {
		i = rows + 1 + i
	}
	if j < 0 {
		j = cols + 1 + j
	}
	if i < 1 || i > rows || j < 1 || j > cols {
		Throw(ExcPartRange, "Part: index [%d, %d] out of range for %dx%d", i, j, rows, cols)
	}
	return int((i-1)*cols + (j - 1))
}

func (t *Tensor) flat2U(i, j int64) int { return int((i-1)*int64(t.Dims[1]) + (j - 1)) }

func (t *Tensor) GetI2(i, j int64) int64       { return t.I[t.flat2(i, j)] }
func (t *Tensor) GetF2(i, j int64) float64     { return t.F[t.flat2(i, j)] }
func (t *Tensor) GetC2(i, j int64) complex128  { return t.C[t.flat2(i, j)] }
func (t *Tensor) GetI2U(i, j int64) int64      { return t.I[t.flat2U(i, j)] }
func (t *Tensor) GetF2U(i, j int64) float64    { return t.F[t.flat2U(i, j)] }
func (t *Tensor) GetC2U(i, j int64) complex128 { return t.C[t.flat2U(i, j)] }

// Row extracts row i of a rank-2 tensor as a fresh rank-1 tensor.
func (t *Tensor) Row(i int64) *Tensor {
	rows := int64(t.Dims[0])
	if i < 0 {
		i = rows + 1 + i
	}
	if i < 1 || i > rows {
		Throw(ExcPartRange, "Part: row %d out of range for %d rows", i, rows)
	}
	cols := t.Dims[1]
	out := &Tensor{Elem: t.Elem, Dims: []int{cols}}
	off := int(i-1) * cols
	switch t.Elem {
	case KI64:
		out.I = append([]int64{}, t.I[off:off+cols]...)
	case KR64:
		out.F = append([]float64{}, t.F[off:off+cols]...)
	case KC64:
		out.C = append([]complex128{}, t.C[off:off+cols]...)
	case KObj:
		out.O = append([]any{}, t.O[off:off+cols]...)
	}
	return out
}

// Set operations: the checked versions honour negative indices and apply
// copy-on-write; they return the (possibly fresh) tensor, which compiled
// code rebinds. The unsafe versions skip the range check only.

func (t *Tensor) SetI(i int64, v int64) *Tensor {
	u := t.EnsureUnshared()
	u.I[u.index(i)] = v
	return u
}

func (t *Tensor) SetF(i int64, v float64) *Tensor {
	u := t.EnsureUnshared()
	u.F[u.index(i)] = v
	return u
}

func (t *Tensor) SetC(i int64, v complex128) *Tensor {
	u := t.EnsureUnshared()
	u.C[u.index(i)] = v
	return u
}

func (t *Tensor) SetB(i int64, v bool) *Tensor {
	u := t.EnsureUnshared()
	u.B[u.index(i)] = v
	return u
}

func (t *Tensor) SetO(i int64, v any) *Tensor {
	u := t.EnsureUnshared()
	u.O[u.index(i)] = v
	return u
}

func (t *Tensor) SetIU(i int64, v int64) *Tensor {
	u := t.EnsureUnshared()
	u.I[u.indexUnsafe(i)] = v
	return u
}

func (t *Tensor) SetFU(i int64, v float64) *Tensor {
	u := t.EnsureUnshared()
	u.F[u.indexUnsafe(i)] = v
	return u
}

func (t *Tensor) SetCU(i int64, v complex128) *Tensor {
	u := t.EnsureUnshared()
	u.C[u.indexUnsafe(i)] = v
	return u
}

func (t *Tensor) SetOU(i int64, v any) *Tensor {
	u := t.EnsureUnshared()
	u.O[u.indexUnsafe(i)] = v
	return u
}

func (t *Tensor) SetI2(i, j int64, v int64) *Tensor {
	u := t.EnsureUnshared()
	u.I[u.flat2(i, j)] = v
	return u
}

func (t *Tensor) SetF2(i, j int64, v float64) *Tensor {
	u := t.EnsureUnshared()
	u.F[u.flat2(i, j)] = v
	return u
}

func (t *Tensor) SetC2(i, j int64, v complex128) *Tensor {
	u := t.EnsureUnshared()
	u.C[u.flat2(i, j)] = v
	return u
}

func (t *Tensor) SetI2U(i, j int64, v int64) *Tensor {
	u := t.EnsureUnshared()
	u.I[u.flat2U(i, j)] = v
	return u
}

func (t *Tensor) SetF2U(i, j int64, v float64) *Tensor {
	u := t.EnsureUnshared()
	u.F[u.flat2U(i, j)] = v
	return u
}

func (t *Tensor) SetC2U(i, j int64, v complex128) *Tensor {
	u := t.EnsureUnshared()
	u.C[u.flat2U(i, j)] = v
	return u
}

// Elementwise tensor arithmetic (Listable threading in compiled code). The
// *P variants take an explicit worker count (0 = process default) and
// partition the flat element range over the shared pool; each output
// element depends only on the same-index inputs, so the parallel result is
// bit-identical to the serial loop for any split.

// ZipF/ZipI/MapF/MapI are the building blocks codegen uses for tensor
// arithmetic natives. The plain forms run at the process default width.
func (t *Tensor) ZipF(o *Tensor, f func(a, b float64) float64) *Tensor { return t.ZipFP(0, o, f) }
func (t *Tensor) ZipI(o *Tensor, f func(a, b int64) int64) *Tensor     { return t.ZipIP(0, o, f) }
func (t *Tensor) MapF(f func(float64) float64) *Tensor                 { return t.MapFP(0, f) }
func (t *Tensor) MapI(f func(int64) int64) *Tensor                     { return t.MapIP(0, f) }

func (t *Tensor) ZipFP(workers int, o *Tensor, f func(a, b float64) float64) *Tensor {
	if t.FlatLen() != o.FlatLen() {
		Throw(ExcType, "Thread: tensors of unequal length")
	}
	out := NewTensor(KR64, t.Dims...)
	par.For(workers, len(out.F), GrainSize(), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out.F[i] = f(t.F[i], o.F[i])
		}
	})
	return out
}

func (t *Tensor) ZipIP(workers int, o *Tensor, f func(a, b int64) int64) *Tensor {
	if t.FlatLen() != o.FlatLen() {
		Throw(ExcType, "Thread: tensors of unequal length")
	}
	out := NewTensor(KI64, t.Dims...)
	par.For(workers, len(out.I), GrainSize(), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out.I[i] = f(t.I[i], o.I[i])
		}
	})
	return out
}

func (t *Tensor) MapFP(workers int, f func(float64) float64) *Tensor {
	out := NewTensor(KR64, t.Dims...)
	par.For(workers, len(out.F), GrainSize(), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out.F[i] = f(t.F[i])
		}
	})
	return out
}

func (t *Tensor) MapIP(workers int, f func(int64) int64) *Tensor {
	out := NewTensor(KI64, t.Dims...)
	par.For(workers, len(out.I), GrainSize(), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out.I[i] = f(t.I[i])
		}
	})
	return out
}

// Dot products route through the shared BLAS (MKL stand-in; paper §6 Dot).
// The *P variants carry an explicit worker count down into the banded BLAS
// kernels; vector·vector stays serial because splitting the single
// accumulation would change floating-point rounding order (see DESIGN.md).

// DotVV is vector·vector. Always serial: one FP accumulator.
func DotVV(a, b *Tensor) float64 {
	if a.Len() != b.Len() {
		Throw(ExcType, "Dot: length mismatch")
	}
	return blas.DDot(a.F, b.F)
}

// DotMV is matrix·vector.
func DotMV(a, b *Tensor) *Tensor { return DotMVP(0, a, b) }

// DotMVP is matrix·vector with an explicit worker count.
func DotMVP(workers int, a, b *Tensor) *Tensor {
	m, n := a.Dims[0], a.Dims[1]
	if n != b.Len() {
		Throw(ExcType, "Dot: shape mismatch")
	}
	out := NewTensor(KR64, m)
	blas.DGemvW(workers, m, n, a.F, b.F, out.F)
	return out
}

// DotMM is matrix·matrix.
func DotMM(a, b *Tensor) *Tensor { return DotMMP(0, a, b) }

// DotMMP is matrix·matrix with an explicit worker count.
func DotMMP(workers int, a, b *Tensor) *Tensor {
	m, k, n := a.Dims[0], a.Dims[1], b.Dims[1]
	if k != b.Dims[0] {
		Throw(ExcType, "Dot: shape mismatch")
	}
	out := NewTensor(KR64, m, n)
	blas.DGemmW(workers, m, k, n, a.F, b.F, out.F)
	return out
}
