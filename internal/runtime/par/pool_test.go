package par

import (
	"sync/atomic"
	"testing"
)

func TestForCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 8} {
		for _, n := range []int{0, 1, 7, 100, 4096, 10_000} {
			counts := make([]int32, n)
			For(workers, n, 16, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&counts[i], 1)
				}
			})
			for i, c := range counts {
				if c != 1 {
					t.Fatalf("workers=%d n=%d: index %d visited %d times", workers, n, i, c)
				}
			}
		}
	}
}

func TestForSerialFastPathBelowGrain(t *testing.T) {
	calls := 0
	For(8, 100, 4096, func(lo, hi int) {
		calls++
		if lo != 0 || hi != 100 {
			t.Fatalf("below-grain run must be one inline chunk, got [%d, %d)", lo, hi)
		}
	})
	if calls != 1 {
		t.Fatalf("below-grain run split into %d chunks", calls)
	}
}

func TestForPropagatesPanic(t *testing.T) {
	defer func() {
		r := recover()
		if r != "boom" {
			t.Fatalf("expected panic %q to propagate, got %v", "boom", r)
		}
	}()
	For(4, 10_000, 16, func(lo, hi int) {
		if lo == 0 {
			panic("boom")
		}
	})
	t.Fatal("unreachable: panic must propagate")
}

func TestNestedForDoesNotDeadlock(t *testing.T) {
	var total atomic.Int64
	For(4, 64, 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			For(4, 64, 1, func(ilo, ihi int) {
				total.Add(int64(ihi - ilo))
			})
		}
	})
	if got := total.Load(); got != 64*64 {
		t.Fatalf("nested For covered %d inner iterations, want %d", got, 64*64)
	}
}

func TestWidthClamps(t *testing.T) {
	prev := SetMaxWorkers(0)
	defer SetMaxWorkers(prev)
	if w := Width(3); w != 3 {
		t.Fatalf("explicit width: got %d want 3", w)
	}
	if w := Width(1 << 20); w != maxPoolWorkers {
		t.Fatalf("over-cap width: got %d want %d", w, maxPoolWorkers)
	}
	SetMaxWorkers(2)
	if w := Width(0); w != 2 {
		t.Fatalf("default width after SetMaxWorkers(2): got %d", w)
	}
}
