// Package par is the shared data-parallel worker pool for the compiled
// runtime. It lives in a leaf package so that both internal/runtime and
// internal/blas (which runtime imports) can partition work over the same
// pool without an import cycle.
//
// The pool is lazily started: no goroutines exist until the first For call
// that actually splits work. Helper goroutines block on a global task
// channel and are shared by every caller in the process, so concurrent
// compiled functions share one pool rather than multiplying goroutines.
// For never blocks waiting for helpers — the submitting goroutine works
// through the chunk list itself and helpers join in opportunistically —
// which makes nested For calls deadlock-free by construction.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// maxPoolWorkers caps how many helper goroutines the process will ever
// start. The cap is intentionally above any realistic GOMAXPROCS so that
// differential and race tests can exercise genuine multi-goroutine
// schedules even on small machines.
const maxPoolWorkers = 64

var (
	// maxWorkers is the process-wide default parallel width (0 means
	// "use GOMAXPROCS"). Set through SetMaxWorkers.
	maxWorkers atomic.Int64

	// tasks is the global work channel helper goroutines drain.
	tasks chan func()

	// started counts helper goroutines already launched.
	started atomic.Int64

	startMu sync.Mutex
)

// Width resolves a requested worker count to the effective parallel width:
// n <= 0 means the process default (SetMaxWorkers, falling back to
// GOMAXPROCS), and the result is clamped to the pool cap.
func Width(n int) int {
	if n <= 0 {
		n = int(maxWorkers.Load())
	}
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if n > maxPoolWorkers {
		n = maxPoolWorkers
	}
	if n < 1 {
		n = 1
	}
	return n
}

// SetMaxWorkers sets the process-wide default parallel width and returns
// the previous value. n <= 0 restores the GOMAXPROCS default. Values above
// the pool cap are clamped.
func SetMaxWorkers(n int) int {
	if n < 0 {
		n = 0
	}
	if n > maxPoolWorkers {
		n = maxPoolWorkers
	}
	return int(maxWorkers.Swap(int64(n)))
}

// MaxWorkers reports the configured default width (0 = GOMAXPROCS).
func MaxWorkers() int { return int(maxWorkers.Load()) }

// ensureHelpers lazily launches up to want-1 helper goroutines (the caller
// is itself a worker). Helpers are permanent and shared process-wide.
func ensureHelpers(want int) {
	need := int64(want - 1)
	if need <= 0 || started.Load() >= need {
		return
	}
	startMu.Lock()
	if tasks == nil {
		tasks = make(chan func())
	}
	for started.Load() < need && started.Load() < maxPoolWorkers-1 {
		go func() {
			for f := range tasks {
				f()
			}
		}()
		started.Add(1)
	}
	startMu.Unlock()
}

// For runs body over [0, n) split into contiguous chunks of at least grain
// elements, using up to `workers` goroutines (0 = process default). Chunks
// are handed out through an atomic counter, so the set of (lo, hi) ranges —
// and therefore the work each element sees — is identical to the serial
// loop; only the schedule varies. When the effective width is 1 or n is
// below the grain size, body runs inline with no synchronisation at all.
//
// Panics raised by body (the runtime's exception protocol, including
// aborts) are captured from whichever goroutine hit them first and
// re-raised on the calling goroutine after all chunks finish.
func For(workers, n, grain int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if grain < 1 {
		grain = 1
	}
	w := Width(workers)
	if w <= 1 || n <= grain {
		body(0, n)
		return
	}

	chunks := (n + grain - 1) / grain
	if maxC := w * 4; chunks > maxC {
		chunks = maxC
	}
	if chunks < 2 {
		body(0, n)
		return
	}
	ensureHelpers(w)

	rec := statsOn.Load()
	if rec {
		sParallelFors.Add(1)
		sInFlight.Add(1)
	}
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		panicked atomic.Bool
		panicVal any
		panicMu  sync.Mutex
	)
	wg.Add(chunks)
	runChunk := func(c int) {
		// The Done must run after the recover so that the panic value is
		// published before Wait returns (defers run LIFO).
		defer wg.Done()
		defer func() {
			if r := recover(); r != nil {
				if panicked.CompareAndSwap(false, true) {
					panicMu.Lock()
					panicVal = r
					panicMu.Unlock()
				}
			}
		}()
		if rec {
			sChunks.Add(1)
			t0 := time.Now()
			defer func() { sBusyNs.Add(uint64(time.Since(t0))) }()
		}
		lo := c * n / chunks
		hi := (c + 1) * n / chunks
		if lo < hi && !panicked.Load() {
			body(lo, hi)
		}
	}
	worker := func() {
		for {
			c := int(next.Add(1)) - 1
			if c >= chunks {
				return
			}
			runChunk(c)
		}
	}
	// Offer the work to up to w-1 helpers without blocking: if the pool is
	// busy (or this is a nested For and every helper is occupied above us),
	// the caller simply runs more of the chunks itself.
	offered := 0
offer:
	for offered < w-1 {
		select {
		case tasks <- worker:
			offered++
		default:
			break offer
		}
	}
	// The caller runs its own chunk loop (same atomic hand-out as worker);
	// every chunk it does not claim was run by a helper, which is what the
	// stolen-chunk gauge reports.
	mine := 0
	for {
		c := int(next.Add(1)) - 1
		if c >= chunks {
			break
		}
		runChunk(c)
		mine++
	}
	wg.Wait()
	if rec {
		sChunksStolen.Add(uint64(chunks - mine))
		sInFlight.Add(-1)
	}
	if panicked.Load() {
		panicMu.Lock()
		r := panicVal
		panicMu.Unlock()
		panic(r)
	}
}
