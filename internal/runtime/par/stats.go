// Pool gauges for the observability layer (ISSUE 4). par is a leaf
// package, so the counters live here and internal/obs re-renders them;
// collection is gated by EnableStats so the disabled For path pays one
// atomic load and no clock reads.
package par

import "sync/atomic"

// Stats is a point-in-time snapshot of the pool counters.
type Stats struct {
	// ParallelFors counts For calls that actually split work (the inline
	// fast path — width 1 or n below the grain — is not counted).
	ParallelFors uint64
	// Chunks counts chunk executions across all goroutines.
	Chunks uint64
	// ChunksStolen counts the chunks run by helper goroutines rather than
	// the submitting goroutine.
	ChunksStolen uint64
	// BusyNs sums wall time spent inside chunk bodies, across goroutines.
	BusyNs uint64
	// HelpersStarted is the number of helper goroutines ever launched.
	HelpersStarted int64
	// InFlight is the number of split For calls currently executing; it
	// settles back to 0 once every caller returns (including abort
	// unwinds, which decrement before re-raising the panic).
	InFlight int64
}

var (
	statsOn       atomic.Bool
	sParallelFors atomic.Uint64
	sChunks       atomic.Uint64
	sChunksStolen atomic.Uint64
	sBusyNs       atomic.Uint64
	sInFlight     atomic.Int64
)

// EnableStats turns pool-stat collection on or off and returns the
// previous state. When off, For records nothing and reads no clocks.
func EnableStats(on bool) bool { return statsOn.Swap(on) }

// StatsEnabled reports whether pool-stat collection is on.
func StatsEnabled() bool { return statsOn.Load() }

// StatsNow snapshots the pool counters. Per-field atomic, not a
// consistent cut — the usual monitoring contract.
func StatsNow() Stats {
	return Stats{
		ParallelFors:   sParallelFors.Load(),
		Chunks:         sChunks.Load(),
		ChunksStolen:   sChunksStolen.Load(),
		BusyNs:         sBusyNs.Load(),
		HelpersStarted: started.Load(),
		InFlight:       sInFlight.Load(),
	}
}

// ResetStats zeroes the cumulative counters (tests). InFlight is live
// state and is not touched; HelpersStarted reflects pool history.
func ResetStats() {
	sParallelFors.Store(0)
	sChunks.Store(0)
	sChunksStolen.Store(0)
	sBusyNs.Store(0)
}
