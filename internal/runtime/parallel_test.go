package runtime

import (
	"math"
	"testing"
)

// serialMapF is the pre-pool reference loop the parallel kernels must match
// bit-for-bit.
func serialMapF(t *Tensor, f func(float64) float64) *Tensor {
	out := NewTensor(KR64, t.Dims...)
	for i := range out.F {
		out.F[i] = f(t.F[i])
	}
	return out
}

func fillSeq(t *Tensor) {
	for i := range t.F {
		t.F[i] = 0.001*float64(i) + 0.5
	}
	for i := range t.I {
		t.I[i] = int64(i % 97)
	}
}

// TestParallelKernelsBitIdentical sweeps worker counts and grain sizes —
// including grains larger than the input, which forces the serial fast
// path — and requires exact equality with the serial loops.
func TestParallelKernelsBitIdentical(t *testing.T) {
	for _, n := range []int{1, 100, 5000, 50_000} {
		in := NewTensor(KR64, n)
		fillSeq(in)
		want := serialMapF(in, math.Sqrt)
		for _, workers := range []int{1, 2, 4, 8} {
			for _, grain := range []int{1, 64, 4096, n + 1} {
				prev := SetGrainSize(grain)
				got := in.MapFP(workers, math.Sqrt)
				SetGrainSize(prev)
				for i := range want.F {
					if math.Float64bits(got.F[i]) != math.Float64bits(want.F[i]) {
						t.Fatalf("MapFP(n=%d workers=%d grain=%d): element %d differs", n, workers, grain, i)
					}
				}
			}
		}
	}
}

func TestZipIPBitIdentical(t *testing.T) {
	n := 30_000
	a := NewTensor(KI64, n)
	b := NewTensor(KI64, n)
	fillSeq(a)
	fillSeq(b)
	want := a.ZipIP(1, b, AddI64)
	for _, workers := range []int{2, 8} {
		got := a.ZipIP(workers, b, AddI64)
		for i := range want.I {
			if got.I[i] != want.I[i] {
				t.Fatalf("ZipIP workers=%d: element %d differs", workers, i)
			}
		}
	}
}

func TestGaussianBlurParallelMatchesSerial(t *testing.T) {
	for _, dims := range [][2]int{{2, 2}, {3, 3}, {17, 33}, {120, 200}} {
		rows, cols := dims[0], dims[1]
		img := NewTensor(KR64, rows, cols)
		fillSeq(img)
		want := GaussianBlur3x3P(1, img)
		for _, workers := range []int{2, 4, 8} {
			prev := SetGrainSize(1)
			got := GaussianBlur3x3P(workers, img)
			SetGrainSize(prev)
			for i := range want.F {
				if math.Float64bits(got.F[i]) != math.Float64bits(want.F[i]) {
					t.Fatalf("blur %dx%d workers=%d: pixel %d differs", rows, cols, workers, i)
				}
			}
		}
	}
}

func TestHistogramParallelMatchesSerial(t *testing.T) {
	n := 100_000
	data := NewTensor(KI64, n)
	fillSeq(data)
	want := HistogramBinsP(1, 97, data)
	for _, workers := range []int{2, 4, 8} {
		prev := SetGrainSize(1)
		got := HistogramBinsP(workers, 97, data)
		SetGrainSize(prev)
		for i := range want.I {
			if got.I[i] != want.I[i] {
				t.Fatalf("histogram workers=%d: bin %d got %d want %d", workers, i, got.I[i], want.I[i])
			}
		}
	}
}

func TestHistogramOutOfRangeThrows(t *testing.T) {
	data := NewTensor(KI64, 10)
	data.I[7] = 1000
	defer func() {
		r := recover()
		exc, ok := r.(*Exception)
		if !ok || exc.Kind != ExcPartRange {
			t.Fatalf("expected ExcPartRange, got %v", r)
		}
	}()
	HistogramBinsP(4, 256, data)
	t.Fatal("unreachable: out-of-range value must throw")
}

func TestDotParallelBitIdentical(t *testing.T) {
	m, k, n := 67, 129, 45
	a := NewTensor(KR64, m, k)
	b := NewTensor(KR64, k, n)
	fillSeq(a)
	fillSeq(b)
	want := DotMMP(1, a, b)
	for _, workers := range []int{2, 4, 8} {
		got := DotMMP(workers, a, b)
		for i := range want.F {
			if math.Float64bits(got.F[i]) != math.Float64bits(want.F[i]) {
				t.Fatalf("DotMMP workers=%d: element %d differs", workers, i)
			}
		}
	}
	v := NewTensor(KR64, k)
	fillSeq(v)
	wantMV := DotMVP(1, a, v)
	gotMV := DotMVP(8, a, v)
	for i := range wantMV.F {
		if math.Float64bits(gotMV.F[i]) != math.Float64bits(wantMV.F[i]) {
			t.Fatalf("DotMVP: element %d differs", i)
		}
	}
}

func TestAtomicSharedFlag(t *testing.T) {
	tt := NewTensor(KR64, 4)
	if tt.IsShared() {
		t.Fatal("fresh tensor must not be shared")
	}
	tt.MarkShared()
	if !tt.IsShared() {
		t.Fatal("MarkShared must stick")
	}
	// Concurrent acquire/release nets out to zero.
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func() {
			for i := 0; i < 1000; i++ {
				tt.Acquire()
			}
			for i := 0; i < 1000; i++ {
				tt.Release()
			}
			done <- struct{}{}
		}()
	}
	for g := 0; g < 8; g++ {
		<-done
	}
	if tt.RefCount() != 0 {
		t.Fatalf("concurrent acquire/release left refcount %d", tt.RefCount())
	}
}
