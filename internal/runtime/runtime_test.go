package runtime

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"wolfc/internal/expr"
	"wolfc/internal/parser"
	"wolfc/internal/types"
)

// catch runs f and returns the runtime exception it panics with, if any.
func catch(f func()) (exc *Exception) {
	defer func() {
		if r := recover(); r != nil {
			var ok bool
			exc, ok = r.(*Exception)
			if !ok {
				panic(r)
			}
		}
	}()
	f()
	return nil
}

func TestCheckedArithmetic(t *testing.T) {
	if AddI64(2, 3) != 5 || SubI64(2, 3) != -1 || MulI64(6, 7) != 42 {
		t.Fatal("basic arithmetic broken")
	}
	if exc := catch(func() { AddI64(math.MaxInt64, 1) }); exc == nil || exc.Kind != ExcOverflow {
		t.Fatal("add overflow must throw")
	}
	if exc := catch(func() { SubI64(math.MinInt64, 1) }); exc == nil || exc.Kind != ExcOverflow {
		t.Fatal("sub overflow must throw")
	}
	if exc := catch(func() { MulI64(1<<62, 4) }); exc == nil || exc.Kind != ExcOverflow {
		t.Fatal("mul overflow must throw")
	}
	if exc := catch(func() { NegI64(math.MinInt64) }); exc == nil {
		t.Fatal("neg overflow must throw")
	}
	if exc := catch(func() { ModI64(1, 0) }); exc == nil || exc.Kind != ExcDivideByZero {
		t.Fatal("mod by zero must throw")
	}
}

// Property: checked ops agree with big-integer arithmetic when in range.
func TestCheckedArithmeticQuick(t *testing.T) {
	f := func(a, b int32) bool {
		x, y := int64(a), int64(b)
		return AddI64(x, y) == x+y && SubI64(x, y) == x-y && MulI64(x, y) == x*y
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestModQuotSemantics(t *testing.T) {
	// Language semantics: Mod sign follows the modulus; Quotient floors.
	cases := []struct{ a, m, mod, quot int64 }{
		{7, 3, 1, 2},
		{-7, 3, 2, -3},
		{7, -3, -2, -3},
		{-7, -3, -1, 2},
	}
	for _, c := range cases {
		if got := ModI64(c.a, c.m); got != c.mod {
			t.Errorf("Mod(%d, %d) = %d, want %d", c.a, c.m, got, c.mod)
		}
		if got := QuotI64(c.a, c.m); got != c.quot {
			t.Errorf("Quot(%d, %d) = %d, want %d", c.a, c.m, got, c.quot)
		}
	}
}

func TestPowI64(t *testing.T) {
	if PowI64(2, 10) != 1024 || PowI64(7, 0) != 1 || PowI64(0, 5) != 0 {
		t.Fatal("PowI64 broken")
	}
	if exc := catch(func() { PowI64(2, 64) }); exc == nil {
		t.Fatal("2^64 must overflow")
	}
	if exc := catch(func() { PowI64(2, -1) }); exc == nil {
		t.Fatal("negative power must throw")
	}
}

func TestComplexPow(t *testing.T) {
	got := PowCInt(complex(0, 1), 2)
	if math.Abs(real(got)+1) > 1e-12 || math.Abs(imag(got)) > 1e-12 {
		t.Fatalf("i^2 = %v", got)
	}
	got = PowCInt(complex(2, 0), -2)
	if math.Abs(real(got)-0.25) > 1e-12 {
		t.Fatalf("2^-2 = %v", got)
	}
	if AbsC(complex(3, 4)) != 5 {
		t.Fatal("AbsC broken")
	}
}

func TestTensorIndexing(t *testing.T) {
	tt := NewTensor(KR64, 3)
	copy(tt.F, []float64{1, 2, 3})
	if tt.GetF(1) != 1 || tt.GetF(3) != 3 || tt.GetF(-1) != 3 || tt.GetF(-3) != 1 {
		t.Fatal("1-based/negative indexing broken")
	}
	if exc := catch(func() { tt.GetF(4) }); exc == nil || exc.Kind != ExcPartRange {
		t.Fatal("out of range must throw")
	}
	if exc := catch(func() { tt.GetF(0) }); exc == nil {
		t.Fatal("index 0 must throw")
	}
	m := NewTensor(KI64, 2, 3)
	copy(m.I, []int64{1, 2, 3, 4, 5, 6})
	if m.GetI2(2, 1) != 4 || m.GetI2(-1, -1) != 6 {
		t.Fatal("rank-2 indexing broken")
	}
	row := m.Row(2)
	if row.Len() != 3 || row.I[0] != 4 {
		t.Fatal("Row broken")
	}
}

func TestCopyOnWriteSharing(t *testing.T) {
	orig := NewTensor(KR64, 2)
	orig.F[0] = 1
	orig.MarkShared()
	// Mutating a shared tensor copies; the original is untouched.
	upd := orig.SetF(1, 99)
	if upd == orig {
		t.Fatal("shared tensor must copy on write")
	}
	if orig.F[0] != 1 || upd.F[0] != 99 {
		t.Fatal("copy-on-write values wrong")
	}
	if upd.IsShared() {
		t.Fatal("the private copy is not shared")
	}
	// A second write mutates in place.
	upd2 := upd.SetF(1, 50)
	if upd2 != upd {
		t.Fatal("unshared tensor must mutate in place")
	}
}

func TestRefCounting(t *testing.T) {
	tt := NewTensor(KI64, 1)
	tt.Acquire()
	tt.Acquire()
	if tt.RefCount() != 2 {
		t.Fatal("acquire broken")
	}
	tt.Release()
	tt.Release()
	tt.Release() // extra release clamps at zero
	if tt.RefCount() != 0 {
		t.Fatal("release broken")
	}
}

func TestZipMapArithmetic(t *testing.T) {
	a := NewTensor(KR64, 3)
	b := NewTensor(KR64, 3)
	copy(a.F, []float64{1, 2, 3})
	copy(b.F, []float64{10, 20, 30})
	sum := a.ZipF(b, func(x, y float64) float64 { return x + y })
	if sum.F[2] != 33 {
		t.Fatal("ZipF broken")
	}
	neg := a.MapF(func(x float64) float64 { return -x })
	if neg.F[0] != -1 {
		t.Fatal("MapF broken")
	}
	short := NewTensor(KR64, 2)
	if exc := catch(func() { a.ZipF(short, func(x, y float64) float64 { return 0 }) }); exc == nil {
		t.Fatal("length mismatch must throw")
	}
}

func TestDotShapes(t *testing.T) {
	v := NewTensor(KR64, 2)
	copy(v.F, []float64{3, 4})
	if DotVV(v, v) != 25 {
		t.Fatal("DotVV broken")
	}
	m := NewTensor(KR64, 2, 2)
	copy(m.F, []float64{1, 0, 0, 2})
	mv := DotMV(m, v)
	if mv.F[0] != 3 || mv.F[1] != 8 {
		t.Fatal("DotMV broken")
	}
	mm := DotMM(m, m)
	if mm.F[0] != 1 || mm.F[3] != 4 {
		t.Fatal("DotMM broken")
	}
	bad := NewTensor(KR64, 3)
	if exc := catch(func() { DotVV(v, bad) }); exc == nil {
		t.Fatal("shape mismatch must throw")
	}
}

func TestUnboxBoxRoundTrip(t *testing.T) {
	cases := []struct {
		src string
		ty  string
	}{
		{"42", `"Integer64"`},
		{"2.5", `"Real64"`},
		{"True", `"Boolean"`},
		{`"hi"`, `"String"`},
		{"{1, 2, 3}", `"Tensor"["Integer64", 1]`},
		{"{1.5, 2.5}", `"Tensor"["Real64", 1]`},
		{"{{1., 2.}, {3., 4.}}", `"Tensor"["Real64", 2]`},
	}
	env := types.Builtin()
	for _, c := range cases {
		ty := env.MustParseSpec(parser.MustParse(c.ty))
		e := parser.MustParse(c.src)
		v, ok := Unbox(e, ty)
		if !ok {
			t.Fatalf("Unbox(%s : %s) failed", c.src, c.ty)
		}
		back := Box(v, ty)
		if !expr.SameQ(e, back) {
			t.Fatalf("round trip %s -> %s", c.src, expr.InputForm(back))
		}
	}
	// Mismatches fail cleanly.
	i64 := env.MustParseSpec(parser.MustParse(`"Integer64"`))
	if _, ok := Unbox(parser.MustParse(`"nope"`), i64); ok {
		t.Fatal("string into Integer64 must fail")
	}
	if _, ok := Unbox(parser.MustParse("{1, x}"),
		env.MustParseSpec(parser.MustParse(`"Tensor"["Integer64", 1]`))); ok {
		t.Fatal("symbolic element must fail tensor unboxing")
	}
}

func TestUnboxedTensorsAreShared(t *testing.T) {
	env := types.Builtin()
	ty := env.MustParseSpec(parser.MustParse(`"Tensor"["Real64", 1]`))
	v, ok := Unbox(parser.MustParse("{1., 2.}"), ty)
	if !ok {
		t.Fatal("unbox failed")
	}
	if !v.(*Tensor).IsShared() {
		t.Fatal("ABI tensors must arrive Shared (copy-on-write trigger, F5)")
	}
}

func TestStringHelpers(t *testing.T) {
	if StringByte("AB", 1) != 65 || StringByte("AB", 2) != 66 {
		t.Fatal("StringByte broken")
	}
	if exc := catch(func() { StringByte("AB", 3) }); exc == nil {
		t.Fatal("byte range must throw")
	}
	if StringRuneLen("héllo") != 5 {
		t.Fatal("rune length broken")
	}
	if StringTakeN("hello", 2) != "he" || StringTakeN("hello", -2) != "lo" {
		t.Fatal("StringTakeN broken")
	}
	codes := ToCharCodes("hi")
	if codes.I[0] != 104 || codes.I[1] != 105 {
		t.Fatal("ToCharCodes broken")
	}
	if FromCharCodes(codes) != "hi" {
		t.Fatal("FromCharCodes broken")
	}
	if FormatInt(-3) != "-3" || FormatReal(2.5) != "2.5" {
		t.Fatal("formatting broken")
	}
}

func TestKernelApplyWithoutEngine(t *testing.T) {
	// The throw names the offending head so a standalone-mode user can see
	// which call needed the engine.
	exc := catch(func() { KernelApply(nil, expr.Sym("myKernelFn"), nil) })
	if exc == nil || exc.Kind != ExcKernel {
		t.Fatal("standalone KernelApply must throw ExcKernel")
	}
	if !strings.Contains(exc.Msg, "myKernelFn") {
		t.Fatalf("standalone KernelApply message %q does not name the head", exc.Msg)
	}
	exc = catch(func() { ExprBinary(nil, "Plus", expr.FromInt64(1), expr.FromInt64(2)) })
	if exc == nil {
		t.Fatal("standalone symbolic op must throw")
	}
	if !strings.Contains(exc.Msg, "Plus") {
		t.Fatalf("standalone symbolic message %q does not name the operation", exc.Msg)
	}
	// Non-symbol heads render in InputForm.
	exc = catch(func() { KernelApply(nil, expr.NewS("Derivative", expr.FromInt64(1)), nil) })
	if exc == nil || !strings.Contains(exc.Msg, "Derivative[1]") {
		t.Fatalf("standalone KernelApply with compound head: %v", exc)
	}
}
