package runtime

import (
	"math/big"
	"strconv"

	"wolfc/internal/expr"
	"wolfc/internal/types"
)

// Boxing and unboxing between kernel expressions and runtime values (paper
// §4.5 "Expression Boxing and Unboxing"): the auxiliary wrapper around each
// compiled function unpacks arguments, checks their types, and packs the
// result back into an expression.

// KindOf maps a compiler type to the runtime register class.
func KindOf(t types.Type) Kind {
	switch x := t.(type) {
	case *types.Atomic:
		switch x.Name {
		case "Boolean":
			return KBool
		case "Real32", "Real64":
			return KR64
		case "ComplexReal64":
			return KC64
		case "Integer8", "Integer16", "Integer32", "Integer64",
			"UnsignedInteger8", "UnsignedInteger16", "UnsignedInteger32", "UnsignedInteger64":
			return KI64
		case "Void":
			return KBool // placeholder class; value unused
		default: // String, Expression
			return KObj
		}
	case *types.Compound, *types.Fn:
		return KObj
	}
	return KObj
}

// Unbox converts an expression into the runtime representation for type t.
// A conversion failure returns false; the wrapper then reports an argument
// type error (F1 integration).
func Unbox(e expr.Expr, t types.Type) (any, bool) {
	switch x := t.(type) {
	case *types.Atomic:
		switch x.Name {
		case "Integer64", "Integer32", "Integer16", "Integer8", "MachineInteger",
			"UnsignedInteger8", "UnsignedInteger16", "UnsignedInteger32", "UnsignedInteger64":
			i, ok := e.(*expr.Integer)
			if !ok || !i.IsMachine() {
				return nil, false
			}
			return i.Int64(), true
		case "Real64", "Real32":
			switch v := e.(type) {
			case *expr.Real:
				return v.V, true
			case *expr.Integer:
				if v.IsMachine() {
					return float64(v.Int64()), true
				}
			case *expr.Rational:
				f, _ := v.V.Float64()
				return f, true
			}
			return nil, false
		case "ComplexReal64":
			switch v := e.(type) {
			case *expr.Complex:
				return complex(v.Re, v.Im), true
			case *expr.Real:
				return complex(v.V, 0), true
			case *expr.Integer:
				if v.IsMachine() {
					return complex(float64(v.Int64()), 0), true
				}
			case *expr.Normal:
				// Unevaluated Complex[re, im] heads box fine too.
				if c, ok := expr.IsNormalN(v, expr.Sym("Complex"), 2); ok {
					re, ok1 := toF(c.Arg(1))
					im, ok2 := toF(c.Arg(2))
					if ok1 && ok2 {
						return complex(re, im), true
					}
				}
			}
			return nil, false
		case "Boolean":
			if b, isBool := expr.TruthValue(e); isBool {
				return b, true
			}
			return nil, false
		case "String":
			s, ok := e.(*expr.String)
			if !ok {
				return nil, false
			}
			return s.V, true
		case "Expression":
			return e, true
		}
	case *types.Compound:
		if x.Ctor == "Tensor" && len(x.Args) == 2 {
			rank, ok := x.Args[1].(*types.Literal)
			if !ok {
				return nil, false
			}
			return unboxTensor(e, x.Args[0], int(rank.Value))
		}
	}
	return nil, false
}

func unboxTensor(e expr.Expr, elem types.Type, rank int) (any, bool) {
	l, ok := expr.IsNormal(e, expr.SymList)
	if !ok {
		return nil, false
	}
	n := l.Len()
	if rank == 1 {
		switch KindOf(elem) {
		case KI64:
			t := NewTensor(KI64, n)
			for i := 1; i <= n; i++ {
				v, ok := l.Arg(i).(*expr.Integer)
				if !ok || !v.IsMachine() {
					return nil, false
				}
				t.I[i-1] = v.Int64()
			}
			t.MarkShared()
			return t, true
		case KR64:
			t := NewTensor(KR64, n)
			for i := 1; i <= n; i++ {
				f, ok := toF(l.Arg(i))
				if !ok {
					return nil, false
				}
				t.F[i-1] = f
			}
			t.MarkShared()
			return t, true
		case KC64:
			t := NewTensor(KC64, n)
			for i := 1; i <= n; i++ {
				switch v := l.Arg(i).(type) {
				case *expr.Complex:
					t.C[i-1] = complex(v.Re, v.Im)
				default:
					f, ok := toF(l.Arg(i))
					if !ok {
						return nil, false
					}
					t.C[i-1] = complex(f, 0)
				}
			}
			t.MarkShared()
			return t, true
		case KObj:
			t := NewTensor(KObj, n)
			for i := 1; i <= n; i++ {
				v, ok := Unbox(l.Arg(i), elem)
				if !ok {
					return nil, false
				}
				t.O[i-1] = v
			}
			t.MarkShared()
			return t, true
		}
		return nil, false
	}
	// Rank >= 2: rectangular flattening.
	if n == 0 {
		return nil, false
	}
	first, ok := expr.IsNormal(l.Arg(1), expr.SymList)
	if !ok {
		return nil, false
	}
	cols := first.Len()
	if rank == 2 {
		kind := KindOf(elem)
		t := NewTensor(kind, n, cols)
		for i := 1; i <= n; i++ {
			row, ok := expr.IsNormal(l.Arg(i), expr.SymList)
			if !ok || row.Len() != cols {
				return nil, false
			}
			for j := 1; j <= cols; j++ {
				off := (i-1)*cols + (j - 1)
				switch kind {
				case KI64:
					v, ok := row.Arg(j).(*expr.Integer)
					if !ok || !v.IsMachine() {
						return nil, false
					}
					t.I[off] = v.Int64()
				case KR64:
					f, ok := toF(row.Arg(j))
					if !ok {
						return nil, false
					}
					t.F[off] = f
				default:
					return nil, false
				}
			}
		}
		t.MarkShared()
		return t, true
	}
	return nil, false
}

func toF(e expr.Expr) (float64, bool) {
	switch v := e.(type) {
	case *expr.Real:
		return v.V, true
	case *expr.Integer:
		if v.IsMachine() {
			return float64(v.Int64()), true
		}
		f := new(big.Float).SetInt(v.Big())
		out, _ := f.Float64()
		return out, true
	case *expr.Rational:
		f, _ := v.V.Float64()
		return f, true
	}
	return 0, false
}

// Box converts a runtime value of type t back into an expression.
func Box(v any, t types.Type) expr.Expr {
	switch x := t.(type) {
	case *types.Atomic:
		switch x.Name {
		case "Void":
			return expr.SymNull
		case "Boolean":
			return expr.Bool(v.(bool))
		case "Real64", "Real32":
			return expr.FromFloat(v.(float64))
		case "ComplexReal64":
			c := v.(complex128)
			if imag(c) == 0 {
				return expr.FromFloat(real(c))
			}
			return expr.FromComplex(real(c), imag(c))
		case "String":
			return expr.FromString(v.(string))
		case "Expression":
			return v.(expr.Expr)
		default: // integer widths
			return expr.FromInt64(v.(int64))
		}
	case *types.Compound:
		if x.Ctor == "Tensor" && len(x.Args) == 2 {
			t := v.(*Tensor)
			return boxTensor(t, x.Args[0])
		}
	case *types.Fn:
		return expr.NewS("CompiledCodeFunctionValue")
	}
	return expr.SymFailed
}

func boxTensor(t *Tensor, elem types.Type) expr.Expr {
	if len(t.Dims) == 1 {
		out := make([]expr.Expr, t.Len())
		for i := range out {
			switch t.Elem {
			case KI64:
				out[i] = expr.FromInt64(t.I[i])
			case KR64:
				out[i] = expr.FromFloat(t.F[i])
			case KC64:
				c := t.C[i]
				out[i] = expr.FromComplex(real(c), imag(c))
			case KBool:
				out[i] = expr.Bool(t.B[i])
			case KObj:
				out[i] = Box(t.O[i], elem)
			}
		}
		return expr.List(out...)
	}
	// rank 2
	rows, cols := t.Dims[0], t.Dims[1]
	out := make([]expr.Expr, rows)
	for i := 0; i < rows; i++ {
		row := make([]expr.Expr, cols)
		for j := 0; j < cols; j++ {
			off := i*cols + j
			switch t.Elem {
			case KI64:
				row[j] = expr.FromInt64(t.I[off])
			case KR64:
				row[j] = expr.FromFloat(t.F[off])
			case KC64:
				c := t.C[off]
				row[j] = expr.FromComplex(real(c), imag(c))
			}
		}
		out[i] = expr.List(row...)
	}
	return expr.List(out...)
}

// --- symbolic Expression operations (F8) ---
// Symbolic values flow through compiled code as expr.Expr in object
// registers; arithmetic combines them with threaded interpretation through
// the engine (paper §4.5: "Symbolic code still utilize the Wolfram Engine,
// but uses threaded interpretation to bypass the Wolfram interpreter").

// ExprBinary combines two symbolic values under the named head, folding
// numerics through the engine.
func ExprBinary(eng Engine, head string, a, b expr.Expr) expr.Expr {
	if eng == nil {
		Throw(ExcKernel, "symbolic %s requires the engine (disabled in standalone mode)", head)
	}
	out, err := eng.EvalExpr(expr.NewS(head, a, b))
	if err != nil {
		Throw(ExcKernel, "symbolic %s: %v", head, err)
	}
	return out
}

// KernelApply evaluates f[args...] in the interpreter (KernelFunction, F9).
func KernelApply(eng Engine, f expr.Expr, args []expr.Expr) expr.Expr {
	if eng == nil {
		Throw(ExcKernel, "KernelFunction escape to %s requires the engine (disabled in standalone mode)", escapeHeadName(f))
	}
	out, err := eng.EvalExpr(expr.New(f, args...))
	if err != nil {
		Throw(ExcKernel, "kernel escape to %s: %v", escapeHeadName(f), err)
	}
	if out == expr.SymAborted {
		Throw(ExcAbort, "aborted")
	}
	return out
}

// escapeHeadName names the head a kernel escape would have applied, for
// error messages: the symbol name when the head is a symbol, otherwise its
// InputForm. Standalone-mode failures name what could not be evaluated.
func escapeHeadName(f expr.Expr) string {
	if s, ok := f.(*expr.Symbol); ok {
		return s.Name
	}
	return expr.InputForm(f)
}

// SameQExpr is structural identity on symbolic values.
func SameQExpr(a, b expr.Expr) bool { return expr.SameQ(a, b) }

// --- string helpers ---

// StringByte returns the 1-based UTF-8 byte of s (the new compiler operates
// on the UTF8 bytes within the string — paper §6 FNV1a).
func StringByte(s string, i int64) int64 {
	if i < 1 || i > int64(len(s)) {
		Throw(ExcPartRange, "string byte index %d out of range for %d bytes", i, len(s))
	}
	return int64(s[i-1])
}

// StringRuneLen counts characters.
func StringRuneLen(s string) int64 {
	n := int64(0)
	for range s {
		n++
	}
	return n
}

// StringTakeN takes the first (or last, when negative) n characters.
func StringTakeN(s string, n int64) string {
	r := []rune(s)
	if n >= 0 {
		if n > int64(len(r)) {
			Throw(ExcPartRange, "StringTake: %d exceeds length %d", n, len(r))
		}
		return string(r[:n])
	}
	if -n > int64(len(r)) {
		Throw(ExcPartRange, "StringTake: %d exceeds length %d", n, len(r))
	}
	return string(r[int64(len(r))+n:])
}

// ToCharCodes converts a string to a tensor of code points.
func ToCharCodes(s string) *Tensor {
	runes := []rune(s)
	t := NewTensor(KI64, len(runes))
	for i, r := range runes {
		t.I[i] = int64(r)
	}
	return t
}

// FromCharCodes builds a string from a tensor of code points.
func FromCharCodes(t *Tensor) string {
	out := make([]rune, t.Len())
	for i := range out {
		out[i] = rune(t.I[i])
	}
	return string(out)
}

// FormatInt renders an integer (ToString).
func FormatInt(v int64) string { return strconv.FormatInt(v, 10) }

// FormatReal renders a real (ToString).
func FormatReal(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
