// Parallel-runtime surface: the process-wide knobs compiled code and the
// benchmark harness tune (worker count, grain size) plus the data-parallel
// benchmark kernels — 3×3 Gaussian blur and fixed-bin histogram — that the
// compiler exposes as natives. Partitioning is always over independent
// output ranges (rows for blur, per-worker private bins for the histogram),
// so results are bit-identical to the serial loops regardless of split.
package runtime

import (
	"sync/atomic"

	"wolfc/internal/runtime/par"
)

// grainSize is the minimum number of flat elements below which the
// element-wise kernels stay serial: forking costs more than the loop. The
// default (4096) clears the crossover measured on the element-wise Map
// benchmark with an order of magnitude to spare.
var grainSize atomic.Int64

const defaultGrainSize = 4096

// GrainSize returns the current serial-fast-path threshold.
func GrainSize() int {
	if g := grainSize.Load(); g > 0 {
		return int(g)
	}
	return defaultGrainSize
}

// SetGrainSize overrides the serial-fast-path threshold and returns the
// previous effective value. n <= 0 restores the default.
func SetGrainSize(n int) int {
	prev := GrainSize()
	if n < 0 {
		n = 0
	}
	grainSize.Store(int64(n))
	return prev
}

// SetMaxWorkers sets the process-wide default parallel width (0 restores
// the GOMAXPROCS default) and returns the previous setting. Per-call worker
// counts — the compiled Parallelism option — override this default.
func SetMaxWorkers(n int) int { return par.SetMaxWorkers(n) }

// MaxWorkers reports the configured default width (0 = GOMAXPROCS).
func MaxWorkers() int { return par.MaxWorkers() }

// GaussianBlur3x3P applies the benchmark's 3×3 binomial (Gaussian) stencil
// to a rank-2 Real64 tensor, partitioned by interior rows. Each output row
// reads only input rows i-1..i+1 and writes only row i, and the per-pixel
// summation order matches the serial reference exactly, so any row split
// yields bit-identical output. Border pixels stay zero, as in the serial
// benchmark kernel.
func GaussianBlur3x3P(workers int, img *Tensor) *Tensor {
	if img.Elem != KR64 || len(img.Dims) != 2 {
		Throw(ExcType, "GaussianBlur: expected a rank-2 Real64 tensor")
	}
	rows, cols := img.Dims[0], img.Dims[1]
	out := NewTensor(KR64, rows, cols)
	if rows < 3 || cols < 3 {
		return out
	}
	src, dst := img.F, out.F
	// Grain in rows: keep at least ~one grain's worth of pixels per chunk.
	rowGrain := GrainSize() / cols
	if rowGrain < 1 {
		rowGrain = 1
	}
	par.For(workers, rows-2, rowGrain, func(lo, hi int) {
		for i := lo + 1; i < hi+1; i++ {
			for j := 1; j < cols-1; j++ {
				dst[i*cols+j] = (src[(i-1)*cols+j-1] + 2*src[(i-1)*cols+j] + src[(i-1)*cols+j+1] +
					2*src[i*cols+j-1] + 4*src[i*cols+j] + 2*src[i*cols+j+1] +
					src[(i+1)*cols+j-1] + 2*src[(i+1)*cols+j] + src[(i+1)*cols+j+1]) / 16
			}
		}
	})
	return out
}

// HistogramBinsP counts occurrences of each value of a rank-1 Integer64
// tensor into `bins` buckets (values must lie in [0, bins)), partitioned by
// input range with private per-worker bin arrays merged by integer
// addition afterwards — a tree reduction flattened to one level, exact
// because integer addition is associative. Out-of-range values raise the
// Part exception like the bounds-checked serial loop they replace.
func HistogramBinsP(workers, bins int, data *Tensor) *Tensor {
	if data.Elem != KI64 || len(data.Dims) != 1 {
		Throw(ExcType, "Histogram: expected a rank-1 Integer64 tensor")
	}
	if bins <= 0 {
		Throw(ExcPartRange, "Histogram: nonpositive bin count %d", bins)
	}
	out := NewTensor(KI64, bins)
	n := len(data.I)
	if n == 0 {
		return out
	}
	w := par.Width(workers)
	parts := w
	if maxParts := (n + GrainSize() - 1) / GrainSize(); parts > maxParts {
		parts = maxParts
	}
	if parts < 1 {
		parts = 1
	}
	locals := make([][]int64, parts)
	// One par.For chunk per part: each part owns a contiguous input slice
	// and a private bin array, so there is no write sharing at all.
	par.For(workers, parts, 1, func(lo, hi int) {
		for p := lo; p < hi; p++ {
			local := make([]int64, bins)
			for _, v := range data.I[p*n/parts : (p+1)*n/parts] {
				if v < 0 || v >= int64(bins) {
					Throw(ExcPartRange, "Histogram: value %d outside [0, %d)", v, bins)
				}
				local[v]++
			}
			locals[p] = local
		}
	})
	for _, local := range locals {
		for b, c := range local {
			out.I[b] += c
		}
	}
	return out
}
