package runtime

import (
	"math/big"
	"testing"
	"testing/quick"
)

// Property tests for the checked-arithmetic laws the compiled code relies
// on. Operands are drawn from int32 so the reference computations cannot
// themselves overflow.

// Division law: a == m*Quotient[a, m] + Mod[a, m], with Mod's sign following
// the modulus and |Mod| < |m|.
func TestModQuotDivisionLawQuick(t *testing.T) {
	f := func(a32, m32 int32) bool {
		if m32 == 0 {
			return true
		}
		a, m := int64(a32), int64(m32)
		q, r := QuotI64(a, m), ModI64(a, m)
		if m*q+r != a {
			return false
		}
		if r != 0 && ((r < 0) != (m < 0)) {
			return false
		}
		abs := func(x int64) int64 {
			if x < 0 {
				return -x
			}
			return x
		}
		return abs(r) < abs(m)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// PowI64 agrees with arbitrary-precision exponentiation wherever the result
// fits in an int64, and throws ExcOverflow (the F2 soft-failure trigger)
// wherever it does not.
func TestPowMatchesBigIntQuick(t *testing.T) {
	f := func(b8 int8, e8 uint8) bool {
		base := int64(b8 % 10)
		exp := int64(e8 % 64)
		want := new(big.Int).Exp(big.NewInt(base), big.NewInt(exp), nil)
		var got int64
		exc := catch(func() { got = PowI64(base, exp) })
		if want.IsInt64() {
			return exc == nil && got == want.Int64()
		}
		return exc != nil && exc.Kind == ExcOverflow
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// String laws used by the compiled string pipeline: joining preserves rune
// counts, and taking the first (or last) part of a join recovers the piece.
func TestStringJoinTakeLawsQuick(t *testing.T) {
	f := func(a, b string) bool {
		joined := a + b
		if StringRuneLen(joined) != StringRuneLen(a)+StringRuneLen(b) {
			return false
		}
		if StringTakeN(joined, StringRuneLen(a)) != a {
			return false
		}
		return StringTakeN(joined, -StringRuneLen(b)) == b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

// Character-code round trip: FromCharCodes(ToCharCodes(s)) == s for any
// valid string.
func TestCharCodeRoundTripQuick(t *testing.T) {
	f := func(s string) bool {
		return FromCharCodes(ToCharCodes(s)) == s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

// Checked negation: NegI64 agrees with big-int negation or overflows only
// at INT64_MIN.
func TestNegI64Quick(t *testing.T) {
	f := func(a int64) bool {
		exc := catch(func() { _ = NegI64(a) })
		if a == -1<<63 {
			return exc != nil
		}
		return exc == nil && NegI64(a) == -a
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}
