package parser

import (
	"fmt"
	"math/big"
	"strconv"
	"strings"

	"wolfc/internal/expr"
)

// Parse parses src as a single expression; trailing input is an error.
func Parse(src string) (expr.Expr, error) {
	p, err := newParser(src)
	if err != nil {
		return nil, err
	}
	p.skipNewlines()
	e, err := p.parseExpr(0)
	if err != nil {
		return nil, err
	}
	p.skipNewlines()
	if t := p.peek(); t.kind != tokEOF {
		return nil, p.errAt(t, "unexpected %q after expression", t.text)
	}
	return e, nil
}

// MustParse is Parse but panics on error; for tests and static program text.
func MustParse(src string) expr.Expr {
	e, err := Parse(src)
	if err != nil {
		panic(fmt.Sprintf("parser.MustParse(%q): %v", src, err))
	}
	return e
}

// ParseAll parses a newline-separated sequence of top-level expressions.
func ParseAll(src string) ([]expr.Expr, error) {
	p, err := newParser(src)
	if err != nil {
		return nil, err
	}
	var out []expr.Expr
	for {
		p.skipNewlines()
		if p.peek().kind == tokEOF {
			return out, nil
		}
		e, err := p.parseExpr(0)
		if err != nil {
			return nil, err
		}
		out = append(out, e)
		if t := p.peek(); t.kind != tokNewline && t.kind != tokEOF {
			return nil, p.errAt(t, "unexpected %q after expression", t.text)
		}
	}
}

type parser struct {
	src  string
	toks []token
	i    int
}

func newParser(src string) (*parser, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	return &parser{src: src, toks: toks}, nil
}

func (p *parser) peek() token { return p.toks[p.i] }
func (p *parser) next() token { t := p.toks[p.i]; p.i++; return t }
func (p *parser) backup()     { p.i-- }
func (p *parser) skipNewlines() {
	for p.toks[p.i].kind == tokNewline {
		p.i++
	}
}

func (p *parser) errAt(t token, format string, args ...any) error {
	line := 1 + strings.Count(p.src[:min(t.pos, len(p.src))], "\n")
	return fmt.Errorf("parse error line %d: %s", line, fmt.Sprintf(format, args...))
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func (p *parser) expectPunct(op string) error {
	t := p.next()
	if t.kind != tokPunct || t.text != op {
		return p.errAt(t, "expected %q, found %q", op, t.text)
	}
	return nil
}

// Operator precedences; must agree with the InputForm printer in expr.
const (
	precCompound = 10
	precSet      = 20
	precFunc     = 25
	precRule     = 35
	precCond     = 38
	precReplace  = 30
	precOr       = 40
	precAnd      = 50
	precNot      = 55
	precCompare  = 60
	precSpan     = 65
	precPlus     = 70
	precTimes    = 80
	precStrJoin  = 85
	precUnary    = 90
	precPower    = 100
	precApply    = 108
	precMapAt    = 110
	precPostfix  = 120
)

type infixSpec struct {
	head  string
	prec  int
	right bool
	nary  bool // flatten chains of the same operator into one Normal
}

var infixTable = map[string]infixSpec{
	"=":   {"Set", precSet, true, false},
	":=":  {"SetDelayed", precSet, true, false},
	"+=":  {"AddTo", precSet, true, false},
	"-=":  {"SubtractFrom", precSet, true, false},
	"*=":  {"TimesBy", precSet, true, false},
	"/=":  {"DivideBy", precSet, true, false},
	"->":  {"Rule", precRule, true, false},
	":>":  {"RuleDelayed", precRule, true, false},
	"/.":  {"ReplaceAll", precReplace, false, false},
	"/;":  {"Condition", precCond, false, false},
	"||":  {"Or", precOr, false, true},
	"&&":  {"And", precAnd, false, true},
	"==":  {"Equal", precCompare, false, true},
	"!=":  {"Unequal", precCompare, false, true},
	"===": {"SameQ", precCompare, false, true},
	"=!=": {"UnsameQ", precCompare, false, true},
	"<":   {"Less", precCompare, false, true},
	"<=":  {"LessEqual", precCompare, false, true},
	">":   {"Greater", precCompare, false, true},
	">=":  {"GreaterEqual", precCompare, false, true},
	"+":   {"Plus", precPlus, false, true},
	"-":   {"Subtract", precPlus, false, false},
	"*":   {"Times", precTimes, false, true},
	"/":   {"Divide", precTimes, false, false},
	"^":   {"Power", precPower, true, false},
	"<>":  {"StringJoin", precStrJoin, false, true},
	";;":  {"Span", precSpan, false, false},
	"@@":  {"Apply", precApply, true, false},
	"/@":  {"Map", precMapAt, true, false},
}

// parseExpr parses an expression whose infix operators all bind tighter than
// minPrec.
func (p *parser) parseExpr(minPrec int) (expr.Expr, error) {
	lhs, err := p.parsePrefix()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind != tokPunct {
			return lhs, nil
		}
		switch t.text {
		case ";":
			if precCompound < minPrec {
				return lhs, nil
			}
			lhs, err = p.parseCompound(lhs)
			if err != nil {
				return nil, err
			}
			continue
		case "&":
			if precFunc < minPrec {
				return lhs, nil
			}
			p.next()
			lhs = expr.New(expr.SymFunction, lhs)
			continue
		case "++":
			if precPostfix < minPrec {
				return lhs, nil
			}
			p.next()
			lhs = expr.NewS("Increment", lhs)
			continue
		case "--":
			if precPostfix < minPrec {
				return lhs, nil
			}
			p.next()
			lhs = expr.NewS("Decrement", lhs)
			continue
		case "@":
			if precMapAt < minPrec {
				return lhs, nil
			}
			p.next()
			rhs, err := p.parseExpr(precMapAt)
			if err != nil {
				return nil, err
			}
			lhs = expr.New(lhs, rhs)
			continue
		case "[":
			if precPostfix < minPrec {
				return lhs, nil
			}
			lhs, err = p.parseBracketed(lhs)
			if err != nil {
				return nil, err
			}
			continue
		}
		spec, ok := infixTable[t.text]
		if !ok || spec.prec < minPrec {
			return lhs, nil
		}
		p.next()
		childMin := spec.prec + 1
		if spec.right {
			childMin = spec.prec
		}
		rhs, err := p.parseExpr(childMin)
		if err != nil {
			return nil, err
		}
		head := expr.Sym(spec.head)
		if spec.nary {
			if n, ok := expr.IsNormal(lhs, head); ok {
				lhs = n.WithArgs(append(append([]expr.Expr{}, n.Args()...), rhs)...)
				continue
			}
		}
		lhs = expr.New(head, lhs, rhs)
	}
}

// parseCompound parses a ; chain starting from first. A trailing semicolon
// (followed by a terminator) contributes Null, matching the language.
func (p *parser) parseCompound(first expr.Expr) (expr.Expr, error) {
	args := []expr.Expr{first}
	for {
		t := p.peek()
		if t.kind != tokPunct || t.text != ";" {
			break
		}
		p.next()
		nt := p.peek()
		if nt.kind == tokEOF || nt.kind == tokNewline ||
			(nt.kind == tokPunct && (nt.text == "]" || nt.text == ")" || nt.text == "}" || nt.text == ",")) {
			args = append(args, expr.SymNull)
			break
		}
		e, err := p.parseExpr(precCompound + 1)
		if err != nil {
			return nil, err
		}
		args = append(args, e)
	}
	return expr.New(expr.SymCompoundExpression, args...), nil
}

// parseBracketed parses f[...] or Part f[[...]] given the already-parsed head.
func (p *parser) parseBracketed(head expr.Expr) (expr.Expr, error) {
	if err := p.expectPunct("["); err != nil {
		return nil, err
	}
	if t := p.peek(); t.kind == tokPunct && t.text == "[" {
		// Part: a[[i, j]]
		p.next()
		args, err := p.parseArgList("]")
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct("]"); err != nil {
			return nil, err
		}
		return expr.NewS("Part", append([]expr.Expr{head}, args...)...), nil
	}
	args, err := p.parseArgList("]")
	if err != nil {
		return nil, err
	}
	return expr.New(head, args...), nil
}

// parseArgList parses a comma-separated list up to and including closer.
func (p *parser) parseArgList(closer string) ([]expr.Expr, error) {
	var args []expr.Expr
	p.skipNewlines()
	if t := p.peek(); t.kind == tokPunct && t.text == closer {
		p.next()
		return args, nil
	}
	for {
		e, err := p.parseExpr(0)
		if err != nil {
			return nil, err
		}
		args = append(args, e)
		t := p.next()
		if t.kind == tokPunct && t.text == closer {
			return args, nil
		}
		if t.kind != tokPunct || t.text != "," {
			return nil, p.errAt(t, "expected %q or \",\", found %q", closer, t.text)
		}
		p.skipNewlines()
	}
}

func (p *parser) parsePrefix() (expr.Expr, error) {
	p.skipNewlinesInOperand()
	t := p.next()
	switch t.kind {
	case tokInt:
		if v, err := strconv.ParseInt(t.text, 10, 64); err == nil {
			return expr.FromInt64(v), nil
		}
		b, ok := new(big.Int).SetString(t.text, 10)
		if !ok {
			return nil, p.errAt(t, "bad integer %q", t.text)
		}
		return expr.FromBig(b), nil
	case tokReal:
		text := strings.Replace(t.text, "*^", "e", 1)
		v, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return nil, p.errAt(t, "bad real %q", t.text)
		}
		return expr.FromFloat(v), nil
	case tokString:
		return expr.FromString(t.text), nil
	case tokIdent:
		return expr.Sym(t.text), nil
	case tokSlot:
		if t.text == "" {
			return expr.New(expr.SymSlot, expr.FromInt64(1)), nil
		}
		v, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, p.errAt(t, "bad slot %q", t.text)
		}
		return expr.New(expr.SymSlot, expr.FromInt64(v)), nil
	case tokPattern:
		return buildPattern(t), nil
	case tokPunct:
		switch t.text {
		case "(":
			e, err := p.parseExpr(0)
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			return e, nil
		case "{":
			args, err := p.parseArgList("}")
			if err != nil {
				return nil, err
			}
			return expr.List(args...), nil
		case "-":
			operand, err := p.parseExpr(precUnary)
			if err != nil {
				return nil, err
			}
			switch v := operand.(type) {
			case *expr.Integer:
				if v.IsMachine() {
					return expr.FromInt64(-v.Int64()), nil
				}
				return expr.FromBig(new(big.Int).Neg(v.Big())), nil
			case *expr.Real:
				return expr.FromFloat(-v.V), nil
			}
			return expr.NewS("Minus", operand), nil
		case "+":
			return p.parseExpr(precUnary)
		case "!":
			operand, err := p.parseExpr(precNot)
			if err != nil {
				return nil, err
			}
			return expr.NewS("Not", operand), nil
		}
	case tokEOF:
		return nil, p.errAt(t, "unexpected end of input")
	}
	return nil, p.errAt(t, "unexpected token %q", t.text)
}

// skipNewlinesInOperand skips newlines when an operand is expected, so that
// "a =\n 1" parses as one expression.
func (p *parser) skipNewlinesInOperand() {
	for p.toks[p.i].kind == tokNewline {
		p.i++
	}
}

func buildPattern(t token) expr.Expr {
	var blank expr.Expr
	var headArgs []expr.Expr
	if t.patHead != "" {
		headArgs = []expr.Expr{expr.Sym(t.patHead)}
	}
	switch t.patCount {
	case 1:
		blank = expr.New(expr.SymBlank, headArgs...)
	case 2:
		blank = expr.NewS("BlankSequence", headArgs...)
	default:
		blank = expr.NewS("BlankNullSequence", headArgs...)
	}
	if t.patName == "" {
		return blank
	}
	return expr.New(expr.SymPattern, expr.Sym(t.patName), blank)
}
