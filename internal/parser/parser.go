package parser

import (
	"fmt"
	"math/big"
	"strconv"
	"strings"

	"wolfc/internal/diag"
	"wolfc/internal/expr"
)

// Parse parses src as a single expression; trailing input is an error.
func Parse(src string) (expr.Expr, error) {
	e, _, err := ParseSource("", src)
	return e, err
}

// ParseSource is Parse for a named source unit. It additionally returns the
// diag.Source holding the span table that maps every parsed non-atomic node
// (and fresh numeric/string atoms) back to its byte range in src, so
// downstream stages can report "type error ... at line:col". Errors are
// positioned *diag.Diagnostics.
func ParseSource(name, src string) (expr.Expr, *diag.Source, error) {
	p, err := newParser(name, src)
	if err != nil {
		return nil, nil, err
	}
	p.skipNewlines()
	e, err := p.parseExpr(0)
	if err != nil {
		return nil, nil, err
	}
	p.skipNewlines()
	if t := p.peek(); t.kind != tokEOF {
		return nil, nil, p.errAt(t, "unexpected %q after expression", t.text)
	}
	return e, p.tab, nil
}

// MustParse is Parse but panics on error; for tests and static program text.
func MustParse(src string) expr.Expr {
	e, err := Parse(src)
	if err != nil {
		panic(fmt.Sprintf("parser.MustParse(%q): %v", src, err))
	}
	return e
}

// ParseAll parses a newline-separated sequence of top-level expressions.
func ParseAll(src string) ([]expr.Expr, error) {
	out, _, err := ParseAllSource("", src)
	return out, err
}

// ParseAllSource is ParseAll with a named source unit and span table.
func ParseAllSource(name, src string) ([]expr.Expr, *diag.Source, error) {
	p, err := newParser(name, src)
	if err != nil {
		return nil, nil, err
	}
	var out []expr.Expr
	for {
		p.skipNewlines()
		if p.peek().kind == tokEOF {
			return out, p.tab, nil
		}
		e, err := p.parseExpr(0)
		if err != nil {
			return nil, nil, err
		}
		out = append(out, e)
		if t := p.peek(); t.kind != tokNewline && t.kind != tokEOF {
			return nil, nil, p.errAt(t, "unexpected %q after expression", t.text)
		}
	}
}

type parser struct {
	src  string
	toks []token
	i    int
	tab  *diag.Source
}

func newParser(name, src string) (*parser, error) {
	toks, errPos, err := lex(src)
	if err != nil {
		return nil, diag.Newf(diag.Parse, "P001", "%s", err).
			WithPos(name, diag.Position(src, errPos))
	}
	return &parser{src: src, toks: toks, tab: diag.NewSource(name, src)}, nil
}

func (p *parser) peek() token { return p.toks[p.i] }
func (p *parser) next() token { t := p.toks[p.i]; p.i++; return t }
func (p *parser) backup()     { p.i-- }
func (p *parser) skipNewlines() {
	for p.toks[p.i].kind == tokNewline {
		p.i++
	}
}

func (p *parser) errAt(t token, format string, args ...any) error {
	return diag.Newf(diag.Parse, "P002", "%s", fmt.Sprintf(format, args...)).
		WithPos(p.tab.Name, diag.Position(p.src, t.pos))
}

// span records e's byte range [start, end-of-previous-token) in the span
// table and returns e, so parse productions can tag nodes as they build them.
func (p *parser) span(e expr.Expr, start int) expr.Expr {
	end := start
	if p.i > 0 {
		end = p.toks[p.i-1].end
	}
	p.tab.SetSpan(e, start, end)
	return e
}

func (p *parser) expectPunct(op string) error {
	t := p.next()
	if t.kind != tokPunct || t.text != op {
		return p.errAt(t, "expected %q, found %q", op, t.text)
	}
	return nil
}

// Operator precedences; must agree with the InputForm printer in expr.
const (
	precCompound = 10
	precSet      = 20
	precFunc     = 25
	precRule     = 35
	precCond     = 38
	precReplace  = 30
	precOr       = 40
	precAnd      = 50
	precNot      = 55
	precCompare  = 60
	precSpan     = 65
	precPlus     = 70
	precTimes    = 80
	precStrJoin  = 85
	precUnary    = 90
	precPower    = 100
	precApply    = 108
	precMapAt    = 110
	precPostfix  = 120
)

type infixSpec struct {
	head  string
	prec  int
	right bool
	nary  bool // flatten chains of the same operator into one Normal
}

var infixTable = map[string]infixSpec{
	"=":   {"Set", precSet, true, false},
	":=":  {"SetDelayed", precSet, true, false},
	"+=":  {"AddTo", precSet, true, false},
	"-=":  {"SubtractFrom", precSet, true, false},
	"*=":  {"TimesBy", precSet, true, false},
	"/=":  {"DivideBy", precSet, true, false},
	"->":  {"Rule", precRule, true, false},
	":>":  {"RuleDelayed", precRule, true, false},
	"/.":  {"ReplaceAll", precReplace, false, false},
	"/;":  {"Condition", precCond, false, false},
	"||":  {"Or", precOr, false, true},
	"&&":  {"And", precAnd, false, true},
	"==":  {"Equal", precCompare, false, true},
	"!=":  {"Unequal", precCompare, false, true},
	"===": {"SameQ", precCompare, false, true},
	"=!=": {"UnsameQ", precCompare, false, true},
	"<":   {"Less", precCompare, false, true},
	"<=":  {"LessEqual", precCompare, false, true},
	">":   {"Greater", precCompare, false, true},
	">=":  {"GreaterEqual", precCompare, false, true},
	"+":   {"Plus", precPlus, false, true},
	"-":   {"Subtract", precPlus, false, false},
	"*":   {"Times", precTimes, false, true},
	"/":   {"Divide", precTimes, false, false},
	"^":   {"Power", precPower, true, false},
	"<>":  {"StringJoin", precStrJoin, false, true},
	";;":  {"Span", precSpan, false, false},
	"@@":  {"Apply", precApply, true, false},
	"/@":  {"Map", precMapAt, true, false},
}

// parseExpr parses an expression whose infix operators all bind tighter than
// minPrec. Every node built here is tagged with the byte range it was parsed
// from (the span table skips interned symbols).
func (p *parser) parseExpr(minPrec int) (expr.Expr, error) {
	lhs, start, err := p.parsePrefix()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind != tokPunct {
			return lhs, nil
		}
		switch t.text {
		case ";":
			if precCompound < minPrec {
				return lhs, nil
			}
			lhs, err = p.parseCompound(lhs)
			if err != nil {
				return nil, err
			}
			p.span(lhs, start)
			continue
		case "&":
			if precFunc < minPrec {
				return lhs, nil
			}
			p.next()
			lhs = p.span(expr.New(expr.SymFunction, lhs), start)
			continue
		case "++":
			if precPostfix < minPrec {
				return lhs, nil
			}
			p.next()
			lhs = p.span(expr.NewS("Increment", lhs), start)
			continue
		case "--":
			if precPostfix < minPrec {
				return lhs, nil
			}
			p.next()
			lhs = p.span(expr.NewS("Decrement", lhs), start)
			continue
		case "@":
			if precMapAt < minPrec {
				return lhs, nil
			}
			p.next()
			rhs, err := p.parseExpr(precMapAt)
			if err != nil {
				return nil, err
			}
			lhs = p.span(expr.New(lhs, rhs), start)
			continue
		case "[":
			if precPostfix < minPrec {
				return lhs, nil
			}
			lhs, err = p.parseBracketed(lhs)
			if err != nil {
				return nil, err
			}
			p.span(lhs, start)
			continue
		}
		spec, ok := infixTable[t.text]
		if !ok || spec.prec < minPrec {
			return lhs, nil
		}
		p.next()
		childMin := spec.prec + 1
		if spec.right {
			childMin = spec.prec
		}
		rhs, err := p.parseExpr(childMin)
		if err != nil {
			return nil, err
		}
		head := expr.Sym(spec.head)
		if spec.nary {
			if n, ok := expr.IsNormal(lhs, head); ok {
				lhs = p.span(n.WithArgs(append(append([]expr.Expr{}, n.Args()...), rhs)...), start)
				continue
			}
		}
		lhs = p.span(expr.New(head, lhs, rhs), start)
	}
}

// parseCompound parses a ; chain starting from first. A trailing semicolon
// (followed by a terminator) contributes Null, matching the language.
func (p *parser) parseCompound(first expr.Expr) (expr.Expr, error) {
	args := []expr.Expr{first}
	for {
		t := p.peek()
		if t.kind != tokPunct || t.text != ";" {
			break
		}
		p.next()
		nt := p.peek()
		if nt.kind == tokEOF || nt.kind == tokNewline ||
			(nt.kind == tokPunct && (nt.text == "]" || nt.text == ")" || nt.text == "}" || nt.text == ",")) {
			args = append(args, expr.SymNull)
			break
		}
		e, err := p.parseExpr(precCompound + 1)
		if err != nil {
			return nil, err
		}
		args = append(args, e)
	}
	return expr.New(expr.SymCompoundExpression, args...), nil
}

// parseBracketed parses f[...] or Part f[[...]] given the already-parsed head.
func (p *parser) parseBracketed(head expr.Expr) (expr.Expr, error) {
	if err := p.expectPunct("["); err != nil {
		return nil, err
	}
	if t := p.peek(); t.kind == tokPunct && t.text == "[" {
		// Part: a[[i, j]]
		p.next()
		args, err := p.parseArgList("]")
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct("]"); err != nil {
			return nil, err
		}
		return expr.NewS("Part", append([]expr.Expr{head}, args...)...), nil
	}
	args, err := p.parseArgList("]")
	if err != nil {
		return nil, err
	}
	return expr.New(head, args...), nil
}

// parseArgList parses a comma-separated list up to and including closer.
func (p *parser) parseArgList(closer string) ([]expr.Expr, error) {
	var args []expr.Expr
	p.skipNewlines()
	if t := p.peek(); t.kind == tokPunct && t.text == closer {
		p.next()
		return args, nil
	}
	for {
		e, err := p.parseExpr(0)
		if err != nil {
			return nil, err
		}
		args = append(args, e)
		t := p.next()
		if t.kind == tokPunct && t.text == closer {
			return args, nil
		}
		if t.kind != tokPunct || t.text != "," {
			return nil, p.errAt(t, "expected %q or \",\", found %q", closer, t.text)
		}
		p.skipNewlines()
	}
}

// parsePrefix parses one prefix operand and returns it together with the
// byte offset of its first token, which parseExpr reuses as the start of
// every infix node the operand ends up inside.
func (p *parser) parsePrefix() (expr.Expr, int, error) {
	p.skipNewlinesInOperand()
	t := p.next()
	ok2 := func(e expr.Expr) (expr.Expr, int, error) { return p.span(e, t.pos), t.pos, nil }
	fail := func(err error) (expr.Expr, int, error) { return nil, t.pos, err }
	switch t.kind {
	case tokInt:
		if v, err := strconv.ParseInt(t.text, 10, 64); err == nil {
			return ok2(expr.FromInt64(v))
		}
		b, ok := new(big.Int).SetString(t.text, 10)
		if !ok {
			return fail(p.errAt(t, "bad integer %q", t.text))
		}
		return ok2(expr.FromBig(b))
	case tokReal:
		text := strings.Replace(t.text, "*^", "e", 1)
		v, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return fail(p.errAt(t, "bad real %q", t.text))
		}
		return ok2(expr.FromFloat(v))
	case tokString:
		return ok2(expr.FromString(t.text))
	case tokIdent:
		return ok2(expr.Sym(t.text))
	case tokSlot:
		if t.text == "" {
			return ok2(expr.New(expr.SymSlot, expr.FromInt64(1)))
		}
		v, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return fail(p.errAt(t, "bad slot %q", t.text))
		}
		return ok2(expr.New(expr.SymSlot, expr.FromInt64(v)))
	case tokPattern:
		return ok2(buildPattern(t))
	case tokPunct:
		switch t.text {
		case "(":
			e, err := p.parseExpr(0)
			if err != nil {
				return fail(err)
			}
			if err := p.expectPunct(")"); err != nil {
				return fail(err)
			}
			return e, t.pos, nil
		case "{":
			args, err := p.parseArgList("}")
			if err != nil {
				return fail(err)
			}
			return ok2(expr.List(args...))
		case "-":
			operand, err := p.parseExpr(precUnary)
			if err != nil {
				return fail(err)
			}
			switch v := operand.(type) {
			case *expr.Integer:
				if v.IsMachine() {
					return ok2(expr.FromInt64(-v.Int64()))
				}
				return ok2(expr.FromBig(new(big.Int).Neg(v.Big())))
			case *expr.Real:
				return ok2(expr.FromFloat(-v.V))
			}
			return ok2(expr.NewS("Minus", operand))
		case "+":
			e, err := p.parseExpr(precUnary)
			if err != nil {
				return fail(err)
			}
			return e, t.pos, nil
		case "!":
			operand, err := p.parseExpr(precNot)
			if err != nil {
				return fail(err)
			}
			return ok2(expr.NewS("Not", operand))
		}
	case tokEOF:
		return fail(p.errAt(t, "unexpected end of input"))
	}
	return fail(p.errAt(t, "unexpected token %q", t.text))
}

// skipNewlinesInOperand skips newlines when an operand is expected, so that
// "a =\n 1" parses as one expression.
func (p *parser) skipNewlinesInOperand() {
	for p.toks[p.i].kind == tokNewline {
		p.i++
	}
}

func buildPattern(t token) expr.Expr {
	var blank expr.Expr
	var headArgs []expr.Expr
	if t.patHead != "" {
		headArgs = []expr.Expr{expr.Sym(t.patHead)}
	}
	switch t.patCount {
	case 1:
		blank = expr.New(expr.SymBlank, headArgs...)
	case 2:
		blank = expr.NewS("BlankSequence", headArgs...)
	default:
		blank = expr.NewS("BlankNullSequence", headArgs...)
	}
	if t.patName == "" {
		return blank
	}
	return expr.New(expr.SymPattern, expr.Sym(t.patName), blank)
}
