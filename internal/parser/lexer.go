// Package parser implements a lexer and Pratt parser for the Wolfram
// Language surface syntax used throughout this repository: bracketed
// application f[x], lists {..}, Part a[[i]], patterns x_Integer, pure
// functions (#+1)&, and the standard operator grammar (;  = :=  ->  /.  ||
// &&  comparisons  + -  * /  ^  @  /@  ++ --). Parsed programs are plain
// expr.Expr trees in FullForm, exactly the inert MExpr data that both the
// interpreter and the compiler consume (paper §2.1, §4.2).
package parser

import (
	"fmt"
	"strings"
	"unicode"
	"unicode/utf8"
)

type tokKind int

const (
	tokEOF tokKind = iota
	tokNewline
	tokIdent   // Plus, x, $foo
	tokInt     // 123
	tokReal    // 1.5, 2., 1.5*^-3
	tokString  // "..."
	tokPattern // x_, x_Integer, _, __, ___Real, x__
	tokSlot    // #, #2
	tokPunct   // operators and brackets
)

type token struct {
	kind tokKind
	text string // raw text (punct: the operator; string: unquoted value)
	pos  int    // byte offset in input, for error messages and spans
	end  int    // byte offset just past the token, filled in by emit

	// pattern fields
	patName  string // "" for anonymous blanks
	patHead  string // "" for untyped blanks
	patCount int    // 1=_ 2=__ 3=___
}

type lexer struct {
	src    string
	pos    int
	depth  int // bracket nesting; newlines inside brackets are skipped
	toks   []token
	errPos int
	err    error
}

func (lx *lexer) errorf(pos int, format string, args ...any) {
	if lx.err == nil {
		lx.err = fmt.Errorf(format, args...)
		lx.errPos = pos
	}
}

func isIdentStart(r rune) bool {
	return r == '$' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '$' || r == '`' || unicode.IsLetter(r) || unicode.IsDigit(r)
}

// lex tokenises the whole input. On error, the returned offset locates the
// failure in src.
func lex(src string) (toks []token, errPos int, err error) {
	lx := &lexer{src: src}
	for lx.pos < len(lx.src) && lx.err == nil {
		lx.next()
	}
	lx.emit(token{kind: tokEOF, pos: lx.pos})
	return lx.toks, lx.errPos, lx.err
}

// emit appends a token; every emit site runs with lx.pos just past the
// token's text, so the end offset is recorded here.
func (lx *lexer) emit(t token) {
	t.end = lx.pos
	lx.toks = append(lx.toks, t)
}

func (lx *lexer) peekRune() (rune, int) {
	if lx.pos >= len(lx.src) {
		return 0, 0
	}
	return utf8.DecodeRuneInString(lx.src[lx.pos:])
}

func (lx *lexer) next() {
	start := lx.pos
	r, w := lx.peekRune()
	switch {
	case r == '\n':
		lx.pos += w
		if lx.depth == 0 {
			// Collapse runs of newlines into one token.
			if n := len(lx.toks); n == 0 || lx.toks[n-1].kind == tokNewline {
				return
			}
			lx.emit(token{kind: tokNewline, pos: start})
		}
	case r == ' ' || r == '\t' || r == '\r':
		lx.pos += w
	case r == '(' && strings.HasPrefix(lx.src[lx.pos:], "(*"):
		lx.comment()
	case r == '"':
		lx.lexString()
	// ASCII digits only: lexNumber consumes exactly [0-9], so dispatching
	// on unicode.IsDigit would make zero progress on a digit like U+1FBF5
	// and loop forever. Non-ASCII digits fall through to the error path.
	case (r >= '0' && r <= '9') || (r == '.' && lx.pos+1 < len(lx.src) && isDigitByte(lx.src[lx.pos+1])):
		lx.lexNumber()
	case isIdentStart(r):
		lx.lexIdentOrPattern()
	case r == '_':
		lx.lexBlank("")
	case r == '#':
		lx.pos += w
		num := lx.takeDigits()
		lx.emit(token{kind: tokSlot, text: num, pos: start})
	default:
		lx.lexPunct()
	}
}

func isDigitByte(b byte) bool { return b >= '0' && b <= '9' }

func (lx *lexer) comment() {
	start := lx.pos
	lx.pos += 2
	depth := 1
	for lx.pos < len(lx.src) && depth > 0 {
		if strings.HasPrefix(lx.src[lx.pos:], "(*") {
			depth++
			lx.pos += 2
		} else if strings.HasPrefix(lx.src[lx.pos:], "*)") {
			depth--
			lx.pos += 2
		} else {
			_, w := lx.peekRune()
			lx.pos += w
		}
	}
	if depth != 0 {
		lx.errorf(start, "unterminated comment")
	}
}

func (lx *lexer) lexString() {
	start := lx.pos
	lx.pos++ // opening quote
	var b strings.Builder
	for lx.pos < len(lx.src) {
		r, w := lx.peekRune()
		lx.pos += w
		switch r {
		case '"':
			lx.emit(token{kind: tokString, text: b.String(), pos: start})
			return
		case '\\':
			e, ew := lx.peekRune()
			lx.pos += ew
			switch e {
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			case '"':
				b.WriteByte('"')
			case '\\':
				b.WriteByte('\\')
			default:
				lx.errorf(lx.pos, "bad string escape \\%c", e)
				return
			}
		default:
			b.WriteRune(r)
		}
	}
	lx.errorf(start, "unterminated string")
}

func (lx *lexer) takeDigits() string {
	s := lx.pos
	for lx.pos < len(lx.src) && isDigitByte(lx.src[lx.pos]) {
		lx.pos++
	}
	return lx.src[s:lx.pos]
}

func (lx *lexer) lexNumber() {
	start := lx.pos
	lx.takeDigits()
	isReal := false
	if lx.pos < len(lx.src) && lx.src[lx.pos] == '.' {
		// "1." and "1.5" are reals; "a[[1]].x" cannot occur since we have
		// no Dot operator.
		isReal = true
		lx.pos++
		lx.takeDigits()
	}
	// Scientific notation: both 1.5e-3 and the WL form 1.5*^-3.
	if lx.pos < len(lx.src) && (lx.src[lx.pos] == 'e' || lx.src[lx.pos] == 'E') &&
		lx.pos+1 < len(lx.src) && (isDigitByte(lx.src[lx.pos+1]) || lx.src[lx.pos+1] == '-' || lx.src[lx.pos+1] == '+') {
		isReal = true
		lx.pos++
		if lx.src[lx.pos] == '-' || lx.src[lx.pos] == '+' {
			lx.pos++
		}
		lx.takeDigits()
	} else if strings.HasPrefix(lx.src[lx.pos:], "*^") {
		isReal = true
		lx.pos += 2
		if lx.pos < len(lx.src) && (lx.src[lx.pos] == '-' || lx.src[lx.pos] == '+') {
			lx.pos++
		}
		lx.takeDigits()
	}
	text := lx.src[start:lx.pos]
	kind := tokInt
	if isReal {
		kind = tokReal
	}
	lx.emit(token{kind: kind, text: text, pos: start})
}

func (lx *lexer) lexIdentOrPattern() {
	start := lx.pos
	for {
		r, w := lx.peekRune()
		if w == 0 || !isIdentPart(r) {
			break
		}
		lx.pos += w
	}
	name := lx.src[start:lx.pos]
	if lx.pos < len(lx.src) && lx.src[lx.pos] == '_' {
		lx.lexBlank(name)
		return
	}
	lx.emit(token{kind: tokIdent, text: name, pos: start})
}

// lexBlank scans _, __, ___ with an optional head, producing a pattern token
// bound to name (possibly empty).
func (lx *lexer) lexBlank(name string) {
	start := lx.pos
	count := 0
	for lx.pos < len(lx.src) && lx.src[lx.pos] == '_' && count < 3 {
		lx.pos++
		count++
	}
	head := ""
	if r, _ := lx.peekRune(); isIdentStart(r) {
		hs := lx.pos
		for {
			r, w := lx.peekRune()
			if w == 0 || !isIdentPart(r) {
				break
			}
			lx.pos += w
		}
		head = lx.src[hs:lx.pos]
	}
	lx.emit(token{
		kind: tokPattern, pos: start,
		patName: name, patHead: head, patCount: count,
	})
}

// multi-character operators, longest first. Note: [[ and ]] are NOT lexed as
// units — a[[f[1]]] would mis-tokenise; the parser recognises Part from
// adjacent brackets instead.
var punctOps = []string{
	"===", "=!=", "==", "!=", "<=", ">=", ":=", "->", ":>",
	"/.", "/;", "/@", "&&", "||", "++", "--", "+=", "-=", "*=", "/=", "@@",
	"<>", ";;",
	"[", "]", "{", "}", "(", ")", ",", ";", "=", "<", ">", "+", "-", "*",
	"/", "^", "!", "&", "@",
}

func (lx *lexer) lexPunct() {
	for _, op := range punctOps {
		if strings.HasPrefix(lx.src[lx.pos:], op) {
			start := lx.pos
			lx.pos += len(op)
			switch op {
			case "[", "{", "(":
				lx.depth++
			case "]", "}", ")":
				if lx.depth > 0 {
					lx.depth--
				}
			}
			lx.emit(token{kind: tokPunct, text: op, pos: start})
			return
		}
	}
	r, _ := lx.peekRune()
	lx.errorf(lx.pos, "unexpected character %q", r)
	lx.pos = len(lx.src)
}
