package parser

import (
	"strings"
	"testing"
	"testing/quick"

	"wolfc/internal/expr"
)

// full parses src and returns the FullForm string, or ERROR:<msg>.
func full(t *testing.T, src string) string {
	t.Helper()
	e, err := Parse(src)
	if err != nil {
		return "ERROR:" + err.Error()
	}
	return expr.FullForm(e)
}

func TestParseAtoms(t *testing.T) {
	cases := map[string]string{
		"42":                             "42",
		"-7":                             "-7",
		"123456789012345678901234567890": "123456789012345678901234567890",
		"1.5":                            "1.5",
		"2.":                             "2.",
		"1.5e-3":                         "0.0015",
		"1.5*^2":                         "150.",
		`"hi"`:                           `"hi"`,
		`"a\nb"`:                         `"a\nb"`,
		"x":                              "x",
		"$Context":                       "$Context",
		"foo`bar":                        "foo`bar",
		"#":                              "Slot[1]",
		"#3":                             "Slot[3]",
		"_":                              "Blank[]",
		"_Integer":                       "Blank[Integer]",
		"x_":                             "Pattern[x, Blank[]]",
		"x_Real":                         "Pattern[x, Blank[Real]]",
		"x__":                            "Pattern[x, BlankSequence[]]",
		"___":                            "BlankNullSequence[]",
		"rest__":                         "Pattern[rest, BlankSequence[]]",
	}
	for src, want := range cases {
		if got := full(t, src); got != want {
			t.Errorf("Parse(%q) = %s, want %s", src, got, want)
		}
	}
}

func TestParseOperators(t *testing.T) {
	cases := map[string]string{
		"a+b":                    "Plus[a, b]",
		"a+b+c":                  "Plus[a, b, c]",
		"a-b":                    "Subtract[a, b]",
		"a-b-c":                  "Subtract[Subtract[a, b], c]",
		"a*b*c":                  "Times[a, b, c]",
		"a/b":                    "Divide[a, b]",
		"a+b*c":                  "Plus[a, Times[b, c]]",
		"(a+b)*c":                "Times[Plus[a, b], c]",
		"a^b^c":                  "Power[a, Power[b, c]]",
		"-x":                     "Minus[x]",
		"-x+y":                   "Plus[Minus[x], y]",
		"2^-3":                   "Power[2, -3]",
		"a==b":                   "Equal[a, b]",
		"a==b==c":                "Equal[a, b, c]",
		"a<b":                    "Less[a, b]",
		"a<=b":                   "LessEqual[a, b]",
		"a!=b":                   "Unequal[a, b]",
		"a===b":                  "SameQ[a, b]",
		"a=!=b":                  "UnsameQ[a, b]",
		"a&&b&&c":                "And[a, b, c]",
		"a||b":                   "Or[a, b]",
		"!p":                     "Not[p]",
		"!p&&q":                  "And[Not[p], q]",
		"a->b":                   "Rule[a, b]",
		"a:>b":                   "RuleDelayed[a, b]",
		"x/.a->b":                "ReplaceAll[x, Rule[a, b]]",
		"a=1":                    "Set[a, 1]",
		"a:=b":                   "SetDelayed[a, b]",
		"a+=2":                   "AddTo[a, 2]",
		"a-=2":                   "SubtractFrom[a, 2]",
		"i++":                    "Increment[i]",
		"i--":                    "Decrement[i]",
		"a=b=c":                  "Set[a, Set[b, c]]",
		"f@x":                    "f[x]",
		"f@g@x":                  "f[g[x]]",
		"f/@list":                "Map[f, list]",
		"f@@list":                "Apply[f, list]",
		"a;b":                    "CompoundExpression[a, b]",
		"a;b;":                   "CompoundExpression[a, b, Null]",
		"a=1;a":                  "CompoundExpression[Set[a, 1], a]",
		"#+1&":                   "Function[Plus[Slot[1], 1]]",
		"(#^2&)[3]":              "Function[Power[Slot[1], 2]][3]",
		"a<b&&b<c":               "And[Less[a, b], Less[b, c]]",
		`"a"<>"b"`:               `StringJoin["a", "b"]`,
		`"a" <> "b" <> "c"`:      `StringJoin["a", "b", "c"]`,
		`s <> "x" == t`:          `Equal[StringJoin[s, "x"], t]`,
		`StringLength[a <> b]+1`: "Plus[StringLength[StringJoin[a, b]], 1]",
		"v[[2 ;; -1]]":           "Part[v, Span[2, -1]]",
		"v[[a+1 ;; b-1]]":        "Part[v, Span[Plus[a, 1], Subtract[b, 1]]]",
	}
	for src, want := range cases {
		if got := full(t, src); got != want {
			t.Errorf("Parse(%q) = %s, want %s", src, got, want)
		}
	}
}

func TestParseBrackets(t *testing.T) {
	cases := map[string]string{
		"f[]":            "f[]",
		"f[x]":           "f[x]",
		"f[x, y]":        "f[x, y]",
		"f[x][y]":        "f[x][y]",
		"{}":             "List[]",
		"{1, 2, 3}":      "List[1, 2, 3]",
		"{{1, 2}, {3}}":  "List[List[1, 2], List[3]]",
		"a[[1]]":         "Part[a, 1]",
		"a[[i, j]]":      "Part[a, i, j]",
		"a[[f[1]]]":      "Part[a, f[1]]",
		"a[[1]][[2]]":    "Part[Part[a, 1], 2]",
		"f[a[[i]]]":      "f[Part[a, i]]",
		"Sin[x]+Cos[y]":  "Plus[Sin[x], Cos[y]]",
		"f[{1, 2}, g[]]": "f[List[1, 2], g[]]",
	}
	for src, want := range cases {
		if got := full(t, src); got != want {
			t.Errorf("Parse(%q) = %s, want %s", src, got, want)
		}
	}
}

func TestParseProgramExamples(t *testing.T) {
	// Real programs from the paper.
	cases := map[string]string{
		"fib = Function[{n}, If[n < 1, 1, fib[n-1]+fib[n-2]]]": "Set[fib, Function[List[n], If[Less[n, 1], 1, Plus[fib[Subtract[n, 1]], fib[Subtract[n, 2]]]]]]",
		"Module[{a=1,b=1},a+b+Module[{a=3},a]]":                "Module[List[Set[a, 1], Set[b, 1]], Plus[a, b, Module[List[Set[a, 3]], a]]]",
		"i=0;While[True,If[i>3,i--,i++]]":                      "CompoundExpression[Set[i, 0], While[True, If[Greater[i, 3], Decrement[i], Increment[i]]]]",
		"And[x_, y_] -> If[x === True, y === True, False]":     "Rule[And[Pattern[x, Blank[]], Pattern[y, Blank[]]], If[SameQ[x, True], SameQ[y, True], False]]",
		"Typed[arg, \"MachineInteger\"]":                       `Typed[arg, "MachineInteger"]`,
	}
	for src, want := range cases {
		if got := full(t, src); got != want {
			t.Errorf("Parse(%q) =\n  %s, want\n  %s", src, got, want)
		}
	}
}

func TestParseComments(t *testing.T) {
	got := full(t, "1 + (* a comment (* nested *) here *) 2")
	if got != "Plus[1, 2]" {
		t.Fatalf("comment parse = %s", got)
	}
}

func TestParseMultiline(t *testing.T) {
	src := `
a = 1
b = a + 2
f[x_] := x^2
`
	exprs, err := ParseAll(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(exprs) != 3 {
		t.Fatalf("got %d statements, want 3", len(exprs))
	}
	if expr.FullForm(exprs[2]) != "SetDelayed[f[Pattern[x, Blank[]]], Power[x, 2]]" {
		t.Fatalf("stmt 3 = %s", expr.FullForm(exprs[2]))
	}
	// Continuation across newline after an operator.
	e, err := Parse("a = \n 1 + \n 2")
	if err != nil {
		t.Fatal(err)
	}
	if expr.FullForm(e) != "Set[a, Plus[1, 2]]" {
		t.Fatalf("continuation = %s", expr.FullForm(e))
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"f[",
		"f[1,",
		"(a+b",
		"{1, 2",
		"a +",
		`"unterminated`,
		"a ~ b",
		"1 2", // no implicit multiplication in this grammar
		"(* unterminated comment",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

// Property: InputForm printing round-trips through the parser for randomly
// shaped arithmetic trees.
func TestRoundTripQuick(t *testing.T) {
	type node struct {
		depth int
		seed  int64
	}
	var build func(depth int, seed int64) expr.Expr
	build = func(depth int, seed int64) expr.Expr {
		if depth <= 0 {
			switch seed % 4 {
			case 0:
				return expr.FromInt64(seed % 100)
			case 1:
				return expr.Sym("x")
			case 2:
				return expr.FromFloat(float64(seed%7) + 0.5)
			default:
				return expr.Sym("y")
			}
		}
		a := build(depth-1, seed/2)
		b := build(depth-1, seed/3+1)
		switch seed % 5 {
		case 0:
			return expr.NewS("Plus", a, b)
		case 1:
			return expr.NewS("Times", a, b)
		case 2:
			return expr.NewS("Power", a, b)
		case 3:
			return expr.NewS("f", a, b)
		default:
			return expr.List(a, b)
		}
	}
	f := func(depth uint8, seed int64) bool {
		if seed < 0 {
			seed = -seed
		}
		e := build(int(depth%4), seed)
		// The parser flattens nested Plus/Times chains (Flat heads), so an
		// exact round trip is not expected; instead the print→parse cycle
		// must reach a fixed point after one normalisation.
		src := expr.InputForm(e)
		got, err := Parse(src)
		if err != nil {
			t.Logf("failed to reparse %q: %v", src, err)
			return false
		}
		norm := expr.InputForm(got)
		got2, err := Parse(norm)
		if err != nil {
			t.Logf("failed to reparse normalised %q: %v", norm, err)
			return false
		}
		return expr.InputForm(got2) == norm
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Robustness: arbitrary input — including invalid UTF-8 and operator soup —
// must produce a parse error or an expression, never a panic.
func TestParserNeverPanicsQuick(t *testing.T) {
	f := func(s string) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				t.Logf("panic on %q: %v", s, r)
				ok = false
			}
		}()
		_, _ = Parse(s)
		_, _ = ParseAll(s)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
	// Directed soup the uniform generator rarely produces.
	soup := []string{
		"[[[[", "]]]]", "a[[", ";;", "&&&&", "x_/;/;", "#&#&", "1..2",
		"(*", "*)", "\"\\", "a<>", "<>", "-", "--", "f[,]", "{,}",
		"a =!=", "1 *^ 2", "x___y___", "`", "a``b", "\x00\x01", "𝒻[x]",
	}
	for _, s := range soup {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Errorf("panic on %q: %v", s, r)
				}
			}()
			_, _ = Parse(s)
		}()
	}
}

func TestErrorsMentionLine(t *testing.T) {
	_, err := Parse("a = 1 +\nb = ]")
	if err == nil || !strings.Contains(err.Error(), "at 2:") {
		t.Fatalf("error should carry a line-2 position, got %v", err)
	}
	if err == nil || !strings.Contains(err.Error(), "parse error") {
		t.Fatalf("error should be labelled a parse error, got %v", err)
	}
	// With a named source the file appears before the position.
	_, _, err = ParseSource("prog.wl", "f[1,")
	if err == nil || !strings.Contains(err.Error(), "prog.wl:1:") {
		t.Fatalf("named-source error should read file:line:col, got %v", err)
	}
}

func TestParseSourceSpans(t *testing.T) {
	e, src, err := ParseSource("t.wl", "f[x] +\ng[y]")
	if err != nil {
		t.Fatal(err)
	}
	pos, ok := src.PosOf(e)
	if !ok || pos.Line != 1 || pos.Col != 1 {
		t.Fatalf("whole-expression position = %v, %v; want 1:1", pos, ok)
	}
	plus, ok := e.(*expr.Normal)
	if !ok || len(plus.Args()) != 2 {
		t.Fatalf("expected binary Plus, got %s", expr.FullForm(e))
	}
	gpos, ok := src.PosOf(plus.Args()[1])
	if !ok || gpos.Line != 2 || gpos.Col != 1 {
		t.Fatalf("g[y] position = %v, %v; want 2:1", gpos, ok)
	}
	// Interned symbols are never recorded directly: they resolve through an
	// enclosing Normal, and a bare lookup fails rather than returning a
	// position leaked from an unrelated parse.
	if _, ok := src.SpanOf(expr.Sym("CompletelyFreshSymbolZZZ")); ok {
		t.Fatal("interned symbol should have no span of its own")
	}
}

func TestConditionOperator(t *testing.T) {
	cases := map[string]string{
		"x_ /; x > 0":            "Condition[Pattern[x, Blank[]], Greater[x, 0]]",
		"f[x_] /; EvenQ[x] := 1": "SetDelayed[Condition[f[Pattern[x, Blank[]]], EvenQ[x]], 1]",
		// /; binds tighter than :>, so the condition attaches to the RHS.
		"a :> b /; c": "RuleDelayed[a, Condition[b, c]]",
	}
	for src, want := range cases {
		if got := full(t, src); got != want {
			t.Errorf("Parse(%q) = %s, want %s", src, got, want)
		}
	}
}
