// Package passes implements the compiler's analysis and transformation
// passes over WIR/TWIR (paper §4.3, §4.5): dominators, loop nesting,
// liveness, dead code elimination, constant folding with dead-branch
// deletion, common subexpression elimination, inlining, abort-check
// insertion, mutability copy insertion, and reference-count insertion.
package passes

import (
	"wolfc/internal/wir"
)

// Dominators computes the immediate dominator of every reachable block
// using the Cooper–Harvey–Kennedy iterative algorithm (the paper cites "a
// simple, fast dominance algorithm").
type Dominators struct {
	idom  map[*wir.Block]*wir.Block
	order map[*wir.Block]int // reverse postorder index
	rpo   []*wir.Block
}

// ComputeDominators analyses fn.
func ComputeDominators(fn *wir.Function) *Dominators {
	d := &Dominators{
		idom:  map[*wir.Block]*wir.Block{},
		order: map[*wir.Block]int{},
	}
	// Reverse postorder.
	seen := map[*wir.Block]bool{}
	var post []*wir.Block
	var dfs func(b *wir.Block)
	dfs = func(b *wir.Block) {
		if seen[b] {
			return
		}
		seen[b] = true
		for _, s := range b.Succs() {
			dfs(s)
		}
		post = append(post, b)
	}
	entry := fn.Entry()
	dfs(entry)
	for i := len(post) - 1; i >= 0; i-- {
		d.order[post[i]] = len(d.rpo)
		d.rpo = append(d.rpo, post[i])
	}
	d.idom[entry] = entry
	for changed := true; changed; {
		changed = false
		for _, b := range d.rpo {
			if b == entry {
				continue
			}
			var newIdom *wir.Block
			for _, p := range b.Preds {
				if _, ok := d.idom[p]; !ok {
					continue
				}
				if newIdom == nil {
					newIdom = p
				} else {
					newIdom = d.intersect(p, newIdom)
				}
			}
			if newIdom != nil && d.idom[b] != newIdom {
				d.idom[b] = newIdom
				changed = true
			}
		}
	}
	return d
}

func (d *Dominators) intersect(a, b *wir.Block) *wir.Block {
	for a != b {
		for d.order[a] > d.order[b] {
			a = d.idom[a]
		}
		for d.order[b] > d.order[a] {
			b = d.idom[b]
		}
	}
	return a
}

// Dominates reports whether a dominates b.
func (d *Dominators) Dominates(a, b *wir.Block) bool {
	for {
		if a == b {
			return true
		}
		next, ok := d.idom[b]
		if !ok || next == b {
			return false
		}
		b = next
	}
}

// IDom returns b's immediate dominator (nil for the entry or unreachable
// blocks).
func (d *Dominators) IDom(b *wir.Block) *wir.Block {
	i := d.idom[b]
	if i == b {
		return nil
	}
	return i
}

// Reachable reports whether the block was reached in the CFG walk.
func (d *Dominators) Reachable(b *wir.Block) bool {
	_, ok := d.order[b]
	return ok
}

// RPO returns the blocks in reverse postorder.
func (d *Dominators) RPO() []*wir.Block { return d.rpo }

// LoopHeaders returns the set of blocks that are targets of back edges
// (loop-nesting analysis, used by abort-check insertion — paper §4.5).
func LoopHeaders(fn *wir.Function, dom *Dominators) map[*wir.Block]bool {
	heads := map[*wir.Block]bool{}
	for _, b := range fn.Blocks {
		if !dom.Reachable(b) {
			continue
		}
		for _, s := range b.Succs() {
			if dom.Dominates(s, b) {
				heads[s] = true
			}
		}
	}
	return heads
}

// Liveness computes per-block live-in/live-out sets of SSA values using the
// standard phi-edge treatment: a phi's operands are live-out of the
// corresponding predecessors, and phi definitions are not live-in to their
// own block.
type Liveness struct {
	LiveIn  map[*wir.Block]map[wir.Value]bool
	LiveOut map[*wir.Block]map[wir.Value]bool
}

// ComputeLiveness analyses fn.
func ComputeLiveness(fn *wir.Function) *Liveness {
	lv := &Liveness{
		LiveIn:  map[*wir.Block]map[wir.Value]bool{},
		LiveOut: map[*wir.Block]map[wir.Value]bool{},
	}
	for _, b := range fn.Blocks {
		lv.LiveIn[b] = map[wir.Value]bool{}
		lv.LiveOut[b] = map[wir.Value]bool{}
	}
	trackable := func(v wir.Value) bool {
		switch v.(type) {
		case *wir.Instr, *wir.Param:
			return true
		}
		return false
	}
	for changed := true; changed; {
		changed = false
		for i := len(fn.Blocks) - 1; i >= 0; i-- {
			b := fn.Blocks[i]
			out := map[wir.Value]bool{}
			for _, s := range b.Succs() {
				for v := range lv.LiveIn[s] {
					out[v] = true
				}
				// Phi uses are live on the edge from this predecessor.
				for _, phi := range s.Phis {
					for pi, pred := range s.Preds {
						if pred == b && pi < len(phi.Args) && trackable(phi.Args[pi]) {
							out[phi.Args[pi]] = true
						}
					}
				}
			}
			in := map[wir.Value]bool{}
			for v := range out {
				in[v] = true
			}
			// Walk instructions backwards.
			for j := len(b.Instrs) - 1; j >= 0; j-- {
				instr := b.Instrs[j]
				delete(in, wir.Value(instr))
				for _, a := range instr.Args {
					if trackable(a) {
						in[a] = true
					}
				}
			}
			for _, phi := range b.Phis {
				delete(in, wir.Value(phi))
			}
			if !setsEqual(out, lv.LiveOut[b]) || !setsEqual(in, lv.LiveIn[b]) {
				lv.LiveOut[b] = out
				lv.LiveIn[b] = in
				changed = true
			}
		}
	}
	return lv
}

func setsEqual(a, b map[wir.Value]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// LiveAfter reports whether v is live immediately after instruction idx of
// block b (used by copy insertion, §4.5 mutability).
func (lv *Liveness) LiveAfter(b *wir.Block, idx int, v wir.Value) bool {
	for j := idx + 1; j < len(b.Instrs); j++ {
		for _, a := range b.Instrs[j].Args {
			if a == v {
				return true
			}
		}
	}
	return lv.LiveOut[b][v]
}

// uses counts how many instruction/phi operands reference each value.
func uses(fn *wir.Function) map[wir.Value]int {
	count := map[wir.Value]int{}
	for _, b := range fn.Blocks {
		for _, phi := range b.Phis {
			for _, a := range phi.Args {
				count[a]++
			}
		}
		for _, in := range b.Instrs {
			for _, a := range in.Args {
				count[a]++
			}
		}
	}
	return count
}
