package passes

import (
	"testing"

	"wolfc/internal/types"
	"wolfc/internal/wir"
)

func TestFindLoopsNested(t *testing.T) {
	mod := buildTWIR(t, `Function[{Typed[n, "MachineInteger"]},
		Module[{s = 0, i = 1, j = 1},
			While[i <= n,
				j = 1;
				While[j <= n, s = s + 1; j = j + 1];
				i = i + 1];
			s]]`)
	f := mod.Main()
	loops := FindLoops(f, ComputeDominators(f))
	if len(loops) != 2 {
		t.Fatalf("want 2 natural loops, got %d", len(loops))
	}
	// One loop body must strictly contain the other (nesting).
	a, b := loops[0], loops[1]
	if len(a.Body) > len(b.Body) {
		a, b = b, a
	}
	if !b.Body[a.Header] {
		t.Fatal("inner loop header must lie inside the outer loop body")
	}
	for _, l := range loops {
		if !l.Body[l.Header] {
			t.Fatal("loop body must include its header")
		}
	}
}

func isNative(in *wir.Instr, name string) bool {
	return in.Op == wir.OpCall && nativeName(in) == name
}

// inLoopBody counts instructions matching pred inside any natural loop.
func inLoopBody(f *wir.Function, pred func(*wir.Instr) bool) int {
	loops := FindLoops(f, ComputeDominators(f))
	n := 0
	for _, l := range loops {
		for b := range l.Body {
			for _, in := range b.Instrs {
				if pred(in) {
					n++
				}
			}
		}
	}
	return n
}

func TestLICMHoistsInvariant(t *testing.T) {
	// n*n + 7 is loop-invariant... but integer multiply can throw, so it
	// must NOT be hoisted. The float invariant x*x is unchecked and must be.
	mod := buildTWIR(t, `Function[{Typed[n, "MachineInteger"], Typed[x, "Real64"]},
		Module[{s = 0., i = 1},
			While[i <= n, s = s + x*x; i = i + 1];
			s]]`)
	f := mod.Main()
	before := inLoopBody(f, func(in *wir.Instr) bool {
		return isNative(in, "binary_times") && types.Equal(types.TReal64, in.Ty)
	})
	if before != 1 {
		t.Fatalf("setup: want 1 float multiply in the loop, got %d", before)
	}
	if !LICM(f) {
		t.Fatal("LICM reported no change")
	}
	after := inLoopBody(f, func(in *wir.Instr) bool {
		return isNative(in, "binary_times") && types.Equal(types.TReal64, in.Ty)
	})
	if after != 0 {
		t.Fatalf("x*x not hoisted: %d float multiplies remain in the loop", after)
	}
	if err := mod.Lint(); err != nil {
		t.Fatalf("lint after LICM: %v", err)
	}
}

func TestLICMDoesNotHoistThrowing(t *testing.T) {
	// i is the trip variable; n*n is invariant but overflow-checked, and
	// Quotient[100, n] is invariant but can divide by zero — both must stay
	// in the loop so a zero-trip call can never throw.
	mod := buildTWIR(t, `Function[{Typed[n, "MachineInteger"]},
		Module[{s = 0, i = 1},
			While[i <= n, s = s + n*n + Quotient[100, n]; i = i + 1];
			s]]`)
	f := mod.Main()
	LICM(f)
	if got := inLoopBody(f, func(in *wir.Instr) bool {
		return isNative(in, "binary_times") || isNative(in, "quotient_int")
	}); got < 2 {
		t.Fatalf("throwing invariants were hoisted: %d of 2 remain in loop", got)
	}
}

func TestStrengthReduction(t *testing.T) {
	// s += i*12 has an induction multiply; after reduction the loop body
	// carries an addition of a derived IV instead.
	mod := buildTWIR(t, `Function[{Typed[n, "MachineInteger"]},
		Module[{s = 0, i = 1},
			While[i <= n, s = s + i*12; i = i + 1];
			s]]`)
	f := mod.Main()
	before := inLoopBody(f, func(in *wir.Instr) bool { return isNative(in, "binary_times") })
	if before != 1 {
		t.Fatalf("setup: want 1 multiply in the loop, got %d", before)
	}
	if !StrengthReduce(f) {
		t.Fatal("StrengthReduce reported no change")
	}
	DCE(f)
	after := inLoopBody(f, func(in *wir.Instr) bool { return isNative(in, "binary_times") })
	if after != 0 {
		t.Fatalf("induction multiply survived strength reduction (%d remain)", after)
	}
	if err := mod.Lint(); err != nil {
		t.Fatalf("lint after strength reduction: %v", err)
	}
}

// TestPassOrderingDCEAfterLICM is the pass-ordering contract: an invariant
// instruction that LICM hoists and whose value then turns out dead must be
// swept by the post-loop-opt DCE, not reach codegen in the preheader.
func TestPassOrderingDCEAfterLICM(t *testing.T) {
	mod := buildTWIR(t, `Function[{Typed[n, "MachineInteger"], Typed[x, "Real64"]},
		Module[{s = 0, d = 0., i = 1},
			While[i <= n, d = x*x; s = s + i; i = i + 1];
			s]]`)
	f := mod.Main()
	countMul := func() int {
		return countInstrs(f, func(in *wir.Instr) bool {
			return isNative(in, "binary_times") && types.Equal(types.TReal64, in.Ty)
		})
	}
	if countMul() != 1 {
		t.Fatalf("setup: want the dead invariant multiply present, got %d", countMul())
	}
	if err := Run(mod, types.Builtin(), DefaultOptions()); err != nil {
		t.Fatalf("passes: %v", err)
	}
	// d is never read: the multiply must be gone from the whole function —
	// loop body AND preheader.
	if got := countMul(); got != 0 {
		t.Fatalf("hoisted-then-dead multiply survived to codegen input (%d remain)", got)
	}
}

// TestLoopOptimizePreservesSemantics compiles the same module with and
// without LoopOptimize through lint; execution equivalence is covered by
// the core differential suite.
func TestLoopOptimizeLint(t *testing.T) {
	srcs := []string{
		`Function[{Typed[n, "MachineInteger"], Typed[x, "Real64"]},
			Module[{s = 0., i = 1},
				While[i <= n, s = s + x*x + i*2.5; i = i + 1];
				s]]`,
		`Function[{Typed[n, "MachineInteger"]},
			Module[{s = 0, i = 1, j = 1},
				While[i <= n,
					j = 1;
					While[j <= n, s = s + j*4; j = j + 1];
					i = i + 1];
				s]]`,
	}
	for _, src := range srcs {
		mod := buildTWIR(t, src)
		LoopOptimize(mod)
		if err := mod.Lint(); err != nil {
			t.Fatalf("lint after LoopOptimize: %v\n%s", err, src)
		}
	}
}
