package passes

import (
	"wolfc/internal/expr"
	"wolfc/internal/types"
	"wolfc/internal/wir"
)

func exprNull() expr.Expr { return expr.SymNull }

// InsertCopies implements the static half of the mutability protocol (F5,
// §4.5): for each Part assignment whose tensor operand is still live
// afterwards — another name aliases it and reads it later — an explicit
// Native`Copy is inserted so the mutation cannot be observed through the
// alias. The dynamic half (the Shared flag on values entering from the
// interpreter) is handled by the runtime's copy-on-write.
//
// With DisableCopyElision set, every Part assignment copies — the ablation
// matching the paper's QSort discussion.
func InsertCopies(mod *wir.Module, opts Options) {
	for _, f := range mod.Funcs {
		lv := ComputeLiveness(f)
		for _, b := range f.Blocks {
			for idx := 0; idx < len(b.Instrs); idx++ {
				in := b.Instrs[idx]
				if in.Op != wir.OpCall || !isSetPart(in.Callee) || len(in.Args) == 0 {
					continue
				}
				tensor := in.Args[0]
				needCopy := opts.DisableCopyElision
				if !needCopy {
					needCopy = lv.LiveAfter(b, idx, tensor)
				}
				if !needCopy {
					continue
				}
				cp := &wir.Instr{
					IDNum:  nextID(f),
					Op:     wir.OpCall,
					Callee: "Native`Copy",
					Native: "copy_tensor",
					Ty:     tensor.Type(),
					Block:  b,
				}
				cp.Args = []wir.Value{tensor}
				cp.SetProp("overload", &types.FuncDef{Name: "Native`Copy", Native: "copy_tensor"})
				b.Instrs = append(b.Instrs[:idx], append([]*wir.Instr{cp}, b.Instrs[idx:]...)...)
				idx++ // now pointing at the SetPart again
				b.Instrs[idx].Args[0] = cp
			}
		}
	}
}

// isSetPart matches only the checked, rebinding Part assignment produced by
// user code (w[[i]] = v). The Unsafe variant is emitted by macro-generated
// loops filling freshly allocated lists in place without rebinding; copying
// those would discard the writes, and freshness makes the copy unnecessary.
func isSetPart(callee string) bool {
	return callee == "Native`SetPart"
}

// InsertRefCounts implements the memory-management pass (F7, §4.5): for
// every memory-managed value, a MemoryAcquire is placed at the head of its
// live interval and a MemoryRelease at the tail. On this backend the
// reference counts drive copy-on-write (the host garbage collector owns the
// storage); acquire/release are polymorphic no-ops for unmanaged types
// exactly as the paper describes.
func InsertRefCounts(mod *wir.Module, env *types.Env) {
	for _, f := range mod.Funcs {
		lv := ComputeLiveness(f)
		for _, b := range f.Blocks {
			// Find the last use in this block of each managed value that
			// dies here.
			lastUse := map[wir.Value]int{}
			for idx, in := range b.Instrs {
				for _, a := range in.Args {
					if managedValue(env, a) {
						lastUse[a] = idx
					}
				}
			}
			var inserts []struct {
				at   int
				kind string
				val  wir.Value
			}
			for idx, in := range b.Instrs {
				// Acquire at definition of a managed value.
				if in.Op == wir.OpCall && managedValue(env, in) && !in.IsTerminator() {
					inserts = append(inserts, struct {
						at   int
						kind string
						val  wir.Value
					}{idx, "acquire", in})
				}
			}
			for v, idx := range lastUse {
				if !lv.LiveOut[b][v] {
					inserts = append(inserts, struct {
						at   int
						kind string
						val  wir.Value
					}{idx, "release", v})
				}
			}
			if len(inserts) == 0 {
				continue
			}
			// Apply inserts back to front so indices stay valid; releases
			// go after the instruction, acquires too (after definition).
			for i := len(b.Instrs) - 1; i >= 0; i-- {
				var after []*wir.Instr
				for _, ins := range inserts {
					if ins.at != i {
						continue
					}
					native := "memory_acquire"
					callee := "Native`MemoryAcquire"
					if ins.kind == "release" {
						native = "memory_release"
						callee = "Native`MemoryRelease"
					}
					rc := &wir.Instr{
						IDNum:  nextID(f),
						Op:     wir.OpCall,
						Callee: callee,
						Native: native,
						Ty:     types.TVoid,
						Block:  b,
						Args:   []wir.Value{ins.val},
					}
					rc.SetProp("overload", &types.FuncDef{Name: callee, Native: native})
					after = append(after, rc)
				}
				if len(after) == 0 {
					continue
				}
				if b.Instrs[i].IsTerminator() {
					// Insert before the terminator.
					rest := append(after, b.Instrs[i])
					b.Instrs = append(b.Instrs[:i], rest...)
				} else {
					rest := append([]*wir.Instr{b.Instrs[i]}, after...)
					b.Instrs = append(b.Instrs[:i], append(rest, b.Instrs[i+1:]...)...)
				}
			}
		}
	}
}

// managedValue reports whether the value's type is in the MemoryManaged
// class (paper §4.4 lists "MemoryManaged" among the type classes).
func managedValue(env *types.Env, v wir.Value) bool {
	t := v.Type()
	if t == nil {
		return false
	}
	switch v.(type) {
	case *wir.Instr, *wir.Param:
		return env.MemberOf(t, "MemoryManaged")
	}
	return false
}
