package passes

import (
	"strings"
	"testing"

	"wolfc/internal/binding"
	"wolfc/internal/infer"
	"wolfc/internal/macro"
	"wolfc/internal/parser"
	"wolfc/internal/types"
	"wolfc/internal/wir"
)

// buildTWIR compiles source to a typed module without running passes.
func buildTWIR(t *testing.T, src string) *wir.Module {
	t.Helper()
	env := macro.DefaultEnv()
	e, err := env.Expand(parser.MustParse(src), nil)
	if err != nil {
		t.Fatalf("macro: %v", err)
	}
	e = macro.ExpandSlots(e)
	res, err := binding.Analyze(e)
	if err != nil {
		t.Fatalf("binding: %v", err)
	}
	tenv := types.Builtin()
	mod, err := wir.Lower(res, tenv)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	if err := infer.Infer(mod, tenv); err != nil {
		t.Fatalf("infer: %v", err)
	}
	return mod
}

func countInstrs(f *wir.Function, pred func(*wir.Instr) bool) int {
	n := 0
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if pred(in) {
				n++
			}
		}
	}
	return n
}

func TestDominators(t *testing.T) {
	mod := buildTWIR(t, `Function[{Typed[n, "MachineInteger"]},
		Module[{s = 0, i = 1}, While[i <= n, s = s + i; i = i + 1]; s]]`)
	f := mod.Main()
	dom := ComputeDominators(f)
	entry := f.Entry()
	for _, b := range f.Blocks {
		if !dom.Reachable(b) {
			t.Fatalf("block %s unreachable", b.Label)
		}
		if !dom.Dominates(entry, b) {
			t.Fatalf("entry must dominate %s", b.Label)
		}
	}
	// The loop header dominates the body and the exit.
	var head, body, exit *wir.Block
	for _, b := range f.Blocks {
		switch b.Label {
		case "while_head":
			head = b
		case "while_body":
			body = b
		case "while_exit":
			exit = b
		}
	}
	if head == nil || !dom.Dominates(head, body) || !dom.Dominates(head, exit) {
		t.Fatal("loop header must dominate body and exit")
	}
	if dom.Dominates(body, head) {
		t.Fatal("body must not dominate the header")
	}
}

func TestLoopHeaders(t *testing.T) {
	mod := buildTWIR(t, `Function[{Typed[n, "MachineInteger"]},
		Module[{s = 0, i = 1, j = 1},
			While[i <= n,
				j = 1;
				While[j <= n, s = s + 1; j = j + 1];
				i = i + 1];
			s]]`)
	f := mod.Main()
	heads := LoopHeaders(f, ComputeDominators(f))
	if len(heads) != 2 {
		t.Fatalf("want 2 loop headers (nested loops), got %d", len(heads))
	}
}

func TestAbortInsertion(t *testing.T) {
	mod := buildTWIR(t, `Function[{Typed[n, "MachineInteger"]},
		Module[{i = 0}, While[i < n, i = i + 1]; i]]`)
	InsertAbortChecks(mod)
	f := mod.Main()
	checks := countInstrs(f, func(in *wir.Instr) bool { return in.Op == wir.OpAbortCheck })
	// Prologue + loop header (paper §4.5).
	if checks != 2 {
		t.Fatalf("abort checks = %d, want 2 (prologue + loop header):\n%s", checks, f.String())
	}
	// The header check precedes the loop condition.
	for _, b := range f.Blocks {
		if b.Label == "while_head" {
			if b.Instrs[0].Op != wir.OpAbortCheck {
				t.Fatal("loop header check must be first")
			}
		}
	}
}

func TestDCE(t *testing.T) {
	mod := buildTWIR(t, `Function[{Typed[x, "Real64"]},
		Module[{unused = Sin[x]*Cos[x]}, x + 1.]]`)
	f := mod.Main()
	before := countInstrs(f, func(in *wir.Instr) bool { return in.Op == wir.OpCall })
	if !DCE(f) {
		t.Fatal("DCE should remove the dead Sin/Cos/Times chain")
	}
	after := countInstrs(f, func(in *wir.Instr) bool { return in.Op == wir.OpCall })
	if after >= before {
		t.Fatalf("DCE did not shrink: %d -> %d", before, after)
	}
	// The live Plus remains.
	if countInstrs(f, func(in *wir.Instr) bool { return in.Callee == "Plus" }) != 1 {
		t.Fatal("live Plus must survive")
	}
	if countInstrs(f, func(in *wir.Instr) bool { return in.Callee == "Sin" }) != 0 {
		t.Fatal("dead Sin must be removed")
	}
}

func TestDCEKeepsEffects(t *testing.T) {
	mod := buildTWIR(t, `Function[{Typed[v, "Tensor"["Real64", 1]]},
		Module[{w = v}, w[[1]] = 2.; 0]]`)
	f := mod.Main()
	DCE(f)
	if countInstrs(f, func(in *wir.Instr) bool { return in.Callee == "Native`SetPart" }) != 1 {
		t.Fatal("mutating SetPart must not be eliminated")
	}
}

func TestConstantFolding(t *testing.T) {
	mod := buildTWIR(t, `Function[{Typed[x, "Real64"]}, x + (2.*3. + 4.)]`)
	f := mod.Main()
	for round := 0; round < 3; round++ {
		FoldConstants(f)
		DCE(f)
	}
	calls := countInstrs(f, func(in *wir.Instr) bool { return in.Op == wir.OpCall })
	// Only the final x + 10. survives.
	if calls != 1 {
		t.Fatalf("after folding want 1 call, got %d:\n%s", calls, f.String())
	}
	if !strings.Contains(f.String(), "10.") {
		t.Fatalf("folded constant missing:\n%s", f.String())
	}
}

func TestFoldingRespectsOverflow(t *testing.T) {
	// 2^62 * 4 overflows int64: the fold must leave it for the runtime's
	// checked arithmetic (soft failure, F2).
	mod := buildTWIR(t, `Function[{Typed[x, "MachineInteger"]},
		x + 4611686018427387904*4]`)
	f := mod.Main()
	FoldConstants(f)
	if countInstrs(f, func(in *wir.Instr) bool { return in.Callee == "Times" }) != 1 {
		t.Fatal("overflowing constant multiply must not fold")
	}
}

func TestDeadBranchDeletion(t *testing.T) {
	// A statically-false condition after folding: SCCP-style dead-branch
	// deletion removes the untaken side.
	mod := buildTWIR(t, `Function[{Typed[x, "Real64"]},
		If[1. > 2., Sin[x], Cos[x]]]`)
	f := mod.Main()
	for round := 0; round < 3; round++ {
		FoldConstants(f)
		SimplifyBranches(f)
		RemoveUnreachable(mod)
		DCE(f)
	}
	if countInstrs(f, func(in *wir.Instr) bool { return in.Callee == "Sin" }) != 0 {
		t.Fatalf("dead branch must be deleted:\n%s", f.String())
	}
	if countInstrs(f, func(in *wir.Instr) bool { return in.Callee == "Cos" }) != 1 {
		t.Fatalf("live branch must survive:\n%s", f.String())
	}
	if err := mod.Lint(); err != nil {
		t.Fatal(err)
	}
}

func TestCSE(t *testing.T) {
	mod := buildTWIR(t, `Function[{Typed[x, "Real64"]},
		Sin[x]*Sin[x] + Sin[x]]`)
	f := mod.Main()
	if countInstrs(f, func(in *wir.Instr) bool { return in.Callee == "Sin" }) != 3 {
		t.Fatalf("expected 3 Sin calls before CSE:\n%s", f.String())
	}
	if !CSE(f) {
		t.Fatal("CSE should deduplicate Sin[x]")
	}
	if got := countInstrs(f, func(in *wir.Instr) bool { return in.Callee == "Sin" }); got != 1 {
		t.Fatalf("after CSE want 1 Sin, got %d:\n%s", got, f.String())
	}
	if err := mod.Lint(); err != nil {
		t.Fatal(err)
	}
}

func TestCSERespectsDominance(t *testing.T) {
	// Sin[x] in both branches of an If: neither dominates the other, so no
	// naive dedup across them (hoisting is a different pass).
	mod := buildTWIR(t, `Function[{Typed[x, "Real64"], Typed[p, "Boolean"]},
		If[p, Sin[x] + 1., Sin[x] + 2.]]`)
	f := mod.Main()
	CSE(f)
	if got := countInstrs(f, func(in *wir.Instr) bool { return in.Callee == "Sin" }); got != 2 {
		t.Fatalf("cross-branch CSE is unsound; want 2 Sin, got %d", got)
	}
}

func TestCSEDoesNotMergeRandom(t *testing.T) {
	mod := buildTWIR(t, `Function[{Typed[x, "Real64"]},
		RandomReal[{0., 1.}] + RandomReal[{0., 1.}]]`)
	f := mod.Main()
	CSE(f)
	if got := countInstrs(f, func(in *wir.Instr) bool {
		return in.Callee == "Native`RandomRealRange"
	}); got != 2 {
		t.Fatalf("random calls must not merge; got %d", got)
	}
}

func TestInlinePolicy(t *testing.T) {
	src := `Function[{Typed[v, "Tensor"["Real64", 1]]},
		Map[Function[{x}, x*2.], v]]`
	for _, policy := range []string{"auto", "none"} {
		mod := buildTWIR(t, src)
		ResolveIndirectCalls(mod)
		Inline(mod, policy)
		indirectOrDirect := countInstrs(mod.Main(), func(in *wir.Instr) bool {
			return in.Op == wir.OpCallIndirect || (in.Op == wir.OpCall && in.ResolvedFn != nil)
		})
		if policy == "auto" && indirectOrDirect != 0 {
			t.Fatalf("auto inlining should remove the lambda call, %d remain", indirectOrDirect)
		}
		if policy == "none" && indirectOrDirect == 0 {
			t.Fatal("policy none must keep the call")
		}
		if err := mod.Lint(); err != nil {
			t.Fatalf("%s: %v", policy, err)
		}
	}
}

func TestCopyInsertionOnAlias(t *testing.T) {
	// w = v (same SSA value); mutation with v still live needs a copy.
	mod := buildTWIR(t, `Function[{Typed[v, "Tensor"["Real64", 1]]},
		Module[{w = v}, w[[1]] = 9.; w[[1]] + v[[1]]]]`)
	InsertCopies(mod, DefaultOptions())
	if countInstrs(mod.Main(), func(in *wir.Instr) bool { return in.Callee == "Native`Copy" }) != 1 {
		t.Fatalf("aliased mutation needs a copy:\n%s", mod.Main().String())
	}
}

func TestCopyElisionOnDeadAlias(t *testing.T) {
	// The tensor value dies at the SetPart (rebinding), so no copy.
	mod := buildTWIR(t, `Function[{Typed[v, "Tensor"["Real64", 1]]},
		Module[{w = v}, w[[1]] = 9.; w]]`)
	InsertCopies(mod, DefaultOptions())
	if countInstrs(mod.Main(), func(in *wir.Instr) bool { return in.Callee == "Native`Copy" }) != 0 {
		t.Fatalf("no-alias mutation must not copy:\n%s", mod.Main().String())
	}
}

func TestRefCountInsertion(t *testing.T) {
	mod := buildTWIR(t, `Function[{Typed[n, "MachineInteger"]},
		Table[i, {i, 1, n}]]`)
	tenv := types.Builtin()
	InsertRefCounts(mod, tenv)
	acquires := countInstrs(mod.Main(), func(in *wir.Instr) bool { return in.Native == "memory_acquire" })
	if acquires == 0 {
		t.Fatalf("managed tensor needs a MemoryAcquire:\n%s", mod.Main().String())
	}
	if err := mod.Lint(); err != nil {
		t.Fatal(err)
	}
}

func TestLiveness(t *testing.T) {
	mod := buildTWIR(t, `Function[{Typed[n, "MachineInteger"]},
		Module[{s = 0, i = 1}, While[i <= n, s = s + i; i = i + 1]; s]]`)
	f := mod.Main()
	lv := ComputeLiveness(f)
	// The parameter n is live into the loop header (used by the compare).
	var head *wir.Block
	for _, b := range f.Blocks {
		if b.Label == "while_head" {
			head = b
		}
	}
	nParam := f.Params[0]
	if !lv.LiveIn[head][nParam] {
		t.Fatal("n must be live into the loop header")
	}
	// Loop-carried phis are not live-in to their own block as uses.
	for _, phi := range head.Phis {
		if lv.LiveIn[head][phi] {
			t.Fatalf("phi %s must not be live-in to its defining block", phi.Name())
		}
	}
}

func TestFullPipelineLint(t *testing.T) {
	srcs := []string{
		`Function[{Typed[n, "MachineInteger"]}, NestList[# + 1 &, 0, n]]`,
		`Function[{Typed[v, "Tensor"["Real64", 1]]}, Fold[Function[{a, b}, a + b], 0., v]]`,
		`Function[{Typed[x, "Real64"]}, If[x > 0., Sin[x], Cos[x]]*2.]`,
	}
	for _, src := range srcs {
		mod := buildTWIR(t, src)
		if err := Run(mod, types.Builtin(), DefaultOptions()); err != nil {
			t.Fatalf("%s: %v", src, err)
		}
	}
}

func TestBlockFusion(t *testing.T) {
	// Inlining a straight-line callee leaves jump chains; fusion collapses
	// them back into one block.
	mod := buildTWIR(t, `Function[{Typed[v, "Tensor"["Real64", 1]]},
		Map[Function[{x}, x + 1.], v]]`)
	ResolveIndirectCalls(mod)
	Inline(mod, "all")
	before := len(mod.Main().Blocks)
	RemoveUnreachable(mod)
	if !FuseBlocks(mod) {
		t.Fatal("fusion should fire after inlining")
	}
	after := len(mod.Main().Blocks)
	if after >= before {
		t.Fatalf("fusion did not reduce blocks: %d -> %d", before, after)
	}
	if err := mod.Lint(); err != nil {
		t.Fatalf("fusion broke SSA: %v\n%s", err, mod.Main().String())
	}
}

func TestAbortInhibitBlocksSkipped(t *testing.T) {
	mod := buildTWIR(t, "Function[{Typed[n, \"MachineInteger\"]},\n"+
		"Native`AbortInhibit[Module[{i = 0}, While[i < n, i = i + 1]; i]]]")
	InsertAbortChecks(mod)
	f := mod.Main()
	checks := countInstrs(f, func(in *wir.Instr) bool { return in.Op == wir.OpAbortCheck })
	if checks != 1 { // prologue only; the inhibited loop header is skipped
		t.Fatalf("abort checks = %d, want 1:\n%s", checks, f.String())
	}
}
