// Loop optimisations over TWIR (paper §4.5 lists loop-invariant code
// motion and strength reduction among the TWIR passes). Natural loops are
// recovered from back edges on the dominator tree; each optimised loop gets
// a preheader block so hoisted code runs exactly once before entry.
//
// Exception discipline: compiled integer arithmetic is overflow-checked and
// throws (soft interpreter fallback, F2), so LICM only hoists natives that
// can never throw — a hoisted instruction executes even when the loop body
// would not (trip count 0). Strength reduction keeps the checked ops for
// the derived induction variable; a spurious overflow at most shifts *when*
// the fallback triggers, never the final value, because the interpreter
// re-evaluates from the original (copy-protected) arguments.
package passes

import (
	"wolfc/internal/expr"
	"wolfc/internal/types"
	"wolfc/internal/wir"
)

// Loop is one natural loop: the back-edge target plus every block that can
// reach a back edge without leaving the header's dominance region.
type Loop struct {
	Header *wir.Block
	Body   map[*wir.Block]bool // includes Header
}

// FindLoops recovers the natural loops of fn from its back edges. Loops
// sharing a header are merged (standard natural-loop construction).
func FindLoops(fn *wir.Function, dom *Dominators) []*Loop {
	byHeader := map[*wir.Block]*Loop{}
	var order []*wir.Block
	for _, b := range fn.Blocks {
		if !dom.Reachable(b) {
			continue
		}
		for _, s := range b.Succs() {
			if !dom.Dominates(s, b) {
				continue
			}
			l := byHeader[s]
			if l == nil {
				l = &Loop{Header: s, Body: map[*wir.Block]bool{s: true}}
				byHeader[s] = l
				order = append(order, s)
			}
			// Walk predecessors backwards from the latch to the header.
			stack := []*wir.Block{b}
			for len(stack) > 0 {
				n := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				if l.Body[n] {
					continue
				}
				l.Body[n] = true
				stack = append(stack, n.Preds...)
			}
		}
	}
	loops := make([]*Loop, 0, len(order))
	for _, h := range order {
		loops = append(loops, byHeader[h])
	}
	return loops
}

// insertPreheader gives the loop a dedicated preheader: every entry edge is
// redirected through a fresh block that branches to the header, so hoisted
// instructions have a place that runs once per loop entry. Returns nil when
// the header is the function entry (no edge to redirect).
func insertPreheader(f *wir.Function, l *Loop) *wir.Block {
	header := l.Header
	if header == f.Entry() {
		return nil
	}
	var insideIdx, outsideIdx []int
	for i, p := range header.Preds {
		if l.Body[p] {
			insideIdx = append(insideIdx, i)
		} else {
			outsideIdx = append(outsideIdx, i)
		}
	}
	if len(outsideIdx) == 0 {
		return nil
	}
	pre := &wir.Block{Label: header.Label + "_pre", Fn: f, AbortInhibit: header.AbortInhibit}
	// Fresh IDs are handed out manually: nextID only sees blocks already
	// spliced into the function, and the preheader is inserted last.
	id := nextID(f)
	// Rewire each header phi: the outside operands merge in the preheader
	// (through a preheader phi when there is more than one entry edge).
	for _, phi := range header.Phis {
		var entry wir.Value
		if len(outsideIdx) == 1 {
			entry = phi.Args[outsideIdx[0]]
		} else {
			prePhi := &wir.Instr{IDNum: id, Op: wir.OpPhi, Ty: phi.Ty, Block: pre}
			id++
			for _, oi := range outsideIdx {
				prePhi.Args = append(prePhi.Args, phi.Args[oi])
			}
			pre.Phis = append(pre.Phis, prePhi)
			entry = prePhi
		}
		newArgs := []wir.Value{entry}
		for _, ii := range insideIdx {
			newArgs = append(newArgs, phi.Args[ii])
		}
		phi.Args = newArgs
	}
	pre.Instrs = []*wir.Instr{{
		IDNum: id, Op: wir.OpBranch, Targets: []*wir.Block{header}, Block: pre,
	}}
	newPreds := []*wir.Block{pre}
	for _, ii := range insideIdx {
		newPreds = append(newPreds, header.Preds[ii])
	}
	for _, oi := range outsideIdx {
		p := header.Preds[oi]
		pre.Preds = append(pre.Preds, p)
		if t := p.Term(); t != nil {
			for ti, tgt := range t.Targets {
				if tgt == header {
					t.Targets[ti] = pre
				}
			}
		}
	}
	header.Preds = newPreds
	// Place the preheader right before the header and renumber.
	for i, b := range f.Blocks {
		if b == header {
			f.Blocks = append(f.Blocks[:i], append([]*wir.Block{pre}, f.Blocks[i:]...)...)
			break
		}
	}
	for i, b := range f.Blocks {
		b.IDNum = i
	}
	return pre
}

// nativeName mirrors codegen's native resolution: the Native field when a
// pass filled it, else the overload chosen by inference.
func nativeName(in *wir.Instr) string {
	if in.Native != "" {
		return in.Native
	}
	if d, ok := in.Prop("overload"); ok {
		return d.(*types.FuncDef).Native
	}
	return ""
}

// hoistableNative reports whether a native is pure *and can never throw*,
// making it safe to execute speculatively in a preheader. Checked integer
// arithmetic (overflow), part access (range), division/mod of integers
// (zero divide), and anything effectful or engine-backed stay put.
func hoistableNative(native string) bool {
	switch native {
	case "binary_divide", "divide_int_real",
		"mixed_ri_plus", "mixed_ir_plus", "mixed_ri_times", "mixed_ir_times",
		"mixed_ri_subtract", "mixed_ir_subtract", "mixed_ri_divide", "mixed_ir_divide",
		"mixed_cr_plus", "mixed_rc_plus", "mixed_cr_times", "mixed_rc_times",
		"mixed_cr_subtract", "mixed_rc_subtract",
		"power_real", "power_real_int", "mod_real",
		"cmp_less", "cmp_lessequal", "cmp_greater", "cmp_greaterequal",
		"cmp_equal", "cmp_unequal",
		"mixed_ri_cmp_less", "mixed_ri_cmp_lessequal", "mixed_ri_cmp_greater",
		"mixed_ri_cmp_greaterequal", "mixed_ri_cmp_equal", "mixed_ri_cmp_unequal",
		"mixed_ir_cmp_less", "mixed_ir_cmp_lessequal", "mixed_ir_cmp_greater",
		"mixed_ir_cmp_greaterequal", "mixed_ir_cmp_equal", "mixed_ir_cmp_unequal",
		"sameq_bool", "not", "and", "or", "min", "max",
		"math_sin", "math_cos", "math_tan", "math_exp", "math_log",
		"math_sqrt", "math_arctan", "math_arcsin", "math_arccos",
		"math_sin_int", "math_cos_int", "math_tan_int", "math_exp_int", "math_log_int",
		"math_sqrt_int", "math_arctan_int", "math_arcsin_int", "math_arccos_int",
		"math_atan2", "floor_real", "ceiling_real", "round_real",
		"identity_int", "to_real64", "evenq", "oddq",
		"bitand", "bitor", "bitxor", "bitshiftleft", "bitshiftright",
		"abs_real", "abs_complex", "sign_int", "sign_real",
		"make_complex", "re", "im", "cast", "tensor_length":
		return true
	}
	// Real (unchecked) basic arithmetic never throws; the integer overloads
	// of the same natives do, so gate on the result type.
	switch native {
	case "binary_plus", "binary_times", "binary_subtract", "unary_minus":
		return false // resolved per instruction below (needs the type)
	}
	return false
}

// hoistable reports whether in may be moved to the loop preheader.
func hoistable(in *wir.Instr) bool {
	if in.Op != wir.OpCall || in.ResolvedFn != nil || in.IsTerminator() || in.Ty == nil {
		return false
	}
	if d, ok := in.Prop("overload"); ok {
		if d.(*types.FuncDef).Impl != nil {
			return false
		}
	}
	n := nativeName(in)
	if n == "" {
		return false
	}
	switch n {
	case "binary_plus", "binary_times", "binary_subtract", "unary_minus":
		// Real and complex arithmetic is unchecked; integer throws on
		// overflow and must not run speculatively.
		if in.Ty == types.TReal64 || in.Ty == types.TComplex {
			return true
		}
		return false
	case "tensor_length":
		// Length is immutable per tensor value, so loop-body stores cannot
		// change it — but guard against the dead Null placeholder constant
		// (a typed nil tensor) which would fault when executed.
		if c, ok := in.Args[0].(*wir.Const); ok && expr.SameQ(c.Expr, expr.SymNull) {
			return false
		}
		return true
	}
	return hoistableNative(n)
}

// registerPreheader keeps sibling loop bodies consistent: a preheader of a
// nested loop lies inside every enclosing loop, so enclosing Body sets must
// absorb it or later invariance checks would misclassify hoisted values.
func registerPreheader(loops []*Loop, l *Loop, pre *wir.Block) {
	if pre == nil {
		return
	}
	for _, m := range loops {
		if m != l && m.Body[l.Header] {
			m.Body[pre] = true
		}
	}
}

// bodyBlocks returns the loop body in function block order (deterministic
// compile output; map iteration order must not leak into the IR).
func bodyBlocks(f *wir.Function, l *Loop) []*wir.Block {
	var bs []*wir.Block
	for _, b := range f.Blocks {
		if l.Body[b] {
			bs = append(bs, b)
		}
	}
	return bs
}

// LICM hoists loop-invariant, no-throw pure instructions into loop
// preheaders. Reports whether anything changed.
func LICM(f *wir.Function) bool {
	dom := ComputeDominators(f)
	loops := FindLoops(f, dom)
	changed := false
	for _, l := range loops {
		var pre *wir.Block
		preTried := false
		getPre := func() *wir.Block {
			if !preTried {
				preTried = true
				pre = insertPreheader(f, l)
				registerPreheader(loops, l, pre)
			}
			return pre
		}
		// An operand is invariant when defined outside the loop body
		// (constants, params, hoisted or pre-loop instructions).
		invariant := func(v wir.Value) bool {
			if x, ok := v.(*wir.Instr); ok {
				return !l.Body[x.Block]
			}
			return true // Const, Param, FuncRef
		}
		for again := true; again; {
			again = false
			for _, b := range bodyBlocks(f, l) {
				for i := 0; i < len(b.Instrs); i++ {
					in := b.Instrs[i]
					if !hoistable(in) {
						continue
					}
					inv := true
					for _, a := range in.Args {
						if !invariant(a) {
							inv = false
							break
						}
					}
					if !inv {
						continue
					}
					p := getPre()
					if p == nil {
						break // header is the entry block; cannot hoist
					}
					// Move before the preheader terminator; dependency order
					// is preserved because an instruction hoists only after
					// its loop-defined operands already did.
					b.Instrs = append(b.Instrs[:i], b.Instrs[i+1:]...)
					i--
					term := p.Instrs[len(p.Instrs)-1]
					p.Instrs = append(p.Instrs[:len(p.Instrs)-1], in, term)
					in.Block = p
					changed = true
					again = true
				}
			}
		}
	}
	return changed
}

// StrengthReduce rewrites induction-variable multiplies i*k (k constant,
// int64) into an additive derived induction variable j with j ≡ i*k,
// stepped by c*k alongside i's own increment (§4.5 strength reduction).
// The derived update uses the same checked arithmetic as the multiply it
// replaces, so overflow still unwinds into the interpreter fallback.
func StrengthReduce(f *wir.Function) bool {
	dom := ComputeDominators(f)
	loops := FindLoops(f, dom)
	changed := false
	for _, l := range loops {
		header := l.Header
		if header == f.Entry() || len(header.Preds) != 2 {
			continue
		}
		// Fast path: no candidate multiply, leave the loop untouched.
		hasTimes := false
		for _, b := range bodyBlocks(f, l) {
			for _, in := range b.Instrs {
				if nativeName(in) == "binary_times" && in.Ty == types.TInt64 {
					hasTimes = true
				}
			}
		}
		if !hasTimes {
			continue
		}
		latchIdx, entryIdx := -1, -1
		for i, p := range header.Preds {
			if l.Body[p] {
				latchIdx = i
			} else {
				entryIdx = i
			}
		}
		if latchIdx == -1 || entryIdx == -1 {
			continue
		}
		// The entry value of a derived IV may need computing once before the
		// loop; that needs a dedicated preheader (an entry predecessor whose
		// only successor is the header) so it cannot run on paths that skip
		// the loop.
		if len(header.Preds[entryIdx].Succs()) != 1 {
			pre := insertPreheader(f, l)
			if pre == nil {
				continue
			}
			registerPreheader(loops, l, pre)
			entryIdx, latchIdx = 0, 1
			if l.Body[header.Preds[0]] {
				entryIdx, latchIdx = 1, 0
			}
		}
		for _, iv := range header.Phis {
			if iv.Ty != types.TInt64 || len(iv.Args) != 2 {
				continue
			}
			step, ok := iv.Args[latchIdx].(*wir.Instr)
			if !ok || !l.Body[step.Block] || nativeName(step) != "binary_plus" || step.Ty != types.TInt64 {
				continue
			}
			c, ok := addendOf(step, iv)
			if !ok {
				continue
			}
			derived := map[int64]*wir.Instr{} // multiplier k -> derived phi
			for _, b := range bodyBlocks(f, l) {
				for _, in := range b.Instrs {
					if nativeName(in) != "binary_times" || in.Ty != types.TInt64 || in == step {
						continue
					}
					k, ok := addendOf(in, iv)
					if !ok || k == 0 {
						continue
					}
					ck, ok := mulNoOverflow(c, k)
					if !ok {
						continue
					}
					jphi := derived[k]
					if jphi == nil {
						jphi = buildDerivedIV(f, l, iv, step, k, ck, entryIdx, latchIdx)
						if jphi == nil {
							continue
						}
						derived[k] = jphi
					}
					replaceAllUses(f, in, jphi)
					changed = true
				}
			}
		}
	}
	return changed
}

// addendOf matches in = native(iv, Const) | native(Const, iv) and returns
// the constant.
func addendOf(in *wir.Instr, iv wir.Value) (int64, bool) {
	if len(in.Args) != 2 {
		return 0, false
	}
	for i := 0; i < 2; i++ {
		if in.Args[i] == iv {
			if v, ok := constValue(in.Args[1-i]); ok {
				if n, isInt := v.(int64); isInt {
					return n, true
				}
			}
		}
	}
	return 0, false
}

func mulNoOverflow(a, b int64) (int64, bool) {
	if a == 0 || b == 0 {
		return 0, true
	}
	r := a * b
	if r/b != a {
		return 0, false
	}
	return r, true
}

// buildDerivedIV creates the phi j = φ(entry: i0*k, latch: j + c*k) and the
// latch update, returning the phi (nil if the entry value cannot be built).
func buildDerivedIV(f *wir.Function, l *Loop, iv, step *wir.Instr, k, ck int64,
	entryIdx, latchIdx int) *wir.Instr {
	header := l.Header
	intTy := types.TInt64
	id := nextID(f) // handed out manually; see insertPreheader
	mkConst := func(v int64) *wir.Const {
		return &wir.Const{Expr: expr.FromInt64(v), Ty: intTy}
	}
	var entry wir.Value
	if v, ok := constValue(iv.Args[entryIdx]); ok {
		n, isInt := v.(int64)
		if !isInt {
			return nil
		}
		j0, ok := mulNoOverflow(n, k)
		if !ok {
			return nil
		}
		entry = mkConst(j0)
	} else {
		// Compute i0*k once in the preheader (the caller guaranteed the
		// entry predecessor's only successor is the header). MulI64 may
		// throw here on paths the multiply never ran — that only turns a
		// would-be in-loop overflow into an earlier interpreter fallback
		// with the same final value.
		pre := header.Preds[entryIdx]
		mul := &wir.Instr{
			IDNum: id, Op: wir.OpCall, Callee: "Native`Times",
			Native: "binary_times", Ty: intTy, Block: pre,
			Args: []wir.Value{iv.Args[entryIdx], mkConst(k)},
		}
		id++
		term := pre.Instrs[len(pre.Instrs)-1]
		pre.Instrs = append(pre.Instrs[:len(pre.Instrs)-1], mul, term)
		entry = mul
	}
	jphi := &wir.Instr{IDNum: id, Op: wir.OpPhi, Ty: intTy, Block: header}
	jnext := &wir.Instr{
		IDNum: id + 1, Op: wir.OpCall, Callee: "Native`Plus",
		Native: "binary_plus", Ty: intTy, Block: step.Block,
		Args: []wir.Value{jphi, mkConst(ck)},
	}
	jphi.Args = make([]wir.Value, 2)
	jphi.Args[entryIdx] = entry
	jphi.Args[latchIdx] = jnext
	// Insert the update right after i's own increment so it dominates the
	// back edge exactly as the increment does.
	for i, in := range step.Block.Instrs {
		if in == step {
			rest := append([]*wir.Instr{jnext}, step.Block.Instrs[i+1:]...)
			step.Block.Instrs = append(step.Block.Instrs[:i+1], rest...)
			break
		}
	}
	header.Phis = append(header.Phis, jphi)
	return jphi
}

// LoopOptimize runs LICM and strength reduction over every function until a
// fixed point (bounded). Reports whether anything changed.
func LoopOptimize(mod *wir.Module) bool {
	changed := false
	for _, f := range mod.Funcs {
		for round := 0; round < 4; round++ {
			any := false
			if LICM(f) {
				any = true
			}
			if StrengthReduce(f) {
				any = true
			}
			if !any {
				break
			}
			changed = true
		}
	}
	return changed
}
