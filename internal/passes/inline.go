package passes

import (
	"wolfc/internal/wir"
)

// Inline splices resolved direct calls into their callers (§4.5: "A
// function is inlined at this stage if it has been marked by users to be
// forcibly inlined"; §6 attributes much of the new compiler's advantage on
// tight loops to inlining). policy is "all" or "auto" (size-bounded).
// Reports whether any call was inlined.
func Inline(mod *wir.Module, policy string) bool {
	did := false
	if policy == "none" {
		return false
	}
	const (
		maxBlocks = 12
		maxInstrs = 80
	)
	const maxPerFunction = 200 // explosion guard
	for _, f := range mod.Funcs {
		budget := maxPerFunction
		for again := true; again && budget > 0; {
			again = false
		scan:
			for _, b := range f.Blocks {
				for ii, in := range b.Instrs {
					if in.Op != wir.OpCall || in.ResolvedFn == nil {
						continue
					}
					callee := in.ResolvedFn
					if callee == f || callsSelf(callee) {
						continue
					}
					if policy == "auto" && !smallEnough(callee, maxBlocks, maxInstrs) {
						if forced, ok := callee.Props["inline"]; !ok || forced != true {
							continue
						}
					}
					if len(in.Args) != len(callee.Params) {
						continue // arity mismatch would be a resolution bug
					}
					inlineAt(f, b, ii, in, callee)
					did = true
					budget--
					again = true
					break scan // block layout changed; rescan
				}
			}
		}
	}
	return did
}

func callsSelf(f *wir.Function) bool {
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op == wir.OpCall && in.ResolvedFn == f {
				return true
			}
		}
	}
	return false
}

func smallEnough(f *wir.Function, maxBlocks, maxInstrs int) bool {
	if len(f.Blocks) > maxBlocks {
		return false
	}
	n := 0
	for _, b := range f.Blocks {
		n += len(b.Instrs) + len(b.Phis)
	}
	return n <= maxInstrs
}

// inlineAt splices callee at instruction index idx of block b (the call
// instruction itself), rewriting the caller CFG:
//
//	b:  [head instrs] [call] [tail instrs] [term]
//
// becomes
//
//	b:    [head instrs] Jump callee-entry'
//	...cloned callee blocks, Returns become Jumps to cont...
//	cont: phi(returned values) [tail instrs] [term]
func inlineAt(caller *wir.Function, b *wir.Block, idx int, call *wir.Instr, callee *wir.Function) {
	cont := caller.NewBlock(b.Label + "_inl_cont")
	// Move the tail into cont.
	tail := append([]*wir.Instr{}, b.Instrs[idx+1:]...)
	b.Instrs = b.Instrs[:idx]
	for _, t := range tail {
		t.Block = cont
	}
	cont.Instrs = tail
	// Successors' pred lists must now point at cont instead of b.
	if term := cont.Term(); term != nil {
		for _, s := range term.Targets {
			for i, p := range s.Preds {
				if p == b {
					s.Preds[i] = cont
				}
			}
		}
	}

	// Clone the callee.
	blockMap := map[*wir.Block]*wir.Block{}
	valueMap := map[wir.Value]wir.Value{}
	for i, p := range callee.Params {
		valueMap[p] = call.Args[i]
	}
	for _, cb := range callee.Blocks {
		nb := caller.NewBlock(callee.Name + "_" + cb.Label)
		nb.AbortInhibit = cb.AbortInhibit
		blockMap[cb] = nb
	}
	remap := func(v wir.Value) wir.Value {
		if nv, ok := valueMap[v]; ok {
			return nv
		}
		if c, ok := v.(*wir.Const); ok {
			// Clone constants so later type/pass mutations stay local.
			return &wir.Const{Expr: c.Expr, Ty: c.Ty}
		}
		return v
	}
	type pendingRet struct {
		from *wir.Block
		val  wir.Value
	}
	var rets []pendingRet

	cloneInstr := func(in *wir.Instr, nb *wir.Block) *wir.Instr {
		ni := &wir.Instr{
			IDNum:      nextID(caller),
			Op:         in.Op,
			Callee:     in.Callee,
			Native:     in.Native,
			ResolvedFn: in.ResolvedFn,
			Ty:         in.Ty,
			Block:      nb,
			Targets:    append([]*wir.Block{}, in.Targets...),
		}
		for k, v := range in.Props {
			ni.SetProp(k, v)
		}
		ni.Args = make([]wir.Value, len(in.Args))
		for i, a := range in.Args {
			ni.Args[i] = a // remapped in a second pass
		}
		valueMap[in] = ni
		return ni
	}

	// First pass: clone structure.
	for _, cb := range callee.Blocks {
		nb := blockMap[cb]
		for _, phi := range cb.Phis {
			np := cloneInstr(phi, nb)
			nb.Phis = append(nb.Phis, np)
		}
		for _, in := range cb.Instrs {
			ni := cloneInstr(in, nb)
			nb.Instrs = append(nb.Instrs, ni)
		}
		for _, p := range cb.Preds {
			nb.Preds = append(nb.Preds, blockMap[p])
		}
	}
	// Second pass: remap operands and targets; rewrite returns.
	for _, cb := range callee.Blocks {
		nb := blockMap[cb]
		for _, phi := range nb.Phis {
			for i, a := range phi.Args {
				phi.Args[i] = remap(a)
			}
		}
		for _, in := range nb.Instrs {
			for i, a := range in.Args {
				in.Args[i] = remap(a)
			}
			if len(in.Targets) > 0 {
				nt := make([]*wir.Block, len(in.Targets))
				for i, t := range in.Targets {
					nt[i] = blockMap[t]
				}
				in.Targets = nt
			}
		}
		if term := nb.Term(); term != nil && term.Op == wir.OpReturn {
			var rv wir.Value
			if len(term.Args) == 1 {
				rv = term.Args[0]
			}
			term.Op = wir.OpBranch
			term.Args = nil
			term.Targets = []*wir.Block{cont}
			cont.Preds = append(cont.Preds, nb)
			rets = append(rets, pendingRet{from: nb, val: rv})
		}
	}

	// Jump from the head into the cloned entry.
	entryClone := blockMap[callee.Entry()]
	jmp := &wir.Instr{IDNum: nextID(caller), Op: wir.OpBranch, Targets: []*wir.Block{entryClone}, Block: b}
	b.Instrs = append(b.Instrs, jmp)
	entryClone.Preds = append(entryClone.Preds, b)

	// Replace the call's value.
	var result wir.Value
	switch len(rets) {
	case 0:
		result = &wir.Const{Expr: exprNull(), Ty: call.Ty}
	case 1:
		result = rets[0].val
	default:
		phi := &wir.Instr{IDNum: nextID(caller), Op: wir.OpPhi, Ty: call.Ty, Block: cont}
		for _, r := range rets {
			v := r.val
			if v == nil {
				v = &wir.Const{Expr: exprNull(), Ty: call.Ty}
			}
			phi.Args = append(phi.Args, v)
		}
		cont.Phis = append(cont.Phis, phi)
		result = phi
	}
	if result == nil {
		result = &wir.Const{Expr: exprNull(), Ty: call.Ty}
	}
	replaceAllUses(caller, call, result)
}

func nextID(f *wir.Function) int {
	max := 0
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.IDNum > max {
				max = in.IDNum
			}
		}
		for _, p := range b.Phis {
			if p.IDNum > max {
				max = p.IDNum
			}
		}
	}
	return max + 1
}
