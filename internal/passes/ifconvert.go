package passes

import (
	"wolfc/internal/expr"
	"wolfc/internal/types"
	"wolfc/internal/wir"
)

// FlattenCond performs speculative boolean if-conversion on the diamonds
// that short-circuit And/Or lowering produces:
//
//	P: ... Branch c ? T : E
//	T: <pure, never-throwing instrs>; Jump J
//	E: Jump J
//	J: r = Phi [v, T] [False, E]; ...
//
// When one arm is empty and feeds the phi a boolean constant, the diamond
// computes a boolean connective: the compute arm is speculated into P and
// the phi is replaced by an eager and/or (with a not where the constant
// demands it), leaving P to jump straight to J. FuseBlocks then merges the
// seam, so a loop condition like i < n && x*x < 4. collapses into a single
// header block the backend can fuse into one superinstruction.
//
// Only applies when every instruction in the compute arm is hoistable
// (pure and never throwing — the same predicate LICM uses to license
// speculation), both arms have P as their only predecessor, and J joins
// exactly those two arms.
func FlattenCond(f *wir.Function) bool {
	for _, p := range f.Blocks {
		t := p.Term()
		if t == nil || t.Op != wir.OpCondBranch {
			continue
		}
		then, els := t.Targets[0], t.Targets[1]
		if then == els || then == p || els == p {
			continue
		}
		j := soleJump(then)
		if j == nil || j != soleJump(els) || len(j.Preds) != 2 || j == p {
			continue
		}
		// One arm must be empty; the other is the compute arm.
		var comp, empty *wir.Block
		switch {
		case len(els.Instrs) == 1:
			comp, empty = then, els
		case len(then.Instrs) == 1:
			comp, empty = els, then
		default:
			continue
		}
		if len(comp.Phis) != 0 || len(empty.Phis) != 0 ||
			!solePred(comp, p) || !solePred(empty, p) {
			continue
		}
		speculatable := true
		for _, in := range comp.Instrs[:len(comp.Instrs)-1] {
			if !hoistable(in) {
				speculatable = false
				break
			}
		}
		if !speculatable {
			continue
		}
		compIdx, emptyIdx := 0, 1
		if j.Preds[0] == empty {
			compIdx, emptyIdx = 1, 0
		}
		// Every phi in J must see a boolean constant on the empty edge.
		type rewrite struct {
			phi    *wir.Instr
			val    wir.Value // compute-edge value
			konst  bool      // empty-edge constant
			onTrue bool      // the empty edge is the then (c true) edge
		}
		var rws []rewrite
		ok := true
		for _, phi := range j.Phis {
			if !types.Equal(phi.Ty, types.TBool) {
				ok = false
				break
			}
			c, isConst := phi.Args[emptyIdx].(*wir.Const)
			if !isConst {
				ok = false
				break
			}
			v, isBool := expr.TruthValue(c.Expr)
			if !isBool {
				ok = false
				break
			}
			rws = append(rws, rewrite{phi, phi.Args[compIdx], v, empty == then})
		}
		if !ok {
			continue
		}
		// Speculate the compute arm into P, ahead of its terminator.
		cond := t.Args[0]
		id := nextID(f)
		head := p.Instrs[:len(p.Instrs)-1]
		for _, in := range comp.Instrs[:len(comp.Instrs)-1] {
			in.Block = p
			head = append(head, in)
		}
		// c negated when the constant sits on an edge that makes the
		// connective read "not c": Phi[v, then][True, else] selects v when
		// c holds and True otherwise, i.e. or[not c, v].
		var notC wir.Value
		negated := func() wir.Value {
			if notC == nil {
				n := &wir.Instr{
					IDNum: id, Op: wir.OpCall, Callee: "Native`Not",
					Native: "not", Ty: types.TBool, Block: p,
					Args: []wir.Value{cond},
				}
				id++
				head = append(head, n)
				notC = n
			}
			return notC
		}
		for _, rw := range rws {
			c := cond
			native, callee := "and", "Native`And"
			switch {
			case rw.onTrue && rw.konst: // c ? True : v  =  or[c, v]
				native, callee = "or", "Native`Or"
			case rw.onTrue && !rw.konst: // c ? False : v  =  and[not c, v]
				c = negated()
			case !rw.onTrue && rw.konst: // c ? v : True  =  or[not c, v]
				native, callee = "or", "Native`Or"
				c = negated()
			}
			conn := &wir.Instr{
				IDNum: id, Op: wir.OpCall, Callee: callee,
				Native: native, Ty: types.TBool, Block: p,
				Args: []wir.Value{c, rw.val},
			}
			id++
			head = append(head, conn)
			replaceAllUses(f, rw.phi, conn)
		}
		p.Instrs = append(head, &wir.Instr{
			IDNum: id, Op: wir.OpBranch, Targets: []*wir.Block{j}, Block: p,
		})
		j.Phis = nil
		j.Preds = []*wir.Block{p}
		removeBlocks(f, comp, empty)
		return true
	}
	return false
}

// soleJump returns b's unconditional jump target when b ends in Jump.
func soleJump(b *wir.Block) *wir.Block {
	t := b.Term()
	if t == nil || t.Op != wir.OpBranch {
		return nil
	}
	return t.Targets[0]
}

func solePred(b, p *wir.Block) bool {
	return len(b.Preds) == 1 && b.Preds[0] == p
}

func removeBlocks(f *wir.Function, dead ...*wir.Block) {
	gone := map[*wir.Block]bool{}
	for _, b := range dead {
		gone[b] = true
	}
	kept := f.Blocks[:0]
	for _, b := range f.Blocks {
		if !gone[b] {
			kept = append(kept, b)
		}
	}
	f.Blocks = kept
	for i, b := range f.Blocks {
		b.IDNum = i
	}
}
