package passes

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"wolfc/internal/diag"
	"wolfc/internal/types"
	"wolfc/internal/wir"
)

// This file is the pass manager: the pipeline is data, not control flow.
// Each optimisation or lowering step is a named Pass; a Pipeline sequences
// passes and fixpoint groups of passes; a Context carries everything a pass
// may consult (type env, options) plus the instrumentation switches. The
// manager owns the fixpoint loops, per-pass wall-clock timing, changed/IR-
// size counters, the between-pass SSA verifier (verify-each mode), and the
// recover wrapper that tags internal pass panics with the offending pass's
// name. Keeping that machinery here means individual passes stay small
// functions `*wir.Module -> changed`, the nanopass shape the paper's staged
// pipeline (§4) wants.

// Context is the shared compilation context threaded through every pass.
type Context struct {
	// Env is the type environment (needed by reference-count insertion).
	Env *types.Env
	// Opts are the pipeline options the passes may consult.
	Opts Options
	// VerifyEach runs the SSA linter after every pass, so a broken pass is
	// caught at the pass that broke it rather than at codegen.
	VerifyEach bool
	// Report, when non-nil, accumulates per-pass statistics. Leaving it nil
	// keeps all timing calls off the hot path.
	Report *Report
}

// Pass is one named, self-describing unit of the pipeline. Run returns
// whether it changed the module; fixpoint groups iterate until no member
// reports a change.
type Pass struct {
	Name string
	Run  func(mod *wir.Module, ctx *Context) (changed bool, err error)
}

// PassStat accumulates one pass's observable behaviour across a compile.
type PassStat struct {
	Name string `json:"name"`
	// Runs counts invocations (fixpoint members run once per trip).
	Runs int `json:"runs"`
	// Changed counts the invocations that reported a change.
	Changed int `json:"changed"`
	// Duration is total wall-clock time across all runs.
	Duration time.Duration `json:"duration_ns"`
	// InstrsBefore/InstrsAfter are the module instruction counts around the
	// first and last run, so a pass's net effect on IR size is visible.
	InstrsBefore int `json:"instrs_before"`
	InstrsAfter  int `json:"instrs_after"`
}

// Report is the manager's instrumentation record for one pipeline run.
type Report struct {
	// Passes holds per-pass stats in first-execution order.
	Passes []*PassStat `json:"passes"`
	// Trips maps each fixpoint group to the number of trips it took.
	Trips map[string]int `json:"fixpoint_trips,omitempty"`

	byName map[string]*PassStat
}

// NewReport returns an empty instrumentation record.
func NewReport() *Report {
	return &Report{Trips: map[string]int{}, byName: map[string]*PassStat{}}
}

func (r *Report) stat(name string) *PassStat {
	if s, ok := r.byName[name]; ok {
		return s
	}
	s := &PassStat{Name: name}
	if r.byName == nil {
		r.byName = map[string]*PassStat{}
	}
	r.byName[name] = s
	r.Passes = append(r.Passes, s)
	return s
}

// ModuleSize counts instructions and phis module-wide; the manager records
// it around each pass as the IR-size counter.
func ModuleSize(mod *wir.Module) int {
	n := 0
	for _, f := range mod.Funcs {
		for _, b := range f.Blocks {
			n += len(b.Instrs) + len(b.Phis)
		}
	}
	return n
}

// unit is one pipeline element: a single pass, or a fixpoint group.
type unit struct {
	pass     Pass
	group    []Pass
	name     string // group name (for trip counts)
	maxTrips int
}

// Pipeline is an ordered sequence of passes and fixpoint groups.
type Pipeline struct {
	units []unit
}

// Add appends single passes run exactly once each.
func (p *Pipeline) Add(passes ...Pass) *Pipeline {
	for _, ps := range passes {
		p.units = append(p.units, unit{pass: ps})
	}
	return p
}

// AddFixpoint appends a group iterated until no member changes the module
// or maxTrips is reached.
func (p *Pipeline) AddFixpoint(name string, maxTrips int, passes ...Pass) *Pipeline {
	p.units = append(p.units, unit{group: passes, name: name, maxTrips: maxTrips})
	return p
}

// Run executes the pipeline. On any pass error — including a recovered
// panic and a verify-each lint failure — the returned diagnostic names the
// offending pass.
func (p *Pipeline) Run(mod *wir.Module, ctx *Context) error {
	if ctx == nil {
		ctx = &Context{Opts: DefaultOptions()}
	}
	for _, u := range p.units {
		if u.group == nil {
			if _, err := runPass(u.pass, mod, ctx); err != nil {
				return err
			}
			continue
		}
		trips := 0
		for {
			trips++
			changed := false
			for _, ps := range u.group {
				c, err := runPass(ps, mod, ctx)
				if err != nil {
					return err
				}
				changed = changed || c
			}
			if !changed || trips >= u.maxTrips {
				break
			}
		}
		if ctx.Report != nil {
			ctx.Report.Trips[u.name] += trips
		}
	}
	return nil
}

// runPass executes one pass with instrumentation, panic recovery, and the
// optional between-pass SSA verification.
func runPass(ps Pass, mod *wir.Module, ctx *Context) (changed bool, err error) {
	var stat *PassStat
	var start time.Time
	if ctx.Report != nil {
		stat = ctx.Report.stat(ps.Name)
		if stat.Runs == 0 {
			stat.InstrsBefore = ModuleSize(mod)
		}
		start = time.Now()
	}
	func() {
		// Internal invariant panics inside a pass are allowed to stay
		// panics at their source; the manager converts them into a
		// diagnostic tagged with the pass name so the failure unwinds to
		// FunctionCompile instead of killing the process.
		defer func() {
			if r := recover(); r != nil {
				err = diag.Newf(diag.PassStage, "X900",
					"internal error: %v", r).WithPass(ps.Name)
			}
		}()
		changed, err = ps.Run(mod, ctx)
	}()
	if stat != nil {
		stat.Duration += time.Since(start)
		stat.Runs++
		if changed {
			stat.Changed++
		}
		stat.InstrsAfter = ModuleSize(mod)
	}
	if err != nil {
		return changed, err
	}
	if ctx.VerifyEach {
		if lintErr := mod.Lint(); lintErr != nil {
			return changed, diag.Newf(diag.PassStage, "X901",
				"SSA verification failed after pass %s: %v", ps.Name, lintErr).WithPass(ps.Name)
		}
	}
	return changed, nil
}

// perFunc lifts a per-function pass to a module pass.
func perFunc(fn func(*wir.Function) bool) func(*wir.Module, *Context) (bool, error) {
	return func(mod *wir.Module, _ *Context) (bool, error) {
		changed := false
		for _, f := range mod.Funcs {
			if fn(f) {
				changed = true
			}
		}
		return changed, nil
	}
}

// The pass registry: every standard pass is registered by name so tools
// (wolfc -explain) and tests can enumerate and look them up.
var (
	registryMu sync.RWMutex
	registry   = map[string]Pass{}
)

// RegisterPass adds a pass to the registry; later registrations under the
// same name replace earlier ones.
func RegisterPass(p Pass) {
	registryMu.Lock()
	defer registryMu.Unlock()
	registry[p.Name] = p
}

// LookupPass retrieves a registered pass by name.
func LookupPass(name string) (Pass, bool) {
	registryMu.RLock()
	defer registryMu.RUnlock()
	p, ok := registry[name]
	return p, ok
}

// PassNames returns the sorted names of all registered passes.
func PassNames() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func init() {
	for _, p := range []Pass{
		{"resolve-indirect", func(mod *wir.Module, _ *Context) (bool, error) {
			ResolveIndirectCalls(mod)
			return false, nil
		}},
		{"inline", func(mod *wir.Module, ctx *Context) (bool, error) {
			return Inline(mod, ctx.Opts.InlinePolicy), nil
		}},
		{"fold-constants", perFunc(FoldConstants)},
		{"simplify-branches", perFunc(SimplifyBranches)},
		{"remove-unreachable", func(mod *wir.Module, _ *Context) (bool, error) {
			RemoveUnreachable(mod)
			// Reports unchanged by design: unreachable-block removal alone
			// must not keep the O1 fixpoint spinning (mirrors the original
			// hand-rolled loop, which ignored it too).
			return false, nil
		}},
		{"fuse-blocks", func(mod *wir.Module, _ *Context) (bool, error) {
			return FuseBlocks(mod), nil
		}},
		{"cse", perFunc(CSE)},
		{"dce", perFunc(DCE)},
		{"flatten-cond", perFunc(func(f *wir.Function) bool {
			flattened := false
			for FlattenCond(f) {
				flattened = true
			}
			return flattened
		})},
		{"loop-optimize", func(mod *wir.Module, _ *Context) (bool, error) {
			return LoopOptimize(mod), nil
		}},
		{"insert-copies", func(mod *wir.Module, ctx *Context) (bool, error) {
			InsertCopies(mod, ctx.Opts)
			return true, nil
		}},
		{"insert-abort-checks", func(mod *wir.Module, _ *Context) (bool, error) {
			InsertAbortChecks(mod)
			return true, nil
		}},
		{"insert-refcounts", func(mod *wir.Module, ctx *Context) (bool, error) {
			InsertRefCounts(mod, ctx.Env)
			return true, nil
		}},
	} {
		RegisterPass(p)
	}
}

// mustPass fetches a registered pass; the standard pipeline is built only
// from registered passes so tools see exactly what will run.
func mustPass(name string) Pass {
	p, ok := LookupPass(name)
	if !ok {
		panic("passes: unregistered pass " + name)
	}
	return p
}

// DefaultPipeline assembles the standard pipeline for the given options,
// preserving the staging of the original hand-rolled Run: function
// resolution, inlining, the O1 local-optimisation fixpoint, the O2 loop
// pipeline with its cleanup, then the mandatory lowering passes (copies,
// abort checks, reference counts).
func DefaultPipeline(opts Options) *Pipeline {
	pl := &Pipeline{}
	pl.Add(mustPass("resolve-indirect"))
	if opts.InlinePolicy != "none" {
		pl.Add(mustPass("inline"))
	}
	if opts.OptimizationLevel > 0 {
		pl.AddFixpoint("local-opt", 3,
			mustPass("fold-constants"),
			mustPass("simplify-branches"),
			mustPass("remove-unreachable"),
			mustPass("fuse-blocks"),
			mustPass("cse"),
			mustPass("dce"),
		)
	}
	if opts.OptimizationLevel > 1 {
		// Hoisting, strength reduction, and if-conversion leave dead
		// residue and single-edge preheader seams; the trailing fuse+DCE
		// cleans them up before codegen sees the module.
		pl.Add(mustPass("flatten-cond"))
		pl.Add(mustPass("loop-optimize"))
		pl.Add(mustPass("fuse-blocks"))
		pl.Add(mustPass("dce"))
	}
	pl.Add(mustPass("insert-copies"))
	if opts.AbortHandling {
		pl.Add(mustPass("insert-abort-checks"))
	}
	pl.Add(mustPass("insert-refcounts"))
	return pl
}

// Describe renders the pipeline's structure: one line per unit, fixpoint
// groups shown with their member passes and trip bound (wolfc -explain).
func (p *Pipeline) Describe() string {
	var b strings.Builder
	for _, u := range p.units {
		if u.group == nil {
			fmt.Fprintf(&b, "  %s\n", u.pass.Name)
			continue
		}
		fmt.Fprintf(&b, "  fixpoint %q (max %d trips):\n", u.name, u.maxTrips)
		for _, ps := range u.group {
			fmt.Fprintf(&b, "    %s\n", ps.Name)
		}
	}
	return b.String()
}

// RunPipeline applies the standard pipeline under the given context. The
// final whole-module lint always runs (independent of VerifyEach), exactly
// as the pipeline always linted before handing the module to codegen.
func RunPipeline(mod *wir.Module, ctx *Context) error {
	if err := DefaultPipeline(ctx.Opts).Run(mod, ctx); err != nil {
		return err
	}
	if err := mod.Lint(); err != nil {
		return diag.Newf(diag.PassStage, "X902",
			"internal: pass pipeline broke SSA: %v", err)
	}
	return nil
}
