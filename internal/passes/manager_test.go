package passes

import (
	"errors"
	"strings"
	"testing"

	"wolfc/internal/diag"
	"wolfc/internal/types"
	"wolfc/internal/wir"
)

const managerSrc = `Function[{Typed[n, "MachineInteger"]},
	Module[{s = 0, i = 1}, While[i <= n, s = s + i; i = i + 1]; s]]`

// TestVerifyEachNamesBrokenPass registers a deliberately broken pass that
// strips the entry block's terminator and checks that verify-each mode
// catches the damage immediately after that pass, naming it.
func TestVerifyEachNamesBrokenPass(t *testing.T) {
	mod := buildTWIR(t, managerSrc)
	broken := Pass{Name: "test-break-ssa", Run: func(mod *wir.Module, ctx *Context) (bool, error) {
		b := mod.Main().Entry()
		b.Instrs = b.Instrs[:len(b.Instrs)-1]
		return true, nil
	}}
	p := (&Pipeline{}).Add(mustPass("fold-constants"), broken, mustPass("dce"))
	err := p.Run(mod, &Context{Env: types.Builtin(), VerifyEach: true})
	if err == nil {
		t.Fatal("verify-each must fail after the broken pass")
	}
	var d *diag.Diagnostic
	if !errors.As(err, &d) {
		t.Fatalf("want *diag.Diagnostic, got %T: %v", err, err)
	}
	if d.Pass != "test-break-ssa" {
		t.Fatalf("diagnostic must name the offending pass, got %q: %v", d.Pass, err)
	}
	if d.Code != "X901" || !strings.Contains(err.Error(), "SSA verification failed after pass test-break-ssa") {
		t.Fatalf("unexpected diagnostic: %v", err)
	}
}

// TestManagerRecoversPanickingPass turns a pass panic into a diagnostic
// tagged with the pass name instead of crashing the compile.
func TestManagerRecoversPanickingPass(t *testing.T) {
	mod := buildTWIR(t, managerSrc)
	boom := Pass{Name: "test-panic", Run: func(mod *wir.Module, ctx *Context) (bool, error) {
		panic("kaboom")
	}}
	err := (&Pipeline{}).Add(boom).Run(mod, &Context{Env: types.Builtin()})
	if err == nil {
		t.Fatal("panicking pass must surface as an error")
	}
	var d *diag.Diagnostic
	if !errors.As(err, &d) || d.Pass != "test-panic" || d.Code != "X900" {
		t.Fatalf("want X900 diagnostic naming test-panic, got: %v", err)
	}
	if !strings.Contains(err.Error(), "kaboom") {
		t.Fatalf("panic payload lost: %v", err)
	}
}

// TestPipelineReportCountsAndTrips checks the manager's instrumentation:
// per-pass run counts, IR sizes, and fixpoint trip counts.
func TestPipelineReportCountsAndTrips(t *testing.T) {
	mod := buildTWIR(t, managerSrc)
	rep := NewReport()
	ctx := &Context{Env: types.Builtin(), Opts: DefaultOptions(), Report: rep}
	if err := RunPipeline(mod, ctx); err != nil {
		t.Fatal(err)
	}
	trips, ok := rep.Trips["local-opt"]
	if !ok || trips < 1 {
		t.Fatalf("fixpoint trip count missing: %+v", rep.Trips)
	}
	byName := map[string]*PassStat{}
	for _, ps := range rep.Passes {
		byName[ps.Name] = ps
	}
	dce, ok := byName["dce"]
	if !ok || dce.Runs < 1 {
		t.Fatalf("dce stats missing: %+v", byName)
	}
	if dce.Runs != trips+1 {
		// dce runs once per fixpoint trip plus once in the O2 cleanup.
		t.Fatalf("dce runs %d, want trips+1 = %d", dce.Runs, trips+1)
	}
	for _, ps := range rep.Passes {
		if ps.InstrsBefore <= 0 || ps.InstrsAfter <= 0 {
			t.Fatalf("IR size not recorded for %s: %+v", ps.Name, ps)
		}
	}
	if size := ModuleSize(mod); size <= 0 {
		t.Fatalf("ModuleSize = %d", size)
	}
}

// TestPassRegistryLookup covers the registration surface used by tooling.
func TestPassRegistryLookup(t *testing.T) {
	names := PassNames()
	if len(names) == 0 {
		t.Fatal("no passes registered")
	}
	for _, want := range []string{"fold-constants", "cse", "dce", "inline", "insert-refcounts"} {
		if _, ok := LookupPass(want); !ok {
			t.Fatalf("pass %q not registered (have %v)", want, names)
		}
	}
	if _, ok := LookupPass("no-such-pass"); ok {
		t.Fatal("lookup of unknown pass must fail")
	}
}
