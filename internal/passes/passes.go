package passes

import (
	"fmt"
	"math"

	"wolfc/internal/expr"
	"wolfc/internal/types"
	"wolfc/internal/wir"
)

// Options controls the pass pipeline, mirroring the FunctionCompile options
// in the paper's artifact (§A.6: AbortHandling, LLVMOptimization, ...).
type Options struct {
	// AbortHandling inserts abort checks at loop headers and prologues
	// (F3). Default on; Native`AbortInhibit and benchmarks turn it off.
	AbortHandling bool
	// InlinePolicy is "auto" (size-bounded), "all", or "none" (§6 reports
	// a 10x Mandelbrot slowdown with inlining disabled).
	InlinePolicy string
	// OptimizationLevel 0 disables the optimisation passes; 1 enables
	// folding, CSE, and DCE; 2 adds the loop pipeline (LICM and strength
	// reduction over natural loops, §4.5).
	OptimizationLevel int
	// DisableCopyElision forces the conservative mutation protocol (the
	// QSort copy ablation).
	DisableCopyElision bool
}

// DefaultOptions returns the production configuration.
func DefaultOptions() Options {
	return Options{AbortHandling: true, InlinePolicy: "auto", OptimizationLevel: 2}
}

// Run applies the full pass pipeline to a typed module. It is the
// uninstrumented entry point; callers that want per-pass timing, trip
// counts, or between-pass SSA verification build a Context and use
// RunPipeline (see manager.go).
func Run(mod *wir.Module, env *types.Env, opts Options) error {
	return RunPipeline(mod, &Context{Env: env, Opts: opts})
}

// ResolveIndirectCalls converts indirect calls through known function
// values into direct calls (function resolution, §4.5): a CallIndirect on a
// FuncRef becomes a direct call; one on a Closure becomes a direct call
// with the captured values appended.
func ResolveIndirectCalls(mod *wir.Module) {
	for _, f := range mod.Funcs {
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				switch in.Op {
				case wir.OpCallIndirect:
					switch fv := in.Args[0].(type) {
					case *wir.FuncRef:
						in.Op = wir.OpCall
						in.Callee = fv.Fn.Name
						in.ResolvedFn = fv.Fn
						in.Args = in.Args[1:]
					case *wir.Instr:
						if fv.Op == wir.OpClosure {
							ref := fv.Args[0].(*wir.FuncRef)
							captures := fv.Args[1:]
							in.Op = wir.OpCall
							in.Callee = ref.Fn.Name
							in.ResolvedFn = ref.Fn
							in.Args = append(append([]wir.Value{}, in.Args[1:]...), captures...)
						}
					}
				case wir.OpCall:
					if in.ResolvedFn == nil {
						if target := mod.FuncByName(in.Callee); target != nil {
							in.ResolvedFn = target
						}
					}
				}
			}
		}
	}
}

// pureNative reports whether a native primitive may be removed or
// deduplicated freely. Mutating, allocating-stateful, random, and
// engine-calling natives are effectful.
func pureNative(native string) bool {
	switch native {
	case "", "setpart_1", "setpart_2", "setpart_unsafe_1", "setpart_unsafe_2",
		"memory_acquire", "memory_release", "random_real01",
		"random_real_range", "random_int_range", "kernel_call",
		"expr_binary_plus", "expr_binary_times", "expr_binary_power":
		return false
	}
	return true
}

// instrPure reports whether the instruction can be removed when unused.
func instrPure(in *wir.Instr) bool {
	switch in.Op {
	case wir.OpCall:
		if in.ResolvedFn != nil {
			return false // unknown callee purity
		}
		if d, ok := in.Prop("overload"); ok {
			def := d.(*types.FuncDef)
			if def.Impl != nil {
				return false
			}
			return pureNative(def.Native)
		}
		switch in.Callee {
		case "Native`List":
			return true
		}
		return false
	case wir.OpClosure, wir.OpPhi:
		return true
	}
	return false
}

// DCE removes unused pure instructions and phis, iterating to a fixed
// point. Reports whether anything changed.
func DCE(f *wir.Function) bool {
	changedAny := false
	for {
		count := uses(f)
		changed := false
		for _, b := range f.Blocks {
			kept := b.Instrs[:0]
			for _, in := range b.Instrs {
				if !in.IsTerminator() && count[in] == 0 && instrPure(in) {
					changed = true
					continue
				}
				kept = append(kept, in)
			}
			b.Instrs = kept
			keptPhis := b.Phis[:0]
			for _, phi := range b.Phis {
				if count[phi] == 0 {
					changed = true
					continue
				}
				keptPhis = append(keptPhis, phi)
			}
			b.Phis = keptPhis
		}
		if !changed {
			return changedAny
		}
		changedAny = true
	}
}

// constValue extracts a Go scalar from a Const for folding.
func constValue(v wir.Value) (any, bool) {
	c, ok := v.(*wir.Const)
	if !ok {
		return nil, false
	}
	switch x := c.Expr.(type) {
	case *expr.Integer:
		if x.IsMachine() {
			return x.Int64(), true
		}
	case *expr.Real:
		return x.V, true
	case *expr.Symbol:
		if b, isBool := expr.TruthValue(x); isBool {
			return b, true
		}
	}
	return nil, false
}

// FoldConstants evaluates pure calls whose operands are all constants
// (sparse conditional constant propagation's folding half, §4.5), plus
// algebraic peepholes: SameQ[b, True] is b (the residue of the And/Or
// macro desugaring), and Not[Not[b]] is b. Reports whether anything
// changed.
func FoldConstants(f *wir.Function) bool {
	changed := false
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op != wir.OpCall || in.Ty == nil {
				continue
			}
			d, ok := in.Prop("overload")
			if !ok {
				continue
			}
			def := d.(*types.FuncDef)
			if def.Impl != nil || !pureNative(def.Native) {
				continue
			}
			if out, ok := peephole(def.Native, in); ok {
				replaceAllUses(f, in, out)
				changed = true
				continue
			}
			out, ok := foldNative(def.Native, in)
			if !ok {
				continue
			}
			// Replace every use with the folded constant.
			replaceAllUses(f, in, out)
			changed = true
		}
	}
	return changed
}

// peephole simplifies boolean identities without needing all-constant
// operands.
func peephole(native string, in *wir.Instr) (wir.Value, bool) {
	isTrueConst := func(v wir.Value) bool {
		cv, ok := constValue(v)
		if !ok {
			return false
		}
		b, ok := cv.(bool)
		return ok && b
	}
	switch native {
	case "sameq_bool":
		if isTrueConst(in.Args[1]) {
			return in.Args[0], true
		}
		if isTrueConst(in.Args[0]) {
			return in.Args[1], true
		}
	case "not":
		// Not[Not[x]] -> x.
		if inner, ok := in.Args[0].(*wir.Instr); ok && inner.Op == wir.OpCall {
			if d, ok := inner.Prop("overload"); ok && d.(*types.FuncDef).Native == "not" {
				return inner.Args[0], true
			}
		}
	}
	return nil, false
}

func replaceAllUses(f *wir.Function, old wir.Value, new wir.Value) {
	for _, b := range f.Blocks {
		for _, phi := range b.Phis {
			for i, a := range phi.Args {
				if a == old {
					phi.Args[i] = new
				}
			}
		}
		for _, in := range b.Instrs {
			for i, a := range in.Args {
				if a == old {
					in.Args[i] = new
				}
			}
		}
	}
}

// foldNative evaluates a native with constant arguments at compile time.
// Operations that would raise a runtime numeric exception are left alone.
func foldNative(native string, in *wir.Instr) (wir.Value, bool) {
	vals := make([]any, len(in.Args))
	for i, a := range in.Args {
		v, ok := constValue(a)
		if !ok {
			return nil, false
		}
		vals[i] = v
	}
	mk := func(e expr.Expr) wir.Value { return &wir.Const{Expr: e, Ty: in.Ty} }
	switch native {
	case "binary_plus", "binary_times", "binary_subtract":
		if a, ok := vals[0].(int64); ok {
			b, ok2 := vals[1].(int64)
			if !ok2 {
				return nil, false
			}
			var r int64
			var overflow bool
			switch native {
			case "binary_plus":
				r = a + b
				overflow = (a > 0 && b > 0 && r < 0) || (a < 0 && b < 0 && r >= 0)
			case "binary_subtract":
				r = a - b
				overflow = (a >= 0 && b < 0 && r < 0) || (a < 0 && b > 0 && r >= 0)
			case "binary_times":
				if a != 0 && b != 0 {
					r = a * b
					overflow = r/b != a
				}
			}
			if overflow {
				return nil, false
			}
			return mk(expr.FromInt64(r)), true
		}
		if a, ok := vals[0].(float64); ok {
			b, ok2 := vals[1].(float64)
			if !ok2 {
				return nil, false
			}
			switch native {
			case "binary_plus":
				return mk(expr.FromFloat(a + b)), true
			case "binary_subtract":
				return mk(expr.FromFloat(a - b)), true
			case "binary_times":
				return mk(expr.FromFloat(a * b)), true
			}
		}
	case "unary_minus":
		switch a := vals[0].(type) {
		case int64:
			if a == math.MinInt64 {
				return nil, false
			}
			return mk(expr.FromInt64(-a)), true
		case float64:
			return mk(expr.FromFloat(-a)), true
		}
	case "cmp_less", "cmp_lessequal", "cmp_greater", "cmp_greaterequal", "cmp_equal", "cmp_unequal":
		cmpI := func(a, b int64) bool { return cmpFold(native, float64(a), float64(b)) }
		cmpF := func(a, b float64) bool { return cmpFold(native, a, b) }
		if a, ok := vals[0].(int64); ok {
			if b, ok2 := vals[1].(int64); ok2 {
				return mk(expr.Bool(cmpI(a, b))), true
			}
		}
		if a, ok := vals[0].(float64); ok {
			if b, ok2 := vals[1].(float64); ok2 {
				return mk(expr.Bool(cmpF(a, b))), true
			}
		}
	case "math_sin", "math_cos", "math_exp", "math_log", "math_sqrt", "math_tan":
		a, ok := vals[0].(float64)
		if !ok {
			return nil, false
		}
		var r float64
		switch native {
		case "math_sin":
			r = math.Sin(a)
		case "math_cos":
			r = math.Cos(a)
		case "math_exp":
			r = math.Exp(a)
		case "math_log":
			r = math.Log(a)
		case "math_sqrt":
			r = math.Sqrt(a)
		case "math_tan":
			r = math.Tan(a)
		}
		return mk(expr.FromFloat(r)), true
	case "not":
		if a, ok := vals[0].(bool); ok {
			return mk(expr.Bool(!a)), true
		}
	case "sameq_bool":
		a, ok1 := vals[0].(bool)
		b, ok2 := vals[1].(bool)
		if ok1 && ok2 {
			return mk(expr.Bool(a == b)), true
		}
	}
	return nil, false
}

func cmpFold(native string, a, b float64) bool {
	switch native {
	case "cmp_less":
		return a < b
	case "cmp_lessequal":
		return a <= b
	case "cmp_greater":
		return a > b
	case "cmp_greaterequal":
		return a >= b
	case "cmp_equal":
		return a == b
	case "cmp_unequal":
		return a != b
	}
	return false
}

// SimplifyBranches converts conditional branches on constants into jumps
// (dead-branch deletion, §4.3/§4.5). Unreachable blocks are removed by
// RemoveUnreachable afterwards. Reports whether anything changed.
func SimplifyBranches(f *wir.Function) bool {
	changed := false
	for _, b := range f.Blocks {
		t := b.Term()
		if t == nil || t.Op != wir.OpCondBranch {
			continue
		}
		v, ok := constValue(t.Args[0])
		if !ok {
			continue
		}
		cond, ok := v.(bool)
		if !ok {
			continue
		}
		taken, dead := t.Targets[0], t.Targets[1]
		if !cond {
			taken, dead = dead, taken
		}
		// Rewrite to an unconditional branch and fix the dead target's
		// pred list and phis.
		t.Op = wir.OpBranch
		t.Args = nil
		t.Targets = []*wir.Block{taken}
		removePred(dead, b)
		changed = true
	}
	return changed
}

// removePred deletes pred from b's predecessor list, dropping the matching
// phi operands.
func removePred(b *wir.Block, pred *wir.Block) {
	for i, p := range b.Preds {
		if p == pred {
			b.Preds = append(b.Preds[:i], b.Preds[i+1:]...)
			for _, phi := range b.Phis {
				if i < len(phi.Args) {
					phi.Args = append(phi.Args[:i], phi.Args[i+1:]...)
				}
			}
			return
		}
	}
}

// RemoveUnreachable deletes CFG-unreachable blocks module-wide, fixing
// predecessor lists and phis, and simplifies single-operand phis.
func RemoveUnreachable(mod *wir.Module) {
	for _, f := range mod.Funcs {
		dom := ComputeDominators(f)
		var kept []*wir.Block
		for _, b := range f.Blocks {
			if dom.Reachable(b) {
				kept = append(kept, b)
				continue
			}
			for _, s := range b.Succs() {
				removePred(s, b)
			}
		}
		f.Blocks = kept
		for i, b := range f.Blocks {
			b.IDNum = i
		}
		// Single-pred phis collapse to their operand.
		for _, b := range f.Blocks {
			keptPhis := b.Phis[:0]
			for _, phi := range b.Phis {
				if len(phi.Args) == 1 {
					replaceAllUses(f, phi, phi.Args[0])
					continue
				}
				keptPhis = append(keptPhis, phi)
			}
			b.Phis = keptPhis
		}
	}
}

// FuseBlocks merges each block with its unique successor when that
// successor has no other predecessors (basic block fusion, §4.3). Phis in
// the successor collapse to their single operand first.
func FuseBlocks(mod *wir.Module) bool {
	changed := false
	for _, f := range mod.Funcs {
		for again := true; again; {
			again = false
			for _, b := range f.Blocks {
				t := b.Term()
				if t == nil || t.Op != wir.OpBranch {
					continue
				}
				s := t.Targets[0]
				if s == b || len(s.Preds) != 1 || s.Preds[0] != b {
					continue
				}
				// Single-pred phis are trivial.
				for _, phi := range s.Phis {
					if len(phi.Args) == 1 {
						replaceAllUses(f, phi, phi.Args[0])
					}
				}
				s.Phis = nil
				// Splice: drop b's terminator, append s's instructions.
				b.Instrs = b.Instrs[:len(b.Instrs)-1]
				for _, in := range s.Instrs {
					in.Block = b
					b.Instrs = append(b.Instrs, in)
				}
				// Successors of s now have b as the predecessor.
				if st := b.Term(); st != nil {
					for _, succ := range st.Targets {
						for i, p := range succ.Preds {
							if p == s {
								succ.Preds[i] = b
							}
						}
					}
				}
				// Remove s from the function.
				for i, blk := range f.Blocks {
					if blk == s {
						f.Blocks = append(f.Blocks[:i], f.Blocks[i+1:]...)
						break
					}
				}
				for i, blk := range f.Blocks {
					blk.IDNum = i
				}
				changed = true
				again = true
				break
			}
		}
	}
	return changed
}

// CSE performs dominator-scoped common subexpression elimination over pure
// calls (§4.5 lists CSE among the TWIR optimisations). Reports whether
// anything changed.
func CSE(f *wir.Function) bool {
	dom := ComputeDominators(f)
	children := map[*wir.Block][]*wir.Block{}
	for _, b := range f.Blocks {
		if p := dom.IDom(b); p != nil {
			children[p] = append(children[p], b)
		}
	}
	avail := map[string]*wir.Instr{}
	changed := false
	var walk func(b *wir.Block)
	walk = func(b *wir.Block) {
		var added []string
		for _, in := range b.Instrs {
			if in.Op != wir.OpCall || !instrPure(in) || in.Ty == nil {
				continue
			}
			key := cseKey(in)
			if prev, ok := avail[key]; ok {
				replaceAllUses(f, in, prev)
				changed = true
				continue
			}
			avail[key] = in
			added = append(added, key)
		}
		for _, c := range children[b] {
			walk(c)
		}
		for _, k := range added {
			delete(avail, k)
		}
	}
	walk(f.Entry())
	if changed {
		DCE(f)
	}
	return changed
}

func cseKey(in *wir.Instr) string {
	key := in.Callee + "/" + in.Native
	if d, ok := in.Prop("overload"); ok {
		key += "/" + d.(*types.FuncDef).Native
	}
	for _, a := range in.Args {
		switch v := a.(type) {
		case *wir.Instr:
			key += fmt.Sprintf("|%%%d", v.IDNum)
		case *wir.Param:
			key += "|%" + v.Sym.Name
		case *wir.Const:
			key += "|" + expr.FullForm(v.Expr)
		case *wir.FuncRef:
			key += "|@" + v.Fn.Name
		}
	}
	return key
}

// InsertAbortChecks places an abort check in each function prologue and at
// every loop header (paper §4.5: checks at loop heads avoid inhibiting
// straight-line optimisation; prologue checks cover recursion).
func InsertAbortChecks(mod *wir.Module) {
	for _, f := range mod.Funcs {
		dom := ComputeDominators(f)
		heads := LoopHeaders(f, dom)
		insert := func(b *wir.Block) {
			in := &wir.Instr{Op: wir.OpAbortCheck, Block: b}
			b.Instrs = append([]*wir.Instr{in}, b.Instrs...)
		}
		insert(f.Entry())
		for h := range heads {
			if h.AbortInhibit {
				continue // Native`AbortInhibit region (§6)
			}
			insert(h)
		}
		f.SetProp("AbortHandling", true)
	}
}
