package pattern

import "wolfc/internal/expr"

// Rule-shape classification (ISSUE 10): the structured view of a DownValue
// LHS shared by the matcher and the pattern-dispatch compiler
// (internal/patcomp). Classification is purely syntactic — it decomposes a
// call pattern into per-argument shapes without deciding compilability;
// patcomp resolves the shapes against the kinds observed at dispatch and
// rejects what it cannot lower. The matcher's semantics are the contract:
// a classified shape must describe exactly what match() would test, in the
// order matchSeq() would test it (structure before conditions, arguments
// left to right, the whole-LHS Condition last).

// ArgClass partitions the argument shapes the classifier understands.
type ArgClass int

const (
	// ArgOther marks a position outside the classified fragment
	// (sequence blanks, Alternatives, non-List destructuring, ...).
	ArgOther ArgClass = iota
	// ArgVar is a plain or head-restricted blank, optionally named:
	// _, x_, _Integer, x_Real, x_List.
	ArgVar
	// ArgLiteral is a non-Normal atom matched with SameQ: 0, 2.5, "s".
	ArgLiteral
	// ArgList is List destructuring: {x_, y_}, {x_Integer, 0}, {}, or a
	// literal list {1, 2}; every element is itself ArgVar or ArgLiteral
	// (one level deep — nested lists stay on the interpreter).
	ArgList
)

// ArgShape is the classified form of one LHS argument position.
type ArgShape struct {
	Class ArgClass
	Var   *expr.Symbol // bound pattern variable (nil for anonymous blanks)
	Req   *expr.Symbol // head restriction from Blank[h]; nil = unrestricted
	Lit   expr.Expr    // ArgLiteral: the atom to discriminate on
	Elems []ArgShape   // ArgList: element shapes, in order
	// Conds are the /; tests wrapped around this position, outermost
	// last — the order the matcher evaluates them once the position (and
	// everything it binds) has matched.
	Conds []expr.Expr
}

// RuleShape is the classified form of one DownValue LHS.
type RuleShape struct {
	Args []ArgShape
	// Conds are whole-LHS Condition tests (f[...] /; cond), evaluated by
	// the matcher after every argument has matched, innermost first.
	Conds []expr.Expr
}

// ClassifyRule decomposes lhs as a call pattern for head. It peels
// whole-LHS Condition wrappers, requires the call head to be exactly head,
// and classifies each argument; ok is false when any part of the LHS falls
// outside the classified fragment.
func ClassifyRule(lhs expr.Expr, head *expr.Symbol) (*RuleShape, bool) {
	rs := &RuleShape{}
	// Peel Condition[pat, test] wrappers: the matcher runs the tests
	// innermost first (the inner Condition matches before the outer test
	// runs), so collect while unwrapping and keep that order.
	var conds []expr.Expr
	for {
		c, ok := expr.IsNormalN(lhs, symCondition, 2)
		if !ok {
			break
		}
		conds = append(conds, c.Arg(2))
		lhs = c.Arg(1)
	}
	// Unwrapping visits outermost first; evaluation order is innermost
	// first.
	for i := len(conds) - 1; i >= 0; i-- {
		rs.Conds = append(rs.Conds, conds[i])
	}
	call, ok := lhs.(*expr.Normal)
	if !ok || call.Head() != head {
		return nil, false
	}
	for _, a := range call.Args() {
		sh, ok := classifyArg(a, 0)
		if !ok {
			return nil, false
		}
		rs.Args = append(rs.Args, sh)
	}
	return rs, true
}

// classifyArg classifies one argument (or list-element) pattern. depth
// guards the one-level List nesting bound.
func classifyArg(a expr.Expr, depth int) (ArgShape, bool) {
	var sh ArgShape
	// Peel Condition wrappers exactly as ClassifyRule does for the LHS.
	var conds []expr.Expr
	for {
		c, ok := expr.IsNormalN(a, symCondition, 2)
		if !ok {
			break
		}
		conds = append(conds, c.Arg(2))
		a = c.Arg(1)
	}
	for i := len(conds) - 1; i >= 0; i-- {
		sh.Conds = append(sh.Conds, conds[i])
	}
	// Peel one Pattern[name, sub] wrapper.
	if p, ok := expr.IsNormalN(a, expr.SymPattern, 2); ok {
		name, isSym := p.Arg(1).(*expr.Symbol)
		if !isSym {
			return sh, false
		}
		sh.Var = name
		a = p.Arg(2)
	}
	switch x := a.(type) {
	case *expr.Normal:
		head, isSym := x.Head().(*expr.Symbol)
		if !isSym {
			return sh, false
		}
		switch head {
		case expr.SymBlank:
			if x.Len() > 1 {
				return sh, false
			}
			sh.Class = ArgVar
			if x.Len() == 1 {
				req, ok := x.Arg(1).(*expr.Symbol)
				if !ok {
					return sh, false
				}
				sh.Req = req
			}
			return sh, true
		case expr.SymList:
			if depth > 0 {
				return sh, false // nested destructuring stays interpreted
			}
			sh.Class = ArgList
			for _, e := range x.Args() {
				es, ok := classifyArg(e, depth+1)
				if !ok || es.Class == ArgList {
					return sh, false
				}
				sh.Elems = append(sh.Elems, es)
			}
			return sh, true
		}
		return sh, false
	case nil:
		return sh, false
	default:
		// A non-Normal atom: the matcher compares it with SameQ. A Pattern
		// wrapper around a bare atom (x : 0) is not a binding form the
		// matcher produces from definitions; reject it rather than guess.
		if sh.Var != nil {
			return sh, false
		}
		sh.Class = ArgLiteral
		sh.Lit = a
		return sh, true
	}
}
