// Package pattern implements Wolfram Language pattern matching: Blank
// (_), head-restricted blanks (_Integer), named patterns (x_), sequence
// blanks (__ and ___), and Condition (/;). It backs both the interpreter's
// rule dispatch (DownValues) and the compiler's macro system (paper §4.2),
// which reuses the engine's pattern-based substitution.
package pattern

import (
	"sort"

	"wolfc/internal/expr"
)

// Bindings maps pattern variables to their matched values. Sequence matches
// are bound as Sequence[e1, e2, ...] and spliced by Substitute.
type Bindings map[*expr.Symbol]expr.Expr

// clone returns a shallow copy, used for backtracking.
func (b Bindings) clone() Bindings {
	c := make(Bindings, len(b))
	for k, v := range b {
		c[k] = v
	}
	return c
}

// CondFunc evaluates a Condition test under the given bindings, reporting
// whether it holds. The interpreter supplies its evaluator here.
type CondFunc func(test expr.Expr, b Bindings) bool

var (
	symBlankSequence     = expr.Sym("BlankSequence")
	symBlankNullSequence = expr.Sym("BlankNullSequence")
	symCondition         = expr.Sym("Condition")
	symSequence          = expr.Sym("Sequence")
	symAlternatives      = expr.Sym("Alternatives")
)

// Match matches pat against subject with no condition evaluator, returning
// the variable bindings on success.
func Match(pat, subject expr.Expr) (Bindings, bool) {
	return MatchCond(pat, subject, nil)
}

// MatchCond matches pat against subject, evaluating Condition tests with
// cond (conditions fail when cond is nil).
func MatchCond(pat, subject expr.Expr, cond CondFunc) (Bindings, bool) {
	b := Bindings{}
	if match(pat, subject, b, cond) {
		return b, true
	}
	return nil, false
}

func match(pat, subject expr.Expr, b Bindings, cond CondFunc) bool {
	switch p := pat.(type) {
	case *expr.Normal:
		head, isSym := p.Head().(*expr.Symbol)
		if isSym {
			switch head {
			case expr.SymBlank:
				return matchBlankHead(p, subject)
			case expr.SymPattern:
				if p.Len() != 2 {
					return false
				}
				name, ok := p.Arg(1).(*expr.Symbol)
				if !ok {
					return false
				}
				if !match(p.Arg(2), subject, b, cond) {
					return false
				}
				return bind(b, name, subject)
			case symCondition:
				if p.Len() != 2 {
					return false
				}
				if !match(p.Arg(1), subject, b, cond) {
					return false
				}
				return cond != nil && cond(p.Arg(2), b)
			case symAlternatives:
				for _, alt := range p.Args() {
					trial := b.clone()
					if match(alt, subject, trial, cond) {
						for k, v := range trial {
							b[k] = v
						}
						return true
					}
				}
				return false
			case symBlankSequence, symBlankNullSequence:
				// A bare sequence blank outside an argument list matches a
				// single expression (sequences are handled by matchSeq).
				return matchBlankHead(p, subject)
			}
		}
		// Structural match: subject must be a Normal with matching head and
		// a compatible argument sequence.
		s, ok := subject.(*expr.Normal)
		if !ok {
			return false
		}
		if !match(p.Head(), s.Head(), b, cond) {
			return false
		}
		return matchSeq(p.Args(), s.Args(), b, cond)
	default:
		return expr.SameQ(pat, subject)
	}
}

// matchBlankHead checks a Blank/BlankSequence/BlankNullSequence head
// restriction against a single subject.
func matchBlankHead(p *expr.Normal, subject expr.Expr) bool {
	if p.Len() == 0 {
		return true
	}
	return expr.SameQ(subject.Head(), p.Arg(1))
}

// bind records name=val, or checks consistency with a previous binding.
func bind(b Bindings, name *expr.Symbol, val expr.Expr) bool {
	if prev, ok := b[name]; ok {
		return expr.SameQ(prev, val)
	}
	b[name] = val
	return true
}

// matchSeq matches a list of argument patterns against a list of subject
// arguments, with backtracking over sequence blanks.
func matchSeq(pats, subj []expr.Expr, b Bindings, cond CondFunc) bool {
	if len(pats) == 0 {
		return len(subj) == 0
	}
	p := pats[0]
	min, max, seqPat, named := seqInfo(p)
	if seqPat == nil {
		// Single-expression pattern.
		if len(subj) == 0 {
			return false
		}
		trial := b.clone()
		if match(p, subj[0], trial, cond) && matchSeq(pats[1:], subj[1:], trial, cond) {
			adopt(b, trial)
			return true
		}
		return false
	}
	// Sequence pattern: try successively longer matches (shortest first,
	// following the engine's ordering).
	if max < 0 || max > len(subj) {
		max = len(subj)
	}
	for n := min; n <= max; n++ {
		ok := true
		for i := 0; i < n; i++ {
			if !matchBlankHead(seqPat, subj[i]) {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		trial := b.clone()
		if named != nil {
			val := expr.New(symSequence, append([]expr.Expr{}, subj[:n]...)...)
			if !bind(trial, named, val) {
				continue
			}
		}
		if matchSeq(pats[1:], subj[n:], trial, cond) {
			adopt(b, trial)
			return true
		}
	}
	return false
}

func adopt(dst, src Bindings) {
	for k, v := range src {
		dst[k] = v
	}
}

// seqInfo classifies p as a sequence pattern, returning its arity bounds,
// the underlying blank, and the bound name (nil if anonymous). For
// non-sequence patterns seqPat is nil.
func seqInfo(p expr.Expr) (min, max int, seqPat *expr.Normal, named *expr.Symbol) {
	inner := p
	if pn, ok := expr.IsNormalN(p, expr.SymPattern, 2); ok {
		if nm, ok := pn.Arg(1).(*expr.Symbol); ok {
			named = nm
			inner = pn.Arg(2)
		}
	}
	if n, ok := inner.(*expr.Normal); ok {
		if h, ok := n.Head().(*expr.Symbol); ok {
			switch h {
			case symBlankSequence:
				return 1, -1, n, named
			case symBlankNullSequence:
				return 0, -1, n, named
			}
		}
	}
	return 0, 0, nil, nil
}

// Substitute replaces bound pattern variables in e, splicing Sequence values
// into surrounding argument lists.
func Substitute(e expr.Expr, b Bindings) expr.Expr {
	switch x := e.(type) {
	case *expr.Symbol:
		if v, ok := b[x]; ok {
			return v
		}
		return e
	case *expr.Normal:
		head := Substitute(x.Head(), b)
		args := make([]expr.Expr, 0, x.Len())
		for _, a := range x.Args() {
			sub := Substitute(a, b)
			if seq, ok := expr.IsNormal(sub, symSequence); ok {
				args = append(args, seq.Args()...)
			} else {
				args = append(args, sub)
			}
		}
		return expr.New(head, args...)
	default:
		return e
	}
}

// Rule is a rewrite rule LHS -> RHS.
type Rule struct {
	LHS, RHS expr.Expr
}

// Apply attempts to rewrite e with the rule; it reports whether it fired.
func (r Rule) Apply(e expr.Expr, cond CondFunc) (expr.Expr, bool) {
	b, ok := MatchCond(r.LHS, e, cond)
	if !ok {
		return e, false
	}
	return Substitute(r.RHS, b), true
}

// Specificity scores how specific a pattern is; higher scores are matched
// first, approximating the engine's canonical rule ordering (paper §4.2
// "matched based on the rules' pattern specificity").
func Specificity(p expr.Expr) int {
	switch x := p.(type) {
	case *expr.Normal:
		if h, ok := x.Head().(*expr.Symbol); ok {
			switch h {
			case expr.SymBlank:
				if x.Len() == 1 {
					return 4 // typed blank
				}
				return 1 // plain blank
			case symBlankSequence:
				return -2
			case symBlankNullSequence:
				return -3
			case expr.SymPattern:
				if x.Len() == 2 {
					return Specificity(x.Arg(2)) // the name adds nothing
				}
			case symCondition:
				if x.Len() == 2 {
					return Specificity(x.Arg(1)) + 1 // a test narrows the match
				}
			case symAlternatives:
				// As specific as its least specific branch.
				best := 0
				for i, alt := range x.Args() {
					s := Specificity(alt)
					if i == 0 || s < best {
						best = s
					}
				}
				return best
			}
		}
		score := 2 // structural node
		score += Specificity(x.Head())
		for _, a := range x.Args() {
			score += Specificity(a)
		}
		return score
	default:
		return 8 // literal atom
	}
}

// SortRules stably sorts rules most-specific first.
func SortRules(rules []Rule) {
	sort.SliceStable(rules, func(i, j int) bool {
		return Specificity(rules[i].LHS) > Specificity(rules[j].LHS)
	})
}
