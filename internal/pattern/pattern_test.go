package pattern

import (
	"testing"

	"wolfc/internal/expr"
	"wolfc/internal/parser"
)

func pe(t *testing.T, src string) expr.Expr {
	t.Helper()
	e, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return e
}

func TestMatchLiterals(t *testing.T) {
	cases := []struct {
		pat, subj string
		want      bool
	}{
		{"1", "1", true},
		{"1", "2", false},
		{"x", "x", true},
		{"x", "y", false},
		{"f[1]", "f[1]", true},
		{"f[1]", "f[2]", false},
		{"f[1]", "g[1]", false},
		{"f[1]", "f[1, 2]", false},
		{`"s"`, `"s"`, true},
	}
	for _, c := range cases {
		_, ok := Match(pe(t, c.pat), pe(t, c.subj))
		if ok != c.want {
			t.Errorf("Match(%s, %s) = %v, want %v", c.pat, c.subj, ok, c.want)
		}
	}
}

func TestMatchBlanks(t *testing.T) {
	cases := []struct {
		pat, subj string
		want      bool
	}{
		{"_", "1", true},
		{"_", "f[1]", true},
		{"_Integer", "1", true},
		{"_Integer", "1.5", false},
		{"_Real", "1.5", true},
		{"_Symbol", "x", true},
		{"_String", `"s"`, true},
		{"_List", "{1, 2}", true},
		{"_f", "f[1, 2]", true},
		{"_f", "g[1]", false},
		{"f[_]", "f[99]", true},
		{"f[_, _]", "f[1]", false},
		{"f[_Integer, _Real]", "f[1, 2.5]", true},
		{"f[_Integer, _Real]", "f[1.5, 2]", false},
	}
	for _, c := range cases {
		_, ok := Match(pe(t, c.pat), pe(t, c.subj))
		if ok != c.want {
			t.Errorf("Match(%s, %s) = %v, want %v", c.pat, c.subj, ok, c.want)
		}
	}
}

func TestMatchBindings(t *testing.T) {
	b, ok := Match(pe(t, "f[x_, y_]"), pe(t, "f[1, g[2]]"))
	if !ok {
		t.Fatal("should match")
	}
	if !expr.SameQ(b[expr.Sym("x")], expr.FromInt64(1)) {
		t.Errorf("x bound to %v", b[expr.Sym("x")])
	}
	if expr.FullForm(b[expr.Sym("y")]) != "g[2]" {
		t.Errorf("y bound to %v", b[expr.Sym("y")])
	}
	// Repeated variables must bind consistently.
	if _, ok := Match(pe(t, "f[x_, x_]"), pe(t, "f[1, 1]")); !ok {
		t.Error("f[x_, x_] should match f[1, 1]")
	}
	if _, ok := Match(pe(t, "f[x_, x_]"), pe(t, "f[1, 2]")); ok {
		t.Error("f[x_, x_] should not match f[1, 2]")
	}
}

func TestMatchSequences(t *testing.T) {
	// __ needs at least one element; ___ matches empty.
	if _, ok := Match(pe(t, "f[xs__]"), pe(t, "f[]")); ok {
		t.Error("__ must not match zero args")
	}
	if _, ok := Match(pe(t, "f[xs___]"), pe(t, "f[]")); !ok {
		t.Error("___ must match zero args")
	}
	b, ok := Match(pe(t, "f[first_, rest__]"), pe(t, "f[1, 2, 3]"))
	if !ok {
		t.Fatal("sequence match failed")
	}
	if expr.FullForm(b[expr.Sym("rest")]) != "Sequence[2, 3]" {
		t.Errorf("rest = %s", expr.FullForm(b[expr.Sym("rest")]))
	}
	// Backtracking: a__ then b_ forces a to take all but the last.
	b, ok = Match(pe(t, "f[a__, b_]"), pe(t, "f[1, 2, 3]"))
	if !ok {
		t.Fatal("backtracking match failed")
	}
	if expr.FullForm(b[expr.Sym("a")]) != "Sequence[1, 2]" {
		t.Errorf("a = %s", expr.FullForm(b[expr.Sym("a")]))
	}
	// Typed sequences.
	if _, ok := Match(pe(t, "f[xs__Integer]"), pe(t, "f[1, 2, 3]")); !ok {
		t.Error("typed sequence should match")
	}
	if _, ok := Match(pe(t, "f[xs__Integer]"), pe(t, "f[1, 2.5]")); ok {
		t.Error("typed sequence should reject a real")
	}
}

func TestSubstituteSplicesSequences(t *testing.T) {
	b, ok := Match(pe(t, "And[x_, y_, rest__]"), pe(t, "And[a, b, c, d]"))
	if !ok {
		t.Fatal("match failed")
	}
	out := Substitute(pe(t, "And[And[x, y], rest]"), b)
	if expr.FullForm(out) != "And[And[a, b], c, d]" {
		t.Fatalf("substitute = %s", expr.FullForm(out))
	}
}

func TestCondition(t *testing.T) {
	cond := func(test expr.Expr, b Bindings) bool {
		// Evaluate "x > 0" style tests on integer bindings only.
		n, ok := expr.IsNormalN(test, expr.Sym("Greater"), 2)
		if !ok {
			return false
		}
		v := Substitute(n.Arg(1), b)
		i, ok := v.(*expr.Integer)
		return ok && i.Int64() > 0
	}
	pat := pe(t, "Condition[f[x_], x > 0]")
	if _, ok := MatchCond(pat, pe(t, "f[5]"), cond); !ok {
		t.Error("condition should pass for f[5]")
	}
	if _, ok := MatchCond(pat, pe(t, "f[-5]"), cond); ok {
		t.Error("condition should fail for f[-5]")
	}
	// With a nil evaluator conditions fail closed.
	if _, ok := Match(pat, pe(t, "f[5]")); ok {
		t.Error("condition with nil evaluator must fail")
	}
}

func TestAlternatives(t *testing.T) {
	pat := pe(t, "Alternatives[_Integer, _Real]")
	if _, ok := Match(pat, pe(t, "3")); !ok {
		t.Error("alternatives: integer")
	}
	if _, ok := Match(pat, pe(t, "3.5")); !ok {
		t.Error("alternatives: real")
	}
	if _, ok := Match(pat, pe(t, `"s"`)); ok {
		t.Error("alternatives: string must not match")
	}
}

func TestRuleApply(t *testing.T) {
	r := Rule{LHS: pe(t, "And[x_, y_]"), RHS: pe(t, "If[x === True, y === True, False]")}
	out, ok := r.Apply(pe(t, "And[p, q]"), nil)
	if !ok {
		t.Fatal("rule should fire")
	}
	if expr.FullForm(out) != "If[SameQ[p, True], SameQ[q, True], False]" {
		t.Fatalf("rewrite = %s", expr.FullForm(out))
	}
	if _, ok := r.Apply(pe(t, "Or[p, q]"), nil); ok {
		t.Fatal("rule must not fire on Or")
	}
}

func TestSpecificityOrdering(t *testing.T) {
	// The paper's And macro rules: more specific rules must sort first.
	rules := []Rule{
		{LHS: pe(t, "And[x_, y_, rest__]")},
		{LHS: pe(t, "And[x_]")},
		{LHS: pe(t, "And[False, _]")},
		{LHS: pe(t, "And[x_, y_]")},
	}
	SortRules(rules)
	if expr.FullForm(rules[0].LHS) != "And[False, Blank[]]" {
		t.Fatalf("most specific first, got %s", expr.FullForm(rules[0].LHS))
	}
	// The sequence rule is the least specific.
	last := expr.FullForm(rules[len(rules)-1].LHS)
	if last != "And[Pattern[x, Blank[]], Pattern[y, Blank[]], Pattern[rest, BlankSequence[]]]" {
		t.Fatalf("least specific last, got %s", last)
	}
}

func TestMatchHeadPattern(t *testing.T) {
	// Patterns can appear in head position: _[args].
	if _, ok := Match(pe(t, "_[1]"), pe(t, "f[1]")); !ok {
		t.Error("head blank should match")
	}
	b, ok := Match(pe(t, "h_[1, 2]"), pe(t, "g[1, 2]"))
	if !ok || !expr.SameQ(b[expr.Sym("h")], expr.Sym("g")) {
		t.Error("named head pattern should bind h to g")
	}
}
