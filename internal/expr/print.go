package expr

import (
	"fmt"
	"strings"
)

// Operator precedence levels for InputForm printing, mirroring the surface
// grammar in internal/parser. Higher binds tighter.
const (
	precLowest    = 0
	precCompound  = 10  // ;
	precSet       = 20  // = :=
	precFunction  = 25  // &
	precRule      = 35  // -> :>
	precCond      = 38  // /;
	precReplace   = 30  // /.
	precOr        = 40  // ||
	precAnd       = 50  // &&
	precNot       = 55  // !
	precCompare   = 60  // == != < <= > >= ===
	precSpan      = 65  // ;;
	precPlus      = 70  // + -
	precTimes     = 80  // * /
	precStrJoin   = 85  // <>
	precUnary     = 90  // unary -
	precPower     = 100 // ^
	precMapApply  = 110 // /@ @
	precPostfix   = 120 // [..] [[..]] ++ --
	precAtomLevel = 200
)

var infixOps = map[string]struct {
	op    string
	prec  int
	right bool // right-associative
	nary  bool // flat n-ary chain
}{
	"CompoundExpression": {";", precCompound, false, true},
	"Set":                {" = ", precSet, true, false},
	"SetDelayed":         {" := ", precSet, true, false},
	"Rule":               {" -> ", precRule, true, false},
	"RuleDelayed":        {" :> ", precRule, true, false},
	"ReplaceAll":         {" /. ", precReplace, false, false},
	"Condition":          {" /; ", precCond, false, false},
	"Or":                 {" || ", precOr, false, true},
	"And":                {" && ", precAnd, false, true},
	"Equal":              {" == ", precCompare, false, true},
	"Unequal":            {" != ", precCompare, false, true},
	"SameQ":              {" === ", precCompare, false, true},
	"UnsameQ":            {" =!= ", precCompare, false, true},
	"Less":               {" < ", precCompare, false, true},
	"LessEqual":          {" <= ", precCompare, false, true},
	"Greater":            {" > ", precCompare, false, true},
	"GreaterEqual":       {" >= ", precCompare, false, true},
	"Plus":               {" + ", precPlus, false, true},
	"Subtract":           {" - ", precPlus, false, false},
	"Times":              {"*", precTimes, false, true},
	"Divide":             {"/", precTimes, false, false},
	"Power":              {"^", precPower, true, false},
	"StringJoin":         {" <> ", precStrJoin, false, true},
	"Span":               {" ;; ", precSpan, false, false},
	"Map":                {" /@ ", precMapApply, true, false},
}

// InputForm renders e using the operator syntax understood by the parser.
func InputForm(e Expr) string {
	var b strings.Builder
	writeInput(&b, e, precLowest)
	return b.String()
}

func writeInput(b *strings.Builder, e Expr, outer int) {
	n, ok := e.(*Normal)
	if !ok {
		writeAtom(b, e)
		return
	}
	hs, headIsSym := n.head.(*Symbol)
	if headIsSym {
		switch {
		case hs == SymList:
			b.WriteByte('{')
			for i, a := range n.args {
				if i > 0 {
					b.WriteString(", ")
				}
				writeInput(b, a, precLowest)
			}
			b.WriteByte('}')
			return
		case hs.Name == "Slot" && len(n.args) == 1:
			if k, ok := n.args[0].(*Integer); ok && k.IsMachine() {
				if k.Int64() == 1 {
					b.WriteByte('#')
				} else {
					fmt.Fprintf(b, "#%d", k.Int64())
				}
				return
			}
		case hs.Name == "Function" && len(n.args) == 1:
			paren := outer > precFunction
			if paren {
				b.WriteByte('(')
			}
			writeInput(b, n.args[0], precFunction)
			b.WriteString(" &")
			if paren {
				b.WriteByte(')')
			}
			return
		case hs.Name == "Not" && len(n.args) == 1:
			b.WriteByte('!')
			writeInput(b, n.args[0], precNot)
			return
		case hs.Name == "Minus" && len(n.args) == 1:
			paren := outer > precUnary
			if paren {
				b.WriteByte('(')
			}
			b.WriteByte('-')
			writeInput(b, n.args[0], precUnary)
			if paren {
				b.WriteByte(')')
			}
			return
		case hs.Name == "Part" && len(n.args) >= 2:
			writeInput(b, n.args[0], precPostfix)
			b.WriteString("[[")
			for i, a := range n.args[1:] {
				if i > 0 {
					b.WriteString(", ")
				}
				writeInput(b, a, precLowest)
			}
			b.WriteString("]]")
			return
		case hs.Name == "Blank" && len(n.args) <= 1:
			b.WriteByte('_')
			if len(n.args) == 1 {
				writeInput(b, n.args[0], precAtomLevel)
			}
			return
		case hs.Name == "BlankSequence" && len(n.args) == 0:
			b.WriteString("__")
			return
		case hs.Name == "BlankNullSequence" && len(n.args) == 0:
			b.WriteString("___")
			return
		case hs.Name == "Pattern" && len(n.args) == 2:
			if v, ok := n.args[0].(*Symbol); ok {
				b.WriteString(v.Name)
				writeInput(b, n.args[1], precAtomLevel)
				return
			}
		}
		if spec, ok := infixOps[hs.Name]; ok && len(n.args) >= 2 && (spec.nary || len(n.args) == 2) {
			// Children are rendered at spec.prec+1, which parenthesises
			// same-precedence nesting; slightly conservative but always
			// round-trips through the parser.
			paren := outer >= spec.prec
			if paren {
				b.WriteByte('(')
			}
			for i, a := range n.args {
				if i > 0 {
					b.WriteString(spec.op)
				}
				writeInput(b, a, spec.prec+1)
			}
			if paren {
				b.WriteByte(')')
			}
			return
		}
	}
	// Default: head[args...]
	writeInput(b, n.head, precPostfix)
	b.WriteByte('[')
	for i, a := range n.args {
		if i > 0 {
			b.WriteString(", ")
		}
		writeInput(b, a, precLowest)
	}
	b.WriteByte(']')
}

func writeAtom(b *strings.Builder, e Expr) {
	switch x := e.(type) {
	case *Integer:
		if x.Sign() < 0 {
			// Negative literals need parens in contexts like 2^-1; keep it
			// simple and always print bare — the parser handles it.
			b.WriteString(x.String())
			return
		}
		b.WriteString(x.String())
	default:
		b.WriteString(e.String())
	}
}

// FullForm renders e with no operator syntax: every Normal expression prints
// as Head[args...]; the form round-trips exactly through the parser.
func FullForm(e Expr) string {
	var b strings.Builder
	writeFull(&b, e)
	return b.String()
}

func writeFull(b *strings.Builder, e Expr) {
	n, ok := e.(*Normal)
	if !ok {
		switch x := e.(type) {
		case *Rational:
			fmt.Fprintf(b, "Rational[%s, %s]", x.V.Num().String(), x.V.Denom().String())
		default:
			b.WriteString(e.String())
		}
		return
	}
	writeFull(b, n.head)
	b.WriteByte('[')
	for i, a := range n.args {
		if i > 0 {
			b.WriteString(", ")
		}
		writeFull(b, a)
	}
	b.WriteByte(']')
}

// String renders a Normal expression in InputForm.
func (n *Normal) String() string { return InputForm(n) }
