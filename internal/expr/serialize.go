package expr

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"math/big"
)

// Binary serialisation of expressions. The format is a compact preorder
// encoding used by compiled-library export (paper §4.6 F10) and by the
// WIR/TWIR serialisers. It round-trips exactly, including big integers.

const (
	tagSymbol byte = iota + 1
	tagMachineInt
	tagBigInt
	tagReal
	tagRational
	tagComplex
	tagString
	tagNormal
)

// Encode writes a binary encoding of e to w.
func Encode(w io.Writer, e Expr) error {
	bw := bufio.NewWriter(w)
	if err := encode(bw, e); err != nil {
		return err
	}
	return bw.Flush()
}

func encode(w *bufio.Writer, e Expr) error {
	switch x := e.(type) {
	case *Symbol:
		w.WriteByte(tagSymbol)
		writeString(w, x.Name)
	case *Integer:
		if x.IsMachine() {
			w.WriteByte(tagMachineInt)
			var buf [binary.MaxVarintLen64]byte
			n := binary.PutVarint(buf[:], x.Int64())
			w.Write(buf[:n])
		} else {
			w.WriteByte(tagBigInt)
			writeBytes(w, x.Big().Bytes())
			sign := byte(0)
			if x.Sign() < 0 {
				sign = 1
			}
			w.WriteByte(sign)
		}
	case *Real:
		w.WriteByte(tagReal)
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(x.V))
		w.Write(buf[:])
	case *Rational:
		w.WriteByte(tagRational)
		writeBigInt(w, x.V.Num())
		writeBigInt(w, x.V.Denom())
	case *Complex:
		w.WriteByte(tagComplex)
		var buf [16]byte
		binary.LittleEndian.PutUint64(buf[:8], math.Float64bits(x.Re))
		binary.LittleEndian.PutUint64(buf[8:], math.Float64bits(x.Im))
		w.Write(buf[:])
	case *String:
		w.WriteByte(tagString)
		writeString(w, x.V)
	case *Normal:
		w.WriteByte(tagNormal)
		var buf [binary.MaxVarintLen64]byte
		n := binary.PutUvarint(buf[:], uint64(len(x.args)))
		w.Write(buf[:n])
		if err := encode(w, x.head); err != nil {
			return err
		}
		for _, a := range x.args {
			if err := encode(w, a); err != nil {
				return err
			}
		}
	default:
		return fmt.Errorf("expr: cannot encode %T", e)
	}
	return nil
}

func writeString(w *bufio.Writer, s string) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], uint64(len(s)))
	w.Write(buf[:n])
	w.WriteString(s)
}

func writeBytes(w *bufio.Writer, b []byte) {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], uint64(len(b)))
	w.Write(buf[:n])
	w.Write(b)
}

func writeBigInt(w *bufio.Writer, v *big.Int) {
	writeBytes(w, v.Bytes())
	sign := byte(0)
	if v.Sign() < 0 {
		sign = 1
	}
	w.WriteByte(sign)
}

// Decode reads one expression from r in the format written by Encode.
func Decode(r io.Reader) (Expr, error) {
	br, ok := r.(*bufio.Reader)
	if !ok {
		br = bufio.NewReader(r)
	}
	return decode(br)
}

func decode(r *bufio.Reader) (Expr, error) {
	tag, err := r.ReadByte()
	if err != nil {
		return nil, err
	}
	switch tag {
	case tagSymbol:
		name, err := readString(r)
		if err != nil {
			return nil, err
		}
		return Sym(name), nil
	case tagMachineInt:
		v, err := binary.ReadVarint(r)
		if err != nil {
			return nil, err
		}
		return FromInt64(v), nil
	case tagBigInt:
		v, err := readBigInt(r)
		if err != nil {
			return nil, err
		}
		return FromBig(v), nil
	case tagReal:
		var buf [8]byte
		if _, err := io.ReadFull(r, buf[:]); err != nil {
			return nil, err
		}
		return FromFloat(math.Float64frombits(binary.LittleEndian.Uint64(buf[:]))), nil
	case tagRational:
		num, err := readBigInt(r)
		if err != nil {
			return nil, err
		}
		den, err := readBigInt(r)
		if err != nil {
			return nil, err
		}
		return Ratio(num, den), nil
	case tagComplex:
		var buf [16]byte
		if _, err := io.ReadFull(r, buf[:]); err != nil {
			return nil, err
		}
		return FromComplex(
			math.Float64frombits(binary.LittleEndian.Uint64(buf[:8])),
			math.Float64frombits(binary.LittleEndian.Uint64(buf[8:]))), nil
	case tagString:
		s, err := readString(r)
		if err != nil {
			return nil, err
		}
		return FromString(s), nil
	case tagNormal:
		n, err := binary.ReadUvarint(r)
		if err != nil {
			return nil, err
		}
		if n > 1<<24 {
			return nil, fmt.Errorf("expr: implausible arity %d", n)
		}
		head, err := decode(r)
		if err != nil {
			return nil, err
		}
		args := make([]Expr, n)
		for i := range args {
			if args[i], err = decode(r); err != nil {
				return nil, err
			}
		}
		return &Normal{head: head, args: args}, nil
	}
	return nil, fmt.Errorf("expr: bad tag %d", tag)
}

func readString(r *bufio.Reader) (string, error) {
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return "", err
	}
	if n > 1<<30 {
		return "", fmt.Errorf("expr: implausible string length %d", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

func readBigInt(r *bufio.Reader) (*big.Int, error) {
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return nil, err
	}
	if n > 1<<24 {
		return nil, fmt.Errorf("expr: implausible bigint length %d", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	v := new(big.Int).SetBytes(buf)
	sign, err := r.ReadByte()
	if err != nil {
		return nil, err
	}
	if sign == 1 {
		v.Neg(v)
	}
	return v, nil
}
