package expr

import (
	"bytes"
	"math"
	"math/big"
	"testing"
	"testing/quick"
)

func TestSymbolInterning(t *testing.T) {
	a := Sym("Foo")
	b := Sym("Foo")
	if a != b {
		t.Fatal("symbols with the same name must be identical")
	}
	if Sym("Bar") == a {
		t.Fatal("distinct names must intern distinct symbols")
	}
	if a.Head() != SymSymbol {
		t.Fatalf("Head of symbol = %v", a.Head())
	}
}

func TestIntegerMachineAndBig(t *testing.T) {
	n := FromInt64(42)
	if !n.IsMachine() || n.Int64() != 42 {
		t.Fatalf("machine integer broken: %v", n)
	}
	huge := new(big.Int).Lsh(big.NewInt(1), 100)
	b := FromBig(huge)
	if b.IsMachine() {
		t.Fatal("2^100 must not be machine")
	}
	if b.Big().Cmp(huge) != 0 {
		t.Fatal("big value mismatch")
	}
	// FromBig normalises small values back to machine representation.
	small := FromBig(big.NewInt(-7))
	if !small.IsMachine() || small.Int64() != -7 {
		t.Fatal("FromBig must normalise small values")
	}
	if small.Sign() != -1 || n.Sign() != 1 || FromInt64(0).Sign() != 0 {
		t.Fatal("Sign broken")
	}
}

func TestRatioNormalisation(t *testing.T) {
	// 6/3 reduces to the integer 2.
	e := Ratio(big.NewInt(6), big.NewInt(3))
	n, ok := e.(*Integer)
	if !ok || n.Int64() != 2 {
		t.Fatalf("Ratio(6,3) = %v, want Integer 2", e)
	}
	// 2/4 reduces to 1/2.
	q, ok := Ratio(big.NewInt(2), big.NewInt(4)).(*Rational)
	if !ok || q.String() != "1/2" {
		t.Fatalf("Ratio(2,4) = %v, want 1/2", q)
	}
	// Negative denominators normalise.
	q2, ok := Ratio(big.NewInt(1), big.NewInt(-2)).(*Rational)
	if !ok || q2.String() != "-1/2" {
		t.Fatalf("Ratio(1,-2) = %v, want -1/2", q2)
	}
}

func TestSameQ(t *testing.T) {
	cases := []struct {
		a, b Expr
		want bool
	}{
		{FromInt64(1), FromInt64(1), true},
		{FromInt64(1), FromInt64(2), false},
		{FromInt64(1), FromFloat(1), false},
		{FromFloat(1.5), FromFloat(1.5), true},
		{FromString("x"), FromString("x"), true},
		{FromString("x"), Sym("x"), false},
		{Sym("x"), Sym("x"), true},
		{FromComplex(1, 2), FromComplex(1, 2), true},
		{FromComplex(1, 2), FromComplex(1, 3), false},
		{List(FromInt64(1), FromInt64(2)), List(FromInt64(1), FromInt64(2)), true},
		{List(FromInt64(1)), List(FromInt64(1), FromInt64(2)), false},
		{NewS("f", Sym("x")), NewS("f", Sym("x")), true},
		{NewS("f", Sym("x")), NewS("g", Sym("x")), false},
		{FromBig(new(big.Int).Lsh(big.NewInt(1), 80)), FromBig(new(big.Int).Lsh(big.NewInt(1), 80)), true},
		{FromInt64(5), FromBig(big.NewInt(5)), true},
	}
	for i, c := range cases {
		if got := SameQ(c.a, c.b); got != c.want {
			t.Errorf("case %d: SameQ(%v, %v) = %v, want %v", i, c.a, c.b, got, c.want)
		}
	}
}

func TestHashConsistentWithSameQ(t *testing.T) {
	a := NewS("f", FromInt64(1), List(Sym("x"), FromFloat(2.5)))
	b := NewS("f", FromInt64(1), List(Sym("x"), FromFloat(2.5)))
	if Hash(a) != Hash(b) {
		t.Fatal("structurally equal expressions must hash equal")
	}
	c := NewS("f", FromInt64(2), List(Sym("x"), FromFloat(2.5)))
	if Hash(a) == Hash(c) {
		t.Fatal("hash collision on trivially different expressions (suspicious)")
	}
}

func TestNormalAccessors(t *testing.T) {
	n := NewS("f", FromInt64(1), FromInt64(2), FromInt64(3))
	if n.Len() != 3 {
		t.Fatalf("Len = %d", n.Len())
	}
	if got := n.Arg(2).(*Integer).Int64(); got != 2 {
		t.Fatalf("Arg(2) = %d", got)
	}
	m := n.WithArgs(FromInt64(9))
	if m.Len() != 1 || n.Len() != 3 {
		t.Fatal("WithArgs must not mutate the receiver")
	}
	h := n.WithHead(Sym("g"))
	if h.Head() != Sym("g") || n.Head() != Sym("f") {
		t.Fatal("WithHead must not mutate the receiver")
	}
}

func TestInputForm(t *testing.T) {
	cases := []struct {
		e    Expr
		want string
	}{
		{FromInt64(5), "5"},
		{FromFloat(2), "2."},
		{FromFloat(2.5), "2.5"},
		{FromString("hi\n"), `"hi\n"`},
		{List(FromInt64(1), FromInt64(2)), "{1, 2}"},
		{NewS("Plus", Sym("a"), Sym("b"), Sym("c")), "a + b + c"},
		{NewS("Times", Sym("a"), NewS("Plus", Sym("b"), Sym("c"))), "a*(b + c)"},
		{NewS("Power", Sym("x"), FromInt64(2)), "x^2"},
		{NewS("Part", Sym("a"), FromInt64(1)), "a[[1]]"},
		{NewS("Slot", FromInt64(1)), "#"},
		{NewS("Slot", FromInt64(2)), "#2"},
		{NewS("Function", NewS("Plus", NewS("Slot", FromInt64(1)), FromInt64(1))), "# + 1 &"},
		{NewS("f", Sym("x"), FromInt64(3)), "f[x, 3]"},
		{NewS("Pattern", Sym("x"), NewS("Blank")), "x_"},
		{NewS("Pattern", Sym("x"), NewS("Blank", Sym("Integer"))), "x_Integer"},
		{NewS("Rule", Sym("a"), Sym("b")), "a -> b"},
		{NewS("Set", Sym("a"), FromInt64(1)), "a = 1"},
		{NewS("CompoundExpression", NewS("Set", Sym("a"), FromInt64(1)), Sym("a")), "a = 1;a"},
		{NewS("Minus", Sym("x")), "-x"},
		{NewS("Not", Sym("p")), "!p"},
		{NewS("And", Sym("p"), NewS("Or", Sym("q"), Sym("r"))), "p && (q || r)"},
	}
	for _, c := range cases {
		if got := InputForm(c.e); got != c.want {
			t.Errorf("InputForm(%s) = %q, want %q", FullForm(c.e), got, c.want)
		}
	}
}

func TestFullForm(t *testing.T) {
	e := NewS("Plus", Sym("a"), NewS("Times", FromInt64(2), Sym("b")))
	if got := FullForm(e); got != "Plus[a, Times[2, b]]" {
		t.Fatalf("FullForm = %q", got)
	}
	q := Ratio(big.NewInt(1), big.NewInt(3))
	if got := FullForm(q); got != "Rational[1, 3]" {
		t.Fatalf("FullForm rational = %q", got)
	}
}

func TestWalkAndReplace(t *testing.T) {
	e := NewS("f", NewS("g", Sym("x")), Sym("x"), FromInt64(1))
	count := 0
	Walk(e, func(Expr) bool { count++; return true })
	// Nodes: f[..], f, g[x], g, x, x, 1  => 7
	if count != 7 {
		t.Fatalf("Walk visited %d nodes, want 7", count)
	}
	// Replace x by y everywhere.
	out := Replace(e, func(n Expr) Expr {
		if n == Sym("x") {
			return Sym("y")
		}
		return n
	})
	want := NewS("f", NewS("g", Sym("y")), Sym("y"), FromInt64(1))
	if !SameQ(out, want) {
		t.Fatalf("Replace = %v", out)
	}
	// Original untouched.
	if !SameQ(e, NewS("f", NewS("g", Sym("x")), Sym("x"), FromInt64(1))) {
		t.Fatal("Replace mutated its input")
	}
}

func TestTruthValue(t *testing.T) {
	if v, ok := TruthValue(SymTrue); !v || !ok {
		t.Fatal("True")
	}
	if v, ok := TruthValue(SymFalse); v || !ok {
		t.Fatal("False")
	}
	if _, ok := TruthValue(FromInt64(1)); ok {
		t.Fatal("1 is not boolean")
	}
}

func TestMeta(t *testing.T) {
	m := NewMeta()
	e := NewS("f", Sym("x"))
	m.Set(e, "type", "Integer64")
	if v, ok := m.Get(e, "type"); !ok || v != "Integer64" {
		t.Fatal("metadata get/set broken")
	}
	if _, ok := m.Get(e, "missing"); ok {
		t.Fatal("missing key must not be found")
	}
	dst := NewS("g")
	m.Copy(dst, e)
	if v, _ := m.Get(dst, "type"); v != "Integer64" {
		t.Fatal("metadata copy broken")
	}
}

func TestSerializeRoundTrip(t *testing.T) {
	exprs := []Expr{
		FromInt64(0),
		FromInt64(-123456789),
		FromBig(new(big.Int).Lsh(big.NewInt(-3), 200)),
		FromFloat(math.Pi),
		FromFloat(math.Inf(1)),
		Ratio(big.NewInt(22), big.NewInt(7)),
		FromComplex(1.5, -2.5),
		FromString("hello \"world\"\n"),
		Sym("Plus"),
		List(),
		NewS("f", List(FromInt64(1), FromFloat(2)), NewS("g", Sym("x"))),
	}
	for _, e := range exprs {
		var buf bytes.Buffer
		if err := Encode(&buf, e); err != nil {
			t.Fatalf("encode %v: %v", e, err)
		}
		got, err := Decode(&buf)
		if err != nil {
			t.Fatalf("decode %v: %v", e, err)
		}
		if !SameQ(e, got) {
			t.Fatalf("round trip %v -> %v", e, got)
		}
	}
}

// Property: any integer round-trips through serialisation, and SameQ is
// reflexive on generated trees.
func TestSerializeQuickInt(t *testing.T) {
	f := func(v int64) bool {
		var buf bytes.Buffer
		if err := Encode(&buf, FromInt64(v)); err != nil {
			return false
		}
		got, err := Decode(&buf)
		if err != nil {
			return false
		}
		return SameQ(FromInt64(v), got)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSerializeQuickTree(t *testing.T) {
	f := func(xs []int64, ss []string) bool {
		args := make([]Expr, 0, len(xs)+len(ss))
		for _, v := range xs {
			args = append(args, FromInt64(v))
		}
		for _, s := range ss {
			args = append(args, FromString(s))
		}
		e := NewS("f", List(args...), NewS("g", args...))
		var buf bytes.Buffer
		if err := Encode(&buf, e); err != nil {
			return false
		}
		got, err := Decode(&buf)
		if err != nil {
			return false
		}
		return SameQ(e, got) && Hash(e) == Hash(got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMapLength(t *testing.T) {
	e := List(FromInt64(1), FromInt64(2), FromInt64(3))
	out := Map(func(x Expr) Expr {
		return FromInt64(x.(*Integer).Int64() * 10)
	}, e)
	if !SameQ(out, List(FromInt64(10), FromInt64(20), FromInt64(30))) {
		t.Fatalf("Map = %v", out)
	}
	if Length(e) != 3 || Length(FromInt64(1)) != 0 {
		t.Fatal("Length broken")
	}
	if Map(func(x Expr) Expr { return x }, FromInt64(1)) != FromInt64(1) {
		// atoms pass through by identity? Map returns e unchanged
		t.Log("atom identity not preserved (allowed), checking SameQ instead")
	}
}
