// Package expr implements Wolfram Language expressions (MExprs).
//
// An expression is either an atom (Symbol, Integer, Real, Rational, Complex,
// String) or a Normal expression: a head applied to zero or more arguments,
// written head[arg1, arg2, ...] in the language. Every value in the system —
// programs, data, patterns, types — is an expression, which is what lets the
// compiler treat programs as inert data (the paper's MExpr, §4.2).
//
// All concrete expression types are pointers, so compiler stages can attach
// arbitrary metadata to individual tree nodes through side tables (see Meta).
package expr

import (
	"fmt"
	"math/big"
	"sort"
	"strings"
	"sync"
)

// Expr is a Wolfram Language expression.
type Expr interface {
	// Head returns the head of the expression. For a Normal expression
	// f[x, y] the head is f; for atoms it is the symbol naming the atom's
	// type (Integer, Real, Rational, Complex, String, Symbol).
	Head() Expr
	// String renders the expression in InputForm.
	String() string
	isExpr()
}

// Symbol is an interned named symbol. Two symbols with the same name are the
// same pointer, so symbol identity is pointer identity.
type Symbol struct {
	Name string
}

var (
	symTabMu sync.Mutex
	symTab   = map[string]*Symbol{}
)

// Sym interns and returns the symbol with the given name.
func Sym(name string) *Symbol {
	symTabMu.Lock()
	defer symTabMu.Unlock()
	if s, ok := symTab[name]; ok {
		return s
	}
	s := &Symbol{Name: name}
	symTab[name] = s
	return s
}

// Common system symbols, interned once.
var (
	SymSymbol             = Sym("Symbol")
	SymInteger            = Sym("Integer")
	SymReal               = Sym("Real")
	SymRational           = Sym("Rational")
	SymComplex            = Sym("Complex")
	SymString             = Sym("String")
	SymList               = Sym("List")
	SymTrue               = Sym("True")
	SymFalse              = Sym("False")
	SymNull               = Sym("Null")
	SymFunction           = Sym("Function")
	SymSlot               = Sym("Slot")
	SymBlank              = Sym("Blank")
	SymPattern            = Sym("Pattern")
	SymRule               = Sym("Rule")
	SymRuleDelayed        = Sym("RuleDelayed")
	SymHold               = Sym("Hold")
	SymTyped              = Sym("Typed")
	SymModule             = Sym("Module")
	SymBlock              = Sym("Block")
	SymWith               = Sym("With")
	SymSet                = Sym("Set")
	SymSetDelayed         = Sym("SetDelayed")
	SymCompoundExpression = Sym("CompoundExpression")
	SymIndeterminate      = Sym("Indeterminate")
	SymDirectedInfinity   = Sym("DirectedInfinity")
	SymFailed             = Sym("$Failed")
	SymAborted            = Sym("$Aborted")
	SymOverflow           = Sym("Overflow")
)

func (s *Symbol) Head() Expr     { return SymSymbol }
func (s *Symbol) String() string { return s.Name }
func (s *Symbol) isExpr()        {}

// Integer is an arbitrary-precision integer. Values that fit in an int64 are
// stored unboxed; larger values carry a big.Int. The machine/big distinction
// mirrors the interpreter's automatic promotion on overflow (paper §3 F2).
type Integer struct {
	small int64
	big   *big.Int // nil when the value fits in small
}

// FromInt64 returns the Integer with machine value v.
func FromInt64(v int64) *Integer { return &Integer{small: v} }

// FromBig returns an Integer holding v, normalising to machine representation
// when v fits in an int64.
func FromBig(v *big.Int) *Integer {
	if v.IsInt64() {
		return &Integer{small: v.Int64()}
	}
	return &Integer{big: new(big.Int).Set(v)}
}

// IsMachine reports whether the integer fits in an int64.
func (n *Integer) IsMachine() bool { return n.big == nil }

// Int64 returns the machine value. It is only valid when IsMachine is true.
func (n *Integer) Int64() int64 { return n.small }

// Big returns the value as a big.Int (freshly allocated for machine values).
func (n *Integer) Big() *big.Int {
	if n.big != nil {
		return n.big
	}
	return big.NewInt(n.small)
}

// Sign returns -1, 0, or +1 according to the sign of n.
func (n *Integer) Sign() int {
	if n.big != nil {
		return n.big.Sign()
	}
	switch {
	case n.small < 0:
		return -1
	case n.small > 0:
		return 1
	}
	return 0
}

func (n *Integer) Head() Expr { return SymInteger }
func (n *Integer) String() string {
	if n.big != nil {
		return n.big.String()
	}
	return fmt.Sprintf("%d", n.small)
}
func (n *Integer) isExpr() {}

// Real is a machine double-precision real number.
type Real struct {
	V float64
}

// FromFloat returns the Real with value v.
func FromFloat(v float64) *Real { return &Real{V: v} }

func (r *Real) Head() Expr { return SymReal }
func (r *Real) String() string {
	s := fmt.Sprintf("%g", r.V)
	// InputForm reals always carry a decimal point or exponent.
	if !strings.ContainsAny(s, ".eEI") && !strings.Contains(s, "NaN") {
		s += "."
	}
	return s
}
func (r *Real) isExpr() {}

// Rational is an exact ratio of integers in lowest terms with a positive
// denominator. Integer results are never represented as Rational; arithmetic
// constructors normalise (see Ratio).
type Rational struct {
	V *big.Rat
}

// Ratio returns num/den as an exact number: an Integer when the ratio is
// integral, otherwise a Rational in lowest terms. den must be nonzero.
func Ratio(num, den *big.Int) Expr {
	r := new(big.Rat).SetFrac(num, den)
	if r.IsInt() {
		return FromBig(r.Num())
	}
	return &Rational{V: r}
}

func (q *Rational) Head() Expr     { return SymRational }
func (q *Rational) String() string { return q.V.Num().String() + "/" + q.V.Denom().String() }
func (q *Rational) isExpr()        {}

// Complex is a machine complex number with real and imaginary parts.
type Complex struct {
	Re, Im float64
}

// FromComplex returns the Complex with the given parts.
func FromComplex(re, im float64) *Complex { return &Complex{Re: re, Im: im} }

func (c *Complex) Head() Expr { return SymComplex }
func (c *Complex) String() string {
	return fmt.Sprintf("Complex[%s, %s]", (&Real{V: c.Re}).String(), (&Real{V: c.Im}).String())
}
func (c *Complex) isExpr() {}

// String is a character string atom.
type String struct {
	V string
}

// FromString returns the String atom with value v.
func FromString(v string) *String { return &String{V: v} }

func (s *String) Head() Expr     { return SymString }
func (s *String) String() string { return quoteString(s.V) }
func (s *String) isExpr()        {}

func quoteString(v string) string {
	var b strings.Builder
	b.WriteByte('"')
	for _, r := range v {
		switch r {
		case '"':
			b.WriteString(`\"`)
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		case '\t':
			b.WriteString(`\t`)
		default:
			b.WriteRune(r)
		}
	}
	b.WriteByte('"')
	return b.String()
}

// Normal is a non-atomic expression: a head applied to arguments.
type Normal struct {
	head Expr
	args []Expr
}

// New returns the Normal expression head[args...].
func New(head Expr, args ...Expr) *Normal {
	return &Normal{head: head, args: args}
}

// NewS returns the Normal expression Sym(head)[args...].
func NewS(head string, args ...Expr) *Normal {
	return New(Sym(head), args...)
}

// List returns the expression List[elems...], i.e. {elems...}.
func List(elems ...Expr) *Normal { return New(SymList, elems...) }

func (n *Normal) Head() Expr { return n.head }

// Len returns the number of arguments.
func (n *Normal) Len() int { return len(n.args) }

// Arg returns the i-th argument (1-indexed, as in Part).
func (n *Normal) Arg(i int) Expr { return n.args[i-1] }

// Args returns the argument slice. Callers must not mutate it; use WithArgs
// to build a modified copy.
func (n *Normal) Args() []Expr { return n.args }

// WithArgs returns a copy of n with the given arguments.
func (n *Normal) WithArgs(args ...Expr) *Normal { return &Normal{head: n.head, args: args} }

// WithHead returns a copy of n with the given head.
func (n *Normal) WithHead(head Expr) *Normal { return &Normal{head: head, args: n.args} }

func (n *Normal) isExpr() {}

// Booleans converts a Go bool to True/False.
func Bool(b bool) Expr {
	if b {
		return SymTrue
	}
	return SymFalse
}

// IsNormal reports whether e is a Normal expression with the given symbol
// head, returning it if so.
func IsNormal(e Expr, head *Symbol) (*Normal, bool) {
	n, ok := e.(*Normal)
	if !ok {
		return nil, false
	}
	if h, ok := n.head.(*Symbol); ok && h == head {
		return n, true
	}
	return nil, false
}

// IsNormalN is IsNormal with an additional arity check.
func IsNormalN(e Expr, head *Symbol, arity int) (*Normal, bool) {
	n, ok := IsNormal(e, head)
	if !ok || len(n.args) != arity {
		return nil, false
	}
	return n, true
}

// IsAtom reports whether e is an atomic expression.
func IsAtom(e Expr) bool {
	_, ok := e.(*Normal)
	return !ok
}

// TruthValue reports whether e is the symbol True, and whether it is either
// True or False.
func TruthValue(e Expr) (val, isBool bool) {
	s, ok := e.(*Symbol)
	if !ok {
		return false, false
	}
	if s == SymTrue {
		return true, true
	}
	if s == SymFalse {
		return false, true
	}
	return false, false
}

// SameQ reports structural identity of two expressions (the === predicate).
func SameQ(a, b Expr) bool {
	if a == b {
		return true
	}
	switch x := a.(type) {
	case *Symbol:
		return false // symbols are interned; pointer equality above suffices
	case *Integer:
		y, ok := b.(*Integer)
		if !ok {
			return false
		}
		if x.big == nil && y.big == nil {
			return x.small == y.small
		}
		return x.Big().Cmp(y.Big()) == 0
	case *Real:
		y, ok := b.(*Real)
		return ok && x.V == y.V
	case *Rational:
		y, ok := b.(*Rational)
		return ok && x.V.Cmp(y.V) == 0
	case *Complex:
		y, ok := b.(*Complex)
		return ok && x.Re == y.Re && x.Im == y.Im
	case *String:
		y, ok := b.(*String)
		return ok && x.V == y.V
	case *Normal:
		y, ok := b.(*Normal)
		if !ok || len(x.args) != len(y.args) {
			return false
		}
		if !SameQ(x.head, y.head) {
			return false
		}
		for i := range x.args {
			if !SameQ(x.args[i], y.args[i]) {
				return false
			}
		}
		return true
	}
	return false
}

// Hash returns a structural hash consistent with SameQ.
func Hash(e Expr) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(s string) {
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= prime64
		}
	}
	var walk func(Expr)
	walk = func(e Expr) {
		switch x := e.(type) {
		case *Symbol:
			mix("s:" + x.Name)
		case *Integer:
			mix("i:" + x.String())
		case *Real:
			mix(fmt.Sprintf("r:%x", x.V))
		case *Rational:
			mix("q:" + x.String())
		case *Complex:
			mix(fmt.Sprintf("c:%x,%x", x.Re, x.Im))
		case *String:
			mix("t:" + x.V)
		case *Normal:
			mix("n(")
			walk(x.head)
			for _, a := range x.args {
				mix(",")
				walk(a)
			}
			mix(")")
		}
	}
	walk(e)
	return h
}

// Length returns the number of arguments of e, or 0 for atoms.
func Length(e Expr) int {
	if n, ok := e.(*Normal); ok {
		return len(n.args)
	}
	return 0
}

// Map applies f to each argument of a Normal expression, returning a new
// expression; atoms are returned unchanged.
func Map(f func(Expr) Expr, e Expr) Expr {
	n, ok := e.(*Normal)
	if !ok {
		return e
	}
	args := make([]Expr, len(n.args))
	for i, a := range n.args {
		args[i] = f(a)
	}
	return &Normal{head: n.head, args: args}
}

// Walk calls f on e and every subexpression (head and arguments) in
// depth-first preorder. If f returns false the subtree is not descended.
func Walk(e Expr, f func(Expr) bool) {
	if !f(e) {
		return
	}
	if n, ok := e.(*Normal); ok {
		Walk(n.head, f)
		for _, a := range n.args {
			Walk(a, f)
		}
	}
}

// Replace applies f bottom-up to every node, rebuilding the tree with each
// node replaced by f's result.
func Replace(e Expr, f func(Expr) Expr) Expr {
	if n, ok := e.(*Normal); ok {
		head := Replace(n.head, f)
		args := make([]Expr, len(n.args))
		changed := !SameQ(head, n.head)
		for i, a := range n.args {
			args[i] = Replace(a, f)
			if args[i] != a {
				changed = true
			}
		}
		if changed {
			e = &Normal{head: head, args: args}
		}
	}
	return f(e)
}

// SymbolNames returns the sorted names of all interned symbols; used by
// tests and diagnostics.
func SymbolNames() []string {
	symTabMu.Lock()
	defer symTabMu.Unlock()
	names := make([]string, 0, len(symTab))
	for n := range symTab {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Meta is a metadata side table mapping expression nodes to key/value
// properties. The compiler uses it to attach provenance, binding, and type
// information to AST nodes without modifying the tree (paper §4.2).
type Meta struct {
	m map[Expr]map[string]any
}

// NewMeta returns an empty metadata table.
func NewMeta() *Meta { return &Meta{m: map[Expr]map[string]any{}} }

// Set attaches key=val to node e.
func (t *Meta) Set(e Expr, key string, val any) {
	props := t.m[e]
	if props == nil {
		props = map[string]any{}
		t.m[e] = props
	}
	props[key] = val
}

// Get returns the value for key on node e, if present.
func (t *Meta) Get(e Expr, key string) (any, bool) {
	v, ok := t.m[e][key]
	return v, ok
}

// Copy copies all properties of src onto dst. Used when a transformation
// replaces a node but wants to keep its metadata.
func (t *Meta) Copy(dst, src Expr) {
	for k, v := range t.m[src] {
		t.Set(dst, k, v)
	}
}
