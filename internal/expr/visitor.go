package expr

// Visitor is the MExpr visitor API (paper §4.2): Enter is called before a
// node's children are visited and Leave after. Enter returning false skips
// the subtree. Leave may return a replacement node, rebuilding the tree
// bottom-up; returning the node unchanged keeps it.
type Visitor interface {
	Enter(e Expr) bool
	Leave(e Expr) Expr
}

// Visit traverses e with v, returning the (possibly rebuilt) tree.
func Visit(e Expr, v Visitor) Expr {
	if !v.Enter(e) {
		return v.Leave(e)
	}
	if n, ok := e.(*Normal); ok {
		head := Visit(n.head, v)
		args := make([]Expr, len(n.args))
		changed := !SameQ(head, n.head)
		for i, a := range n.args {
			args[i] = Visit(a, v)
			if args[i] != a {
				changed = true
			}
		}
		if changed {
			e = &Normal{head: head, args: args}
		}
	}
	return v.Leave(e)
}

// FuncVisitor adapts plain functions to the Visitor interface; nil fields
// default to "descend" and "keep".
type FuncVisitor struct {
	OnEnter func(Expr) bool
	OnLeave func(Expr) Expr
}

func (f FuncVisitor) Enter(e Expr) bool {
	if f.OnEnter == nil {
		return true
	}
	return f.OnEnter(e)
}

func (f FuncVisitor) Leave(e Expr) Expr {
	if f.OnLeave == nil {
		return e
	}
	return f.OnLeave(e)
}
