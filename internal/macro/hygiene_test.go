package macro

import (
	"strings"
	"testing"

	"wolfc/internal/expr"
	"wolfc/internal/parser"
)

// Adversarial hygiene: user code that reuses the exact binder names of the
// macro templates (caI, caN, caL, foldAcc, ...) must expand without
// capture — every template-introduced Module binder is renamed away from
// any symbol the user mentions.

// templateBinders collects Module-bound symbols of an expansion that carry
// the hygienic rename marker.
func hasCapture(e expr.Expr, userNames map[string]bool) (captured string) {
	expr.Walk(e, func(x expr.Expr) bool {
		n, ok := expr.IsNormal(x, expr.SymModule)
		if !ok || n.Len() < 2 {
			return true
		}
		l, ok := expr.IsNormal(n.Arg(1), expr.SymList)
		if !ok {
			return true
		}
		for _, init := range l.Args() {
			sym := init
			if st, ok := expr.IsNormalN(init, expr.SymSet, 2); ok {
				sym = st.Arg(1)
			}
			if s, ok := sym.(*expr.Symbol); ok {
				// A template binder that still carries a user-visible name
				// (no ` rename) shadows the user's variable: capture.
				if userNames[s.Name] {
					captured = s.Name
				}
			}
		}
		return true
	})
	return captured
}

func TestMacroHygieneAdversarialNames(t *testing.T) {
	// Each source uses the template's own binder names as user variables.
	srcs := []string{
		// ConstantArray's template binds caL/caN/caI.
		`Module[{caI = 7, caN = 8, caL = 9}, ConstantArray[caI + caN, caL]]`,
		// Map/Table-style loops.
		`Module[{caI = 1}, Map[Function[{x}, x + caI], ConstantArray[0, 3]]]`,
		// Fold/Nest accumulators.
		`Module[{acc = 2}, Fold[Plus, acc, ConstantArray[acc, 4]]]`,
		// Nested expansion: a macro inside a macro's argument.
		`ConstantArray[ConstantArray[1, 2][[1]], 3]`,
		// The random-walk NestList form from Figure 1.
		`Module[{caI = 0}, NestList[Function[{x}, x + caI], 0., 5]]`,
	}
	env := DefaultEnv()
	for _, src := range srcs {
		e := parser.MustParse(src)
		users := map[string]bool{}
		expr.Walk(e, func(x expr.Expr) bool {
			if s, ok := x.(*expr.Symbol); ok && !strings.Contains(s.Name, "`") {
				users[s.Name] = true
			}
			return true
		})
		out, err := env.Expand(e, nil)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		// Drop names the user already bound via their own Module: their
		// binders legitimately stay.
		delete(users, "Module")
		if cap := hasCaptureOutsideUserModules(out, e, users); cap != "" {
			t.Fatalf("template binder %q captures a user variable in\n%s\n->\n%s",
				cap, src, expr.FullForm(out))
		}
	}
}

// hasCaptureOutsideUserModules reports a template-introduced binder that
// collides with a user symbol. User-written Modules (present in the input)
// keep their binders, so only Modules absent from the input are checked.
func hasCaptureOutsideUserModules(out, in expr.Expr, users map[string]bool) string {
	// Collect user module binders from the original source.
	userBinders := map[string]bool{}
	expr.Walk(in, func(x expr.Expr) bool {
		n, ok := expr.IsNormal(x, expr.SymModule)
		if !ok || n.Len() < 2 {
			return true
		}
		if l, ok := expr.IsNormal(n.Arg(1), expr.SymList); ok {
			for _, init := range l.Args() {
				sym := init
				if st, ok := expr.IsNormalN(init, expr.SymSet, 2); ok {
					sym = st.Arg(1)
				}
				if s, ok := sym.(*expr.Symbol); ok {
					userBinders[s.Name] = true
				}
			}
		}
		return true
	})
	filtered := map[string]bool{}
	for name := range users {
		if !userBinders[name] {
			filtered[name] = true
		}
	}
	return hasCapture(out, filtered)
}

func TestMacroExpansionIdempotent(t *testing.T) {
	// Expanding an already-expanded program changes nothing: the templates
	// only produce core forms.
	env := DefaultEnv()
	srcs := []string{
		`ConstantArray[0, 5]`,
		`Map[Function[{x}, x*x], ConstantArray[1, 4]]`,
		`Fold[Plus, 0, ConstantArray[2, 3]]`,
		`Table[i*i, {i, 1, 10}]`,
		`Sum[i, {i, 1, 10}]`,
	}
	for _, src := range srcs {
		once, err := env.Expand(parser.MustParse(src), nil)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		twice, err := env.Expand(once, nil)
		if err != nil {
			t.Fatalf("%s (second expansion): %v", src, err)
		}
		if !expr.SameQ(once, twice) {
			t.Fatalf("expansion of %s is not idempotent:\n%s\nvs\n%s",
				src, expr.FullForm(once), expr.FullForm(twice))
		}
	}
}
