package macro

import (
	"strings"
	"testing"

	"wolfc/internal/expr"
	"wolfc/internal/parser"
	"wolfc/internal/pattern"
)

func expand(t *testing.T, src string) string {
	t.Helper()
	env := DefaultEnv()
	out, err := env.Expand(parser.MustParse(src), nil)
	if err != nil {
		t.Fatalf("expand %q: %v", src, err)
	}
	return expr.FullForm(ExpandSlots(out))
}

func TestAndMacroFromPaper(t *testing.T) {
	// §4.2: the six And rules.
	cases := map[string]string{
		// Rule 2/3: constant folding.
		"And[False, a]": "False",
		"And[a, False]": "False",
		// Rule 4: skip a leading True. And[True, a] -> And[a] -> a === True.
		"And[True, a]": "SameQ[a, True]",
		// Rule 1: unary.
		"And[a]": "SameQ[a, True]",
		// Rule 5: short circuit.
		"And[a, b]": "If[SameQ[a, True], SameQ[b, True], False]",
		// Rule 6: n-ary nesting (then rule 5 twice).
		"And[a, b, c]": "If[SameQ[If[SameQ[a, True], SameQ[b, True], False], True], SameQ[c, True], False]",
	}
	for src, want := range cases {
		if got := expand(t, src); got != want {
			t.Errorf("expand(%s) = %s, want %s", src, got, want)
		}
	}
}

func TestIfConstantFolding(t *testing.T) {
	cases := map[string]string{
		"If[True, a, b]":  "a",
		"If[False, a, b]": "b",
		"If[True, a]":     "a",
		"If[False, a]":    "Null",
		"Not[Not[p]]":     "SameQ[p, True]",
	}
	for src, want := range cases {
		if got := expand(t, src); got != want {
			t.Errorf("expand(%s) = %s, want %s", src, got, want)
		}
	}
}

func TestLoopDesugaring(t *testing.T) {
	got := expand(t, "For[i = 0, i < 5, i = i + 1, f[i]]")
	if !strings.Contains(got, "While[Less[i, 5]") {
		t.Fatalf("For should lower to While: %s", got)
	}
	got = expand(t, "Do[f[j], {j, 1, 10}]")
	if !strings.Contains(got, "While[LessEqual[j,") || !strings.Contains(got, "Module[") {
		t.Fatalf("Do should lower to Module+While: %s", got)
	}
}

func TestIncrementHygiene(t *testing.T) {
	// The `old` temporary introduced by the Increment macro must not
	// capture a user variable also named old.
	got := expand(t, "Module[{old = 5}, old + Increment[old]]")
	// The expansion introduces a fresh name like old`h1, distinct from the
	// user's old.
	if !strings.Contains(got, "old`h") {
		t.Fatalf("expected hygienic rename in %s", got)
	}
	// The user's own 'old' must still appear.
	if !strings.Contains(got, "Set[old, Plus[old, 1]]") {
		t.Fatalf("user variable mangled: %s", got)
	}
}

func TestSlotFunctionNormalisation(t *testing.T) {
	got := expand(t, "(#1 + #2 &)[3, 4]")
	if strings.Contains(got, "Slot") {
		t.Fatalf("slots must be eliminated: %s", got)
	}
	if !strings.Contains(got, "Function[List[slot`h") {
		t.Fatalf("expected named-parameter Function: %s", got)
	}
	// Nested slot functions keep their slots separate.
	nested := expand(t, "(Map[# + 1 &, #] &)[{1, 2}]")
	if strings.Contains(nested, "Slot") {
		t.Fatalf("nested slots must be eliminated: %s", nested)
	}
}

func TestFunctionalPrimitiveLowering(t *testing.T) {
	for src, needle := range map[string]string{
		"Map[f, lst]":         "Native`ListNew",
		"Fold[f, x, lst]":     "While[LessEqual[",
		"NestList[f, x, 10]":  "Native`SetPartUnsafe",
		"Table[i^2, {i, 10}]": "Native`ListNew",
		"Total[v]":            "Native`PartUnsafe[v, 1]",
	} {
		got := expand(t, src)
		if !strings.Contains(got, needle) {
			t.Errorf("expand(%s) missing %q:\n%s", src, needle, got)
		}
	}
}

func TestConditionedMacro(t *testing.T) {
	// Paper §4.7: a macro predicated on the TargetSystem option rewrites
	// Map to CUDA`Map only when compiling for CUDA.
	env := NewEnv(DefaultEnv())
	env.RegisterConditioned(expr.Sym("Map"),
		func(opts map[string]expr.Expr) bool {
			v, ok := opts["TargetSystem"]
			return ok && expr.SameQ(v, expr.FromString("CUDA"))
		},
		pattern.Rule{
			LHS: parser.MustParse("Map[f_, lst_]"),
			RHS: parser.MustParse("CUDA`Map[f, lst]"),
		})

	cuda := map[string]expr.Expr{"TargetSystem": expr.FromString("CUDA")}
	out, err := env.Expand(parser.MustParse("Map[g, data]"), cuda)
	if err != nil {
		t.Fatal(err)
	}
	if expr.FullForm(out) != "CUDA`Map[g, data]" {
		t.Fatalf("CUDA map = %s", expr.FullForm(out))
	}
	// Without the option the default lowering applies.
	out, err = env.Expand(parser.MustParse("Map[g, data]"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(expr.FullForm(out), "CUDA") {
		t.Fatalf("CUDA macro leaked into default compile: %s", expr.FullForm(out))
	}
}

func TestUserEnvOverridesDefault(t *testing.T) {
	// A user environment chained onto the default wins for its heads.
	env := NewEnv(DefaultEnv())
	env.Register(expr.Sym("Square"), pattern.Rule{
		LHS: parser.MustParse("Square[x_]"),
		RHS: parser.MustParse("x*x"),
	})
	out, err := env.Expand(parser.MustParse("Square[3 + a]"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if expr.FullForm(out) != "Times[Plus[3, a], Plus[3, a]]" {
		t.Fatalf("user macro = %s", expr.FullForm(out))
	}
}

func TestFixedPointTermination(t *testing.T) {
	// A pathological self-rewriting macro must hit the round cap, not hang.
	env := NewEnv(nil)
	env.Register(expr.Sym("Loop"), pattern.Rule{
		LHS: parser.MustParse("Loop[x_]"),
		RHS: parser.MustParse("Loop[Loop[x]]"),
	})
	if _, err := env.Expand(parser.MustParse("Loop[1]"), nil); err == nil {
		t.Fatal("divergent macro must be reported")
	}
}

func TestWhichLowering(t *testing.T) {
	got := expand(t, "Which[a, 1, b, 2]")
	want := "If[SameQ[a, True], 1, If[SameQ[b, True], 2, Null]]"
	if got != want {
		t.Fatalf("Which = %s, want %s", got, want)
	}
}

func TestComparisonChains(t *testing.T) {
	got := expand(t, "Less[a, b, c]")
	if !strings.Contains(got, "Less[a, b]") || !strings.Contains(got, "Less[b, c]") {
		t.Fatalf("chain = %s", got)
	}
}
