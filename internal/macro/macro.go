// Package macro implements the compiler's hygienic pattern-based macro
// system (paper §4.2). Macros mimic the engine's pattern substitution with
// one key distinction: substitution is hygienic — variables introduced by a
// macro expansion are renamed so they cannot capture user variables.
//
// Macros serve two purposes: desugaring high-level constructs to primitive
// forms, and "always-safe" AST-level optimisations. They are applied in
// depth-first order until a fixed point is reached.
package macro

import (
	"fmt"
	"sync/atomic"

	"wolfc/internal/diag"
	"wolfc/internal/expr"
	"wolfc/internal/pattern"
)

// Macro is one rewrite rule with an optional applicability predicate
// (Conditioned in the paper §4.7: rules can be predicated on compile
// options or analyses).
type Macro struct {
	Rule pattern.Rule
	// When returns whether the rule is enabled for the given compile
	// options; nil means always enabled.
	When func(opts map[string]expr.Expr) bool
}

// Env is a macro environment: an ordered map from head symbols to their
// macro rules. Environments chain to a parent, so user environments extend
// the compiler's default environment without mutating it (paper §4.7).
type Env struct {
	parent *Env
	rules  map[*expr.Symbol][]Macro
	// CondEval evaluates Condition tests inside macro patterns; optional.
	CondEval pattern.CondFunc
	// sig is a running content hash over registrations, combined across
	// the chain by Sig to key the process-wide compile cache.
	sig uint64
}

// NewEnv returns an empty macro environment chained to parent (nil for a
// root environment).
func NewEnv(parent *Env) *Env {
	return &Env{parent: parent, rules: map[*expr.Symbol][]Macro{}}
}

// bumpSig folds registration content into the signature (FNV-1a).
func (e *Env) bumpSig(parts ...string) {
	h := e.sig
	if h == 0 {
		h = 14695981039346656037
	}
	for _, p := range parts {
		for i := 0; i < len(p); i++ {
			h ^= uint64(p[i])
			h *= 1099511628211
		}
		h ^= 0xff
		h *= 1099511628211
	}
	e.sig = h
}

// Sig returns the chain's registration signature: environments with equal
// signatures have registered the same rules in the same order. Conditioned
// rules additionally mix in a per-registration marker, since their Go
// predicate closures cannot be content-hashed; two conditioned
// registrations therefore never alias in the compile cache.
func (e *Env) Sig() uint64 {
	var h uint64 = 14695981039346656037
	for env := e; env != nil; env = env.parent {
		h ^= env.sig
		h *= 1099511628211
	}
	return h
}

var condSigCounter int64

// Register adds macro rules for the given head, preserving the paper's rule
// ordering: rules are matched most-specific first within one registration
// batch, and earlier batches take priority.
func (e *Env) Register(head *expr.Symbol, rules ...pattern.Rule) {
	ms := make([]Macro, len(rules))
	prs := append([]pattern.Rule{}, rules...)
	pattern.SortRules(prs)
	for i, r := range prs {
		ms[i] = Macro{Rule: r}
		e.bumpSig("rule", head.Name, expr.FullForm(r.LHS), expr.FullForm(r.RHS))
	}
	e.rules[head] = append(e.rules[head], ms...)
}

// RegisterConditioned adds a macro gated on compile options (paper §4.7's
// Conditioned decorator).
func (e *Env) RegisterConditioned(head *expr.Symbol, when func(opts map[string]expr.Expr) bool, rules ...pattern.Rule) {
	for _, r := range rules {
		e.rules[head] = append(e.rules[head], Macro{Rule: r, When: when})
		e.bumpSig("cond", head.Name, expr.FullForm(r.LHS), expr.FullForm(r.RHS),
			fmt.Sprint(atomic.AddInt64(&condSigCounter, 1)))
	}
}

// rulesFor returns all rules visible for head, nearest environment first.
func (e *Env) rulesFor(head *expr.Symbol) []Macro {
	var out []Macro
	for env := e; env != nil; env = env.parent {
		out = append(out, env.rules[head]...)
	}
	return out
}

var hygieneCounter int64

// freshSym returns a hygienic rename of base that cannot collide with user
// symbols (user code cannot contain the marker).
func freshSym(base *expr.Symbol) *expr.Symbol {
	n := atomic.AddInt64(&hygieneCounter, 1)
	return expr.Sym(fmt.Sprintf("%s`h%d", base.Name, n))
}

// Expand rewrites e with the environment's macros, depth-first, to a fixed
// point (paper §4.2: "Macros are evaluated in depth-first order and
// terminate when a fixed point is reached"). opts are the compile options
// consulted by conditioned macros.
func (e *Env) Expand(root expr.Expr, opts map[string]expr.Expr) (expr.Expr, error) {
	return e.ExpandSource(root, opts, nil)
}

// ExpandSource is Expand with source-span propagation: every node rebuilt
// during expansion (children changed, or a macro fired) inherits the span of
// the node it replaced, so positions recorded by the parser survive into the
// expanded tree. A nil src disables propagation at zero cost.
func (e *Env) ExpandSource(root expr.Expr, opts map[string]expr.Expr, src *diag.Source) (expr.Expr, error) {
	const maxRounds = 10_000
	rounds := 0
	var rewrite func(x expr.Expr) (expr.Expr, error)
	rewrite = func(x expr.Expr) (expr.Expr, error) {
		for {
			rounds++
			if rounds > maxRounds {
				return nil, diag.Newf(diag.MacroStage, "M001",
					"macro expansion did not reach a fixed point (last at %s)",
					expr.InputForm(x)).WithSubject(x)
			}
			// Depth-first: expand children first.
			if n, ok := x.(*expr.Normal); ok {
				head, err := rewrite(n.Head())
				if err != nil {
					return nil, err
				}
				changed := !expr.SameQ(head, n.Head())
				args := make([]expr.Expr, n.Len())
				for i := 1; i <= n.Len(); i++ {
					a, err := rewrite(n.Arg(i))
					if err != nil {
						return nil, err
					}
					args[i-1] = a
					if !expr.SameQ(a, n.Arg(i)) {
						changed = true
					}
				}
				if changed {
					rebuilt := expr.New(head, args...)
					src.CopySpan(rebuilt, x)
					x = rebuilt
				}
			}
			out, fired, err := e.expandOnce(x, opts)
			if err != nil {
				return nil, err
			}
			if !fired {
				return x, nil
			}
			src.CopySpan(out, x)
			x = out
		}
	}
	return rewrite(root)
}

// expandOnce applies the first matching macro at the root of x.
func (e *Env) expandOnce(x expr.Expr, opts map[string]expr.Expr) (expr.Expr, bool, error) {
	n, ok := x.(*expr.Normal)
	if !ok {
		return x, false, nil
	}
	head, ok := n.Head().(*expr.Symbol)
	if !ok {
		return x, false, nil
	}
	for _, m := range e.rulesFor(head) {
		if m.When != nil && !m.When(opts) {
			continue
		}
		b, matched := pattern.MatchCond(m.Rule.LHS, x, e.CondEval)
		if !matched {
			continue
		}
		out := hygienicSubstitute(m.Rule.RHS, b)
		if expr.SameQ(out, x) {
			continue // identity rewrite; try the next rule to avoid loops
		}
		return out, true, nil
	}
	return x, false, nil
}

// hygienicSubstitute substitutes bindings into the macro template while
// renaming template-introduced binders (Module/With locals written in the
// template itself) to fresh names, so expansions cannot capture user
// variables (paper §4.2, hygiene).
func hygienicSubstitute(template expr.Expr, b pattern.Bindings) expr.Expr {
	renames := pattern.Bindings{}
	collectTemplateBinders(template, b, renames)
	if len(renames) > 0 {
		template = pattern.Substitute(template, renames)
	}
	return pattern.Substitute(template, b)
}

// collectTemplateBinders finds symbols bound by scoping constructs that are
// written literally in the template (not bound from the matched input) and
// assigns them fresh names.
func collectTemplateBinders(t expr.Expr, b pattern.Bindings, renames pattern.Bindings) {
	n, ok := t.(*expr.Normal)
	if !ok {
		return
	}
	if h, ok := n.Head().(*expr.Symbol); ok && (h == expr.SymModule || h == expr.SymWith || h == expr.SymBlock) && n.Len() == 2 {
		if vars, ok := expr.IsNormal(n.Arg(1), expr.SymList); ok {
			for _, v := range vars.Args() {
				var name *expr.Symbol
				switch x := v.(type) {
				case *expr.Symbol:
					name = x
				case *expr.Normal:
					if s, ok := expr.IsNormalN(x, expr.SymSet, 2); ok {
						name, _ = s.Arg(1).(*expr.Symbol)
					}
				}
				if name == nil {
					continue
				}
				if _, fromInput := b[name]; fromInput {
					continue // bound from user code; not template-introduced
				}
				if _, done := renames[name]; !done {
					renames[name] = freshSym(name)
				}
			}
		}
	}
	collectTemplateBinders(n.Head(), b, renames)
	for _, a := range n.Args() {
		collectTemplateBinders(a, b, renames)
	}
}
