package macro

import (
	"wolfc/internal/diag"
	"wolfc/internal/expr"
	"wolfc/internal/parser"
	"wolfc/internal/pattern"
)

// DefaultEnv builds the compiler's bundled macro environment (paper §4.2:
// "macros are registered within an environment (a default environment
// bundled by the compiler)"). It desugars high-level constructs into the
// primitive forms the WIR lowering understands, and performs always-safe
// AST-level optimisations.
func DefaultEnv() *Env {
	e := NewEnv(nil)
	reg := func(head, lhs, rhs string) {
		e.Register(expr.Sym(head), pattern.Rule{
			LHS: parser.MustParse(lhs),
			RHS: parser.MustParse(rhs),
		})
	}

	// The paper's And macro, verbatim (§4.2): desugar n-ary And to nested
	// short-circuit Ifs with constant folding.
	reg("And", "And[x_]", "x === True")
	reg("And", "And[False, __]", "False")
	reg("And", "And[_, False]", "False")
	reg("And", "And[True, rest__]", "And[rest]")
	reg("And", "And[x_, y_]", "If[x === True, y === True, False]")
	reg("And", "And[x_, y_, rest__]", "And[And[x, y], rest]")

	// Or, symmetrically.
	reg("Or", "Or[x_]", "x === True")
	reg("Or", "Or[True, __]", "True")
	reg("Or", "Or[_, True]", "True")
	reg("Or", "Or[False, rest__]", "Or[rest]")
	reg("Or", "Or[x_, y_]", "If[x === True, True, y === True]")
	reg("Or", "Or[x_, y_, rest__]", "Or[Or[x, y], rest]")

	// Always-safe If optimisations (dead-branch deletion at AST level).
	reg("If", "If[True, t_]", "t")
	reg("If", "If[True, t_, _]", "t")
	reg("If", "If[False, _]", "Null")
	reg("If", "If[False, _, f_]", "f")
	reg("Not", "Not[True]", "False")
	reg("Not", "Not[False]", "True")
	reg("Not", "Not[Not[x_]]", "x === True")

	// Unary arithmetic simplifications, and n-ary chains folded to the
	// binary primitives the type environment declares.
	reg("Plus", "Plus[x_]", "x")
	reg("Times", "Times[x_]", "x")
	reg("Plus", "Plus[a_, b_, rest__]", "Plus[Plus[a, b], rest]")
	reg("Times", "Times[a_, b_, rest__]", "Times[Times[a, b], rest]")
	reg("StringJoin", "StringJoin[a_, b_, rest__]", "StringJoin[StringJoin[a, b], rest]")
	reg("Min", "Min[a_, b_, rest__]", "Min[Min[a, b], rest]")
	reg("Max", "Max[a_, b_, rest__]", "Max[Max[a, b], rest]")
	reg("Min", "Min[x_]", "x")
	reg("Max", "Max[x_]", "x")
	reg("Minus", "Minus[Minus[x_]]", "x")

	// Mutating shorthands. Template-local Module variables (old) are
	// hygienically renamed at expansion.
	reg("Increment", "Increment[i_]", "Module[{old = i}, i = i + 1; old]")
	reg("Decrement", "Decrement[i_]", "Module[{old = i}, i = i - 1; old]")
	reg("PreIncrement", "PreIncrement[i_]", "i = i + 1")
	reg("PreDecrement", "PreDecrement[i_]", "i = i - 1")
	reg("AddTo", "AddTo[i_, v_]", "i = i + v")
	reg("SubtractFrom", "SubtractFrom[i_, v_]", "i = i - v")
	reg("TimesBy", "TimesBy[i_, v_]", "i = i*v")
	reg("DivideBy", "DivideBy[i_, v_]", "i = i/v")

	// Loop desugarings to the primitive While.
	reg("For", "For[init_, test_, incr_, body_]",
		"init; While[test, body; incr]")
	reg("For", "For[init_, test_, incr_]",
		"init; While[test, incr]")
	reg("Do", "Do[body_, {i_Symbol, a_, b_}]",
		"Module[{i = a, doMax = b}, While[i <= doMax, body; i = i + 1]]")
	reg("Do", "Do[body_, {i_Symbol, a_, b_, d_}]",
		"Module[{i = a, doMax = b, doStep = d}, While[If[doStep > 0, i <= doMax, i >= doMax], body; i = i + doStep]]")
	reg("Do", "Do[body_, {i_Symbol, b_}]",
		"Do[body, {i, 1, b}]")
	reg("Do", "Do[body_, {b_}]",
		"Module[{doIdx = 1, doMax = b}, While[doIdx <= doMax, body; doIdx = doIdx + 1]]")
	reg("Do", "Do[body_, b_Integer]",
		"Do[body, {b}]")

	// Boole and friends.
	reg("Boole", "Boole[b_]", "If[b === True, 1, 0]")

	// Which → nested If.
	reg("Which", "Which[]", "Null")
	reg("Which", "Which[c_, v_, rest___]", "If[c === True, v, Which[rest]]")

	// Comparison chains desugar to conjunctions (a < b < c).
	for _, cmp := range []string{"Less", "LessEqual", "Greater", "GreaterEqual", "Equal", "Unequal"} {
		reg(cmp, cmp+"[a_, b_, c_, rest___]",
			"And["+cmp+"[a, b], "+cmp+"[b, c, rest]]")
	}

	// Slot-style pure functions normalise to named parameters so binding
	// analysis sees ordinary Function forms. Up to three slots are
	// supported; higher arities are rare in compiled code.
	e.Register(expr.Sym("Function"), pattern.Rule{
		LHS: parser.MustParse("Function[body_]"),
		RHS: parser.MustParse("Native`SlotFunction[body]"),
	})

	// Functional primitives are lowered to explicit loops over the
	// runtime's list operations. These expansions are what lets the new
	// compiler support code the bytecode compiler cannot (function values,
	// paper §3 F6, §6 QSort).
	reg("Map", "Map[f_, lst_]",
		`Module[{mapN = Length[lst], mapOut = Native`+"`"+`ListNew[Length[lst]], mapI = 1},
			While[mapI <= mapN,
				Native`+"`"+`SetPartUnsafe[mapOut, mapI, f[Native`+"`"+`PartUnsafe[lst, mapI]]];
				mapI = mapI + 1];
			mapOut]`)
	reg("Fold", "Fold[f_, x0_, lst_]",
		`Module[{foldAcc = x0, foldI = 1, foldN = Length[lst]},
			While[foldI <= foldN,
				foldAcc = f[foldAcc, Native`+"`"+`PartUnsafe[lst, foldI]];
				foldI = foldI + 1];
			foldAcc]`)
	reg("Nest", "Nest[f_, x0_, n_]",
		`Module[{nestAcc = x0, nestI = 0, nestN = n},
			While[nestI < nestN, nestAcc = f[nestAcc]; nestI = nestI + 1];
			nestAcc]`)
	reg("NestList", "NestList[f_, x0_, n_]",
		`Module[{nlAcc = x0, nlI = 1, nlN = n, nlOut = Native`+"`"+`ListNew[n + 1]},
			Native`+"`"+`SetPartUnsafe[nlOut, 1, nlAcc];
			While[nlI <= nlN,
				nlAcc = f[nlAcc];
				Native`+"`"+`SetPartUnsafe[nlOut, nlI + 1, nlAcc];
				nlI = nlI + 1];
			nlOut]`)
	reg("NestWhile", "NestWhile[f_, x0_, test_]",
		`Module[{nwAcc = x0},
			While[test[nwAcc] === True, nwAcc = f[nwAcc]];
			nwAcc]`)
	reg("FoldList", "FoldList[f_, x0_, lst_]",
		`Module[{flAcc = x0, flI = 1, flN = Length[lst], flOut = Native`+"`"+`ListNew[Length[lst] + 1]},
			Native`+"`"+`SetPartUnsafe[flOut, 1, flAcc];
			While[flI <= flN,
				flAcc = f[flAcc, Native`+"`"+`PartUnsafe[lst, flI]];
				Native`+"`"+`SetPartUnsafe[flOut, flI + 1, flAcc];
				flI = flI + 1];
			flOut]`)
	reg("Total", "Total[lst_]",
		`Module[{totAcc = Native`+"`"+`PartUnsafe[lst, 1], totI = 2, totN = Length[lst]},
			While[totI <= totN, totAcc = totAcc + Native`+"`"+`PartUnsafe[lst, totI]; totI = totI + 1];
			totAcc]`)
	reg("Table", "Table[body_, {i_Symbol, a_, b_}]",
		`Module[{i = a, tblMax = b, tblK = 1, tblOut = Native`+"`"+`ListNew[b - a + 1]},
			While[i <= tblMax,
				Native`+"`"+`SetPartUnsafe[tblOut, tblK, body];
				tblK = tblK + 1;
				i = i + 1];
			tblOut]`)
	reg("Table", "Table[body_, {i_Symbol, b_}]", "Table[body, {i, 1, b}]")
	reg("Range", "Range[n_]", "Table[rangeI, {rangeI, 1, n}]")

	// Structural list operations, each a fresh-storage loop over the
	// Native primitives (the same lowering scheme as Map).
	reg("First", "First[lst_]", "lst[[1]]")
	reg("Last", "Last[lst_]", "lst[[-1]]")
	reg("Reverse", "Reverse[lst_]",
		`Module[{revN = Length[lst], revOut = Native`+"`"+`ListNew[Length[lst]], revI = 1},
			While[revI <= revN,
				Native`+"`"+`SetPartUnsafe[revOut, revI, Native`+"`"+`PartUnsafe[lst, revN - revI + 1]];
				revI = revI + 1];
			revOut]`)
	reg("Rest", "Rest[lst_]", "Drop[lst, 1]")
	reg("Most", "Most[lst_]", "Native`ListTake[lst, Length[lst] - 1]")
	reg("Drop", "Drop[lst_, k_]",
		`Module[{drpK = k, drpN = Length[lst] - k, drpOut = Native`+"`"+`ListNew[Length[lst] - k], drpI = 1},
			While[drpI <= drpN,
				Native`+"`"+`SetPartUnsafe[drpOut, drpI, Native`+"`"+`PartUnsafe[lst, drpI + drpK]];
				drpI = drpI + 1];
			drpOut]`)
	reg("MapIndexed", "MapIndexed[f_, lst_]",
		`Module[{miN = Length[lst], miOut = Native`+"`"+`ListNew[Length[lst]], miI = 1},
			While[miI <= miN,
				Native`+"`"+`SetPartUnsafe[miOut, miI, f[Native`+"`"+`PartUnsafe[lst, miI], {miI}]];
				miI = miI + 1];
			miOut]`)
	// Partition a vector into a k-column matrix, discarding the remainder
	// (the engine's Partition[v, k] semantics).
	reg("Partition", "Partition[lst_, k_]",
		`Module[{ptK = k, ptR = Quotient[Length[lst], k], ptOut = Native`+"`"+`MatrixNew[Quotient[Length[lst], k], k], ptI = 1, ptJ = 1},
			While[ptI <= ptR,
				ptJ = 1;
				While[ptJ <= ptK,
					Native`+"`"+`SetPartUnsafe[ptOut, ptI, ptJ, Native`+"`"+`PartUnsafe[lst, (ptI - 1)*ptK + ptJ]];
					ptJ = ptJ + 1];
				ptI = ptI + 1];
			ptOut]`)
	reg("Transpose", "Transpose[m_]",
		`Module[{trR = Length[m], trC = Length[m[[1]]], trOut = Native`+"`"+`MatrixNew[Length[m[[1]]], Length[m]], trI = 1, trJ = 1},
			While[trI <= trR,
				trJ = 1;
				While[trJ <= trC,
					Native`+"`"+`SetPartUnsafe[trOut, trJ, trI, m[[trI, trJ]]];
					trJ = trJ + 1];
				trI = trI + 1];
			trOut]`)

	// Span slicing v[[a ;; b]]: a fresh copy of the index range, with
	// negative endpoints resolved from the end as the engine does.
	reg("Part", "Part[lst_, Span[a_, b_]]",
		`Module[{spA = a, spB = b, spN = Length[lst], spOut, spI = 1},
			If[spA < 0, spA = spN + 1 + spA];
			If[spB < 0, spB = spN + 1 + spB];
			spOut = Native`+"`"+`ListNew[spB - spA + 1];
			While[spI <= spB - spA + 1,
				Native`+"`"+`SetPartUnsafe[spOut, spI, lst[[spA + spI - 1]]];
				spI = spI + 1];
			spOut]`)
	reg("Join", "Join[a_, b_, rest__]", "Join[Join[a, b], rest]")
	reg("Join", "Join[a_, b_]",
		`Module[{jnA = Length[a], jnB = Length[b], jnOut = Native`+"`"+`ListNew[Length[a] + Length[b]], jnI = 1},
			While[jnI <= jnA,
				Native`+"`"+`SetPartUnsafe[jnOut, jnI, Native`+"`"+`PartUnsafe[a, jnI]];
				jnI = jnI + 1];
			jnI = 1;
			While[jnI <= jnB,
				Native`+"`"+`SetPartUnsafe[jnOut, jnA + jnI, Native`+"`"+`PartUnsafe[b, jnI]];
				jnI = jnI + 1];
			jnOut]`)
	reg("Append", "Append[lst_, x_]",
		`Module[{apN = Length[lst], apOut = Native`+"`"+`ListNew[Length[lst] + 1], apI = 1},
			While[apI <= apN,
				Native`+"`"+`SetPartUnsafe[apOut, apI, Native`+"`"+`PartUnsafe[lst, apI]];
				apI = apI + 1];
			Native`+"`"+`SetPartUnsafe[apOut, apN + 1, x];
			apOut]`)
	reg("Prepend", "Prepend[lst_, x_]",
		`Module[{ppN = Length[lst], ppOut = Native`+"`"+`ListNew[Length[lst] + 1], ppI = 1},
			Native`+"`"+`SetPartUnsafe[ppOut, 1, x];
			While[ppI <= ppN,
				Native`+"`"+`SetPartUnsafe[ppOut, ppI + 1, Native`+"`"+`PartUnsafe[lst, ppI]];
				ppI = ppI + 1];
			ppOut]`)
	reg("Accumulate", "Accumulate[lst_]",
		`Module[{acN = Length[lst], acOut = Native`+"`"+`ListNew[Length[lst]], acI = 2, acAcc = Native`+"`"+`PartUnsafe[lst, 1]},
			Native`+"`"+`SetPartUnsafe[acOut, 1, acAcc];
			While[acI <= acN,
				acAcc = acAcc + Native`+"`"+`PartUnsafe[lst, acI];
				Native`+"`"+`SetPartUnsafe[acOut, acI, acAcc];
				acI = acI + 1];
			acOut]`)
	reg("Mean", "Mean[lst_]", "Total[lst]/Length[lst]")
	// MemberQ/Count by value equality — in compiled code the target is
	// always a concrete value, so this coincides with the engine's
	// pattern-based semantics.
	reg("MemberQ", "MemberQ[lst_, x_]",
		`Module[{mqN = Length[lst], mqI = 1, mqHit = False, mqX = x},
			While[mqI <= mqN && mqHit === False,
				If[Native`+"`"+`PartUnsafe[lst, mqI] == mqX, mqHit = True];
				mqI = mqI + 1];
			mqHit]`)
	reg("Count", "Count[lst_, x_]",
		`Module[{cntN = Length[lst], cntI = 1, cntK = 0, cntX = x},
			While[cntI <= cntN,
				If[Native`+"`"+`PartUnsafe[lst, cntI] == cntX, cntK = cntK + 1];
				cntI = cntI + 1];
			cntK]`)

	// Select keeps matching elements: fill a full-size buffer, truncate.
	reg("Select", "Select[lst_, pred_]",
		`Module[{selN = Length[lst], selOut = Native`+"`"+`ListNew[Length[lst]], selI = 1, selK = 0, selV = Native`+"`"+`PartUnsafe[lst, 1]},
			While[selI <= selN,
				selV = Native`+"`"+`PartUnsafe[lst, selI];
				If[pred[selV] === True,
					selK = selK + 1;
					Native`+"`"+`SetPartUnsafe[selOut, selK, selV]];
				selI = selI + 1];
			Native`+"`"+`ListTake[selOut, selK]]`)

	// Sum over an iterator range.
	reg("Sum", "Sum[body_, {i_Symbol, a_, b_}]",
		`Module[{i = a, sumMax = b, sumAcc = 0},
			While[i <= sumMax, sumAcc = sumAcc + body; i = i + 1];
			sumAcc]`)
	reg("Sum", "Sum[body_, {i_Symbol, b_}]", "Sum[body, {i, 1, b}]")
	reg("Product", "Product[body_, {i_Symbol, a_, b_}]",
		`Module[{i = a, prodMax = b, prodAcc = 1},
			While[i <= prodMax, prodAcc = prodAcc*body; i = i + 1];
			prodAcc]`)
	reg("Product", "Product[body_, {i_Symbol, b_}]", "Product[body, {i, 1, b}]")

	// ConstantArray builds and fills fresh storage.
	reg("ConstantArray", "ConstantArray[v_, {r_, c_}]",
		`Module[{caM = Native`+"`"+`MatrixNew[r, c], caR = r, caC = c, caI = 1, caJ = 1},
			While[caI <= caR,
				caJ = 1;
				While[caJ <= caC,
					Native`+"`"+`SetPartUnsafe[caM, caI, caJ, v];
					caJ = caJ + 1];
				caI = caI + 1];
			caM]`)
	reg("ConstantArray", "ConstantArray[v_, {n_}]", "ConstantArray[v, n]")
	reg("ConstantArray", "ConstantArray[v_, n_]",
		`Module[{caL = Native`+"`"+`ListNew[n], caN = n, caI = 1},
			While[caI <= caN,
				Native`+"`"+`SetPartUnsafe[caL, caI, v];
				caI = caI + 1];
			caL]`)

	// Random-number forms normalise to the runtime primitives.
	reg("RandomReal", "RandomReal[]", "Native`RandomReal01[]")
	reg("RandomReal", "RandomReal[{a_, b_}]", "Native`RandomRealRange[a, b]")
	reg("RandomReal", "RandomReal[hi_]", "Native`RandomRealRange[0., hi]")
	reg("RandomInteger", "RandomInteger[{a_, b_}]", "Native`RandomIntegerRange[a, b]")
	reg("RandomInteger", "RandomInteger[hi_]", "Native`RandomIntegerRange[0, hi]")
	reg("RandomInteger", "RandomInteger[]", "Native`RandomIntegerRange[0, 1]")

	return e
}

// ExpandSlots rewrites Native`SlotFunction[body] into Function[{params},
// body'] by scanning for the highest Slot index. It runs as a post-step of
// macro expansion because the rewrite needs tree inspection, not just
// pattern matching.
func ExpandSlots(e expr.Expr) expr.Expr {
	return ExpandSlotsSource(e, nil)
}

// ExpandSlotsSource is ExpandSlots with source-span propagation: rebuilt
// nodes inherit the span of the node they replace (nil src disables). The
// traversal is bottom-up, matching expr.Replace.
func ExpandSlotsSource(e expr.Expr, src *diag.Source) expr.Expr {
	slotFn := expr.Sym("Native`SlotFunction")
	var rec func(x expr.Expr) expr.Expr
	rec = func(x expr.Expr) expr.Expr {
		if n, ok := x.(*expr.Normal); ok {
			head := rec(n.Head())
			changed := !expr.SameQ(head, n.Head())
			args := make([]expr.Expr, n.Len())
			for i := 1; i <= n.Len(); i++ {
				args[i-1] = rec(n.Arg(i))
				if !expr.SameQ(args[i-1], n.Arg(i)) {
					changed = true
				}
			}
			if changed {
				rebuilt := expr.New(head, args...)
				src.CopySpan(rebuilt, x)
				x = rebuilt
			}
		}
		if n, ok := expr.IsNormalN(x, slotFn, 1); ok {
			out := rewriteSlotFunction(n)
			src.CopySpan(out, x)
			return out
		}
		return x
	}
	return rec(e)
}

// rewriteSlotFunction converts one Native`SlotFunction[body] node into
// Function[{params}, body'] by scanning for the highest Slot index.
func rewriteSlotFunction(n *expr.Normal) expr.Expr {
	maxSlot := 0
	expr.Walk(n.Arg(1), func(sub expr.Expr) bool {
		if s, ok := expr.IsNormalN(sub, expr.SymSlot, 1); ok {
			if i, ok := s.Arg(1).(*expr.Integer); ok && i.IsMachine() && int(i.Int64()) > maxSlot {
				maxSlot = int(i.Int64())
			}
		}
		return true
	})
	params := make([]expr.Expr, maxSlot)
	renames := map[int64]*expr.Symbol{}
	for i := 1; i <= maxSlot; i++ {
		p := freshSym(expr.Sym("slot"))
		params[i-1] = p
		renames[int64(i)] = p
	}
	body := expr.Replace(n.Arg(1), func(sub expr.Expr) expr.Expr {
		if s, ok := expr.IsNormalN(sub, expr.SymSlot, 1); ok {
			if i, ok := s.Arg(1).(*expr.Integer); ok && i.IsMachine() {
				if p, found := renames[i.Int64()]; found {
					return p
				}
			}
		}
		return sub
	})
	return expr.New(expr.SymFunction, expr.List(params...), body)
}
