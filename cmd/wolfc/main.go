// Command wolfc mirrors the paper's artifact workflow (§A.6): it compiles a
// Wolfram function and prints the requested stage — the macro-expanded AST,
// the untyped WIR, the typed TWIR, a C translation, WVM bytecode — or runs
// the compiled function on arguments.
//
// Examples:
//
//	wolfc -e 'Function[{Typed[arg, "MachineInteger"]}, arg + 1]' -stage twir
//	wolfc -e '...' -stage c
//	wolfc -e '...' -run '41'
//	wolfc -file prog.wl -stage ast
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"wolfc/internal/core"
	"wolfc/internal/expr"
	"wolfc/internal/kernel"
	"wolfc/internal/parser"
)

func main() {
	var (
		src      = flag.String("e", "", "function source text to compile")
		file     = flag.String("file", "", "file containing the function source")
		stage    = flag.String("stage", "twir", "stage to print: ast | wir | twir | c | cexe | wvm")
		runArgs  = flag.String("run", "", "comma-separated arguments; run instead of printing a stage")
		noAbort  = flag.Bool("no-abort-handling", false, "disable abort-check insertion")
		noInline = flag.Bool("no-inline", false, "disable inlining (the §6 ablation)")
		optLevel = flag.Int("O", 1, "optimisation level (0 disables folding/CSE/DCE)")
	)
	flag.Parse()

	text := *src
	if *file != "" {
		data, err := os.ReadFile(*file)
		if err != nil {
			fatal(err)
		}
		text = string(data)
	}
	if text == "" {
		fmt.Fprintln(os.Stderr, "usage: wolfc -e '<Function[...]>' [-stage ast|wir|twir|c|cexe|wvm] [-run args]")
		os.Exit(2)
	}

	fn, err := parser.Parse(text)
	if err != nil {
		fatal(err)
	}

	k := kernel.New()
	c := core.NewCompiler(k)
	c.Options.AbortHandling = !*noAbort
	if *noInline {
		c.Options.InlinePolicy = "none"
	}
	c.Options.OptimizationLevel = *optLevel

	if *runArgs != "" {
		ccf, err := c.FunctionCompile(fn)
		if err != nil {
			fatal(err)
		}
		var args []expr.Expr
		for _, a := range strings.Split(*runArgs, ",") {
			e, err := parser.Parse(strings.TrimSpace(a))
			if err != nil {
				fatal(fmt.Errorf("argument %q: %w", a, err))
			}
			v, err := k.Run(e)
			if err != nil {
				fatal(err)
			}
			args = append(args, v)
		}
		out, err := ccf.Apply(args)
		if err != nil {
			fatal(err)
		}
		fmt.Println(expr.InputForm(out))
		return
	}

	switch strings.ToLower(*stage) {
	case "ast":
		out, err := c.ExpandAST(fn)
		if err != nil {
			fatal(err)
		}
		fmt.Println(expr.FullForm(out))
	case "wir":
		mod, err := c.BuildWIR(fn)
		if err != nil {
			fatal(err)
		}
		fmt.Print(mod.String())
	case "twir":
		ccf, err := c.FunctionCompile(fn)
		if err != nil {
			fatal(err)
		}
		out, err := ccf.ExportString("TWIR")
		if err != nil {
			fatal(err)
		}
		fmt.Print(out)
	case "c", "wvm":
		ccf, err := c.FunctionCompile(fn)
		if err != nil {
			fatal(err)
		}
		out, err := ccf.ExportString(strings.ToUpper(*stage))
		if err != nil {
			fatal(err)
		}
		fmt.Print(out)
	case "cexe":
		// Self-contained C: the emitted source with the wolfrt runtime
		// inlined; compile the output directly with `cc prog.c -lm`.
		ccf, err := c.FunctionCompile(fn)
		if err != nil {
			fatal(err)
		}
		out, err := ccf.ExportString("CStandalone")
		if err != nil {
			fatal(err)
		}
		fmt.Print(out)
	default:
		fatal(fmt.Errorf("unknown stage %q", *stage))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "wolfc:", err)
	os.Exit(1)
}
