// Command wolfc mirrors the paper's artifact workflow (§A.6): it compiles a
// Wolfram function and prints the requested stage — the macro-expanded AST,
// the untyped WIR, the typed TWIR, a C translation, WVM bytecode — or runs
// the compiled function on arguments.
//
// Examples:
//
//	wolfc -e 'Function[{Typed[arg, "MachineInteger"]}, arg + 1]' -stage twir
//	wolfc -e '...' -stage c
//	wolfc -e '...' -run '41'
//	wolfc -file prog.wl -stage ast
//	wolfc -e '...' -time-passes -stage twir   (per-stage/per-pass timing table)
//	wolfc -e '...' -verify-each -run '41'     (SSA lint between every pass)
//	wolfc -explain                            (print the pass pipeline)
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"wolfc/internal/core"
	"wolfc/internal/diag"
	"wolfc/internal/expr"
	"wolfc/internal/kernel"
	"wolfc/internal/obs"
	"wolfc/internal/parser"
)

func main() {
	var (
		src        = flag.String("e", "", "function source text to compile")
		file       = flag.String("file", "", "file containing the function source")
		stage      = flag.String("stage", "twir", "stage to print: ast | wir | twir | c | cexe | wvm")
		runArgs    = flag.String("run", "", "comma-separated arguments; run instead of printing a stage")
		noAbort    = flag.Bool("no-abort-handling", false, "disable abort-check insertion")
		noInline   = flag.Bool("no-inline", false, "disable inlining (the §6 ablation)")
		optLevel   = flag.Int("O", 1, "optimisation level (0 disables folding/CSE/DCE)")
		timePasses = flag.Bool("time-passes", false, "print per-stage and per-pass timing/changed table to stderr")
		verifyEach = flag.Bool("verify-each", false, "run the SSA verifier after every pass")
		explain    = flag.Bool("explain", false, "print the pass pipeline for the selected options and exit")
		profileLvl = flag.Int("profile", 0, "block profiling level (> 0 emits per-block counters; with -run, print the hot-block table to stderr)")
		traceOut   = flag.String("trace-out", "", "write JSONL trace events (compile/invoke/fallback) to this file")
		artDir     = flag.String("artifact-dir", os.Getenv("WOLFC_ARTIFACT_DIR"), "persist compiled artifacts to this directory (warm starts skip the pipeline front half; also WOLFC_ARTIFACT_DIR)")
	)
	flag.Parse()

	if *artDir != "" {
		if _, err := core.EnableArtifactStore(*artDir); err != nil {
			fatal(fmt.Errorf("-artifact-dir: %w", err))
		}
	}

	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fatal(err)
		}
		obs.SetTraceWriter(f)
		defer func() {
			obs.SetTraceWriter(nil)
			f.Close()
		}()
	}

	k := kernel.New()
	c := core.NewCompiler(k)
	c.Options.AbortHandling = !*noAbort
	if *noInline {
		c.Options.InlinePolicy = "none"
	}
	c.Options.OptimizationLevel = *optLevel
	c.ProfileLevel = *profileLvl

	if *explain {
		explainPipeline(os.Stdout, c)
		return
	}

	text := *src
	name := ""
	if *file != "" {
		data, err := os.ReadFile(*file)
		if err != nil {
			fatal(err)
		}
		text = string(data)
		name = *file
	}
	if text == "" {
		fmt.Fprintln(os.Stderr, "usage: wolfc -e '<Function[...]>' [-stage ast|wir|twir|c|cexe|wvm] [-run args] [-time-passes] [-verify-each] [-explain]")
		os.Exit(2)
	}

	fn, srcTab, err := parser.ParseSource(name, text)
	if err != nil {
		fatal(err)
	}
	req := core.CompileRequest{
		Source:     srcTab,
		VerifyEach: *verifyEach,
		Collect:    *timePasses,
	}
	compile := func() *core.CompiledCodeFunction {
		var ccf *core.CompiledCodeFunction
		var err error
		if *artDir != "" {
			// With a store attached the cached path probes it, so repeated
			// wolfc invocations of the same function skip the pipeline's
			// front half entirely.
			ccf, _, err = c.FunctionCompileCachedRequest(fn, req)
		} else {
			ccf, err = c.FunctionCompileRequest(fn, req)
		}
		if err != nil {
			fatal(err)
		}
		if *timePasses {
			printReport(os.Stderr, ccf.Report)
		}
		return ccf
	}

	if *runArgs != "" {
		ccf := compile()
		var args []expr.Expr
		for _, a := range strings.Split(*runArgs, ",") {
			e, err := parser.Parse(strings.TrimSpace(a))
			if err != nil {
				fatal(fmt.Errorf("argument %q: %w", a, err))
			}
			v, err := k.Run(e)
			if err != nil {
				fatal(err)
			}
			args = append(args, v)
		}
		out, err := ccf.Apply(args)
		if err != nil {
			fatal(err)
		}
		fmt.Println(expr.InputForm(out))
		if *profileLvl > 0 {
			for _, f := range ccf.Program.Funcs {
				if f.Profiled() {
					fmt.Fprint(os.Stderr, f.ProfileTable())
				}
			}
		}
		return
	}

	switch strings.ToLower(*stage) {
	case "ast":
		out, err := c.ExpandAST(fn)
		if err != nil {
			fatal(diag.Resolve(err, srcTab))
		}
		fmt.Println(expr.FullForm(out))
	case "wir":
		mod, err := c.BuildWIR(fn)
		if err != nil {
			fatal(diag.Resolve(err, srcTab))
		}
		fmt.Print(mod.String())
	case "twir":
		ccf := compile()
		out, err := ccf.ExportString("TWIR")
		if err != nil {
			fatal(err)
		}
		fmt.Print(out)
	case "c", "wvm":
		ccf := compile()
		out, err := ccf.ExportString(strings.ToUpper(*stage))
		if err != nil {
			fatal(err)
		}
		fmt.Print(out)
	case "cexe":
		// Self-contained C: the emitted source with the wolfrt runtime
		// inlined; compile the output directly with `cc prog.c -lm`.
		ccf := compile()
		out, err := ccf.ExportString("CStandalone")
		if err != nil {
			fatal(err)
		}
		fmt.Print(out)
	default:
		fatal(fmt.Errorf("unknown stage %q", *stage))
	}
}

// explainPipeline prints the staged pipeline and the pass schedule the
// current options produce.
func explainPipeline(w io.Writer, c *core.Compiler) {
	fmt.Fprintln(w, "stages: parse -> macro -> binding -> lower(WIR) -> infer(TWIR) -> resolve -> passes -> codegen")
	fmt.Fprintf(w, "pass pipeline (O%d, inline=%s, abort=%v):\n",
		c.Options.OptimizationLevel, c.Options.InlinePolicy, c.Options.AbortHandling)
	fmt.Fprint(w, c.PipelineDescription())
}

// printReport renders the compile report as the -time-passes table.
func printReport(w io.Writer, rep *core.CompileReport) {
	if rep == nil {
		return
	}
	fmt.Fprintln(w, "stage timings:")
	for _, s := range rep.Stages {
		fmt.Fprintf(w, "  %-12s %12s\n", s.Name, s.Duration)
	}
	fmt.Fprintf(w, "  %-12s %12s\n", "total", rep.TotalDuration())
	if rep.Passes == nil {
		return
	}
	fmt.Fprintln(w, "pass statistics:")
	fmt.Fprintf(w, "  %-22s %5s %8s %16s %12s\n", "pass", "runs", "changed", "instrs(in->out)", "time")
	for _, ps := range rep.Passes.Passes {
		fmt.Fprintf(w, "  %-22s %5d %8d %10d -> %3d %12s\n",
			ps.Name, ps.Runs, ps.Changed, ps.InstrsBefore, ps.InstrsAfter, ps.Duration)
	}
	for name, trips := range rep.Passes.Trips {
		fmt.Fprintf(w, "  fixpoint %q: %d trip(s)\n", name, trips)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "wolfc:", err)
	os.Exit(1)
}
