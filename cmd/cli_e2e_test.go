package cmd_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// End-to-end tests of the command-line tools: each binary is built once and
// driven the way a user would drive it.

var binDir string

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "wolfc-cli")
	if err != nil {
		os.Exit(1)
	}
	binDir = dir
	for _, tool := range []string{"wolfc", "wolfrepl", "wolfbench"} {
		out, err := exec.Command("go", "build", "-o",
			filepath.Join(dir, tool), "./"+tool).CombinedOutput()
		if err != nil {
			os.Stderr.WriteString("building " + tool + ": " + string(out) + "\n")
			os.RemoveAll(dir)
			os.Exit(1)
		}
	}
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

func run(t *testing.T, tool string, stdin string, args ...string) (string, error) {
	t.Helper()
	cmd := exec.Command(filepath.Join(binDir, tool), args...)
	if stdin != "" {
		cmd.Stdin = strings.NewReader(stdin)
	}
	out, err := cmd.CombinedOutput()
	return string(out), err
}

const addOne = `Function[{Typed[arg, "MachineInteger"]}, arg + 1]`

func TestWolfcStages(t *testing.T) {
	cases := []struct{ stage, wantSub string }{
		{"ast", "Typed[arg"},
		{"wir", "Call Plus"},
		{"twir", "Integer64"},
		{"c", "int64_t Main(int64_t arg)"},
		{"cexe", "WOLFRT_H"},
		{"wvm", "WVMFunction"},
	}
	for _, cse := range cases {
		out, err := run(t, "wolfc", "", "-e", addOne, "-stage", cse.stage)
		if err != nil {
			t.Fatalf("stage %s: %v\n%s", cse.stage, err, out)
		}
		if !strings.Contains(out, cse.wantSub) {
			t.Fatalf("stage %s output missing %q:\n%s", cse.stage, cse.wantSub, out)
		}
	}
}

func TestWolfcRun(t *testing.T) {
	out, err := run(t, "wolfc", "", "-e", addOne, "-run", "41")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if !strings.Contains(out, "42") {
		t.Fatalf("wolfc -run 41 = %q, want 42", out)
	}
}

func TestWolfcRejectsBadProgram(t *testing.T) {
	out, err := run(t, "wolfc", "", "-e", `Function[{Typed[x, "Real64"]}, Nope[x]]`)
	if err == nil {
		t.Fatalf("bad program must exit non-zero, got:\n%s", out)
	}
	if !strings.Contains(out, "Nope") {
		t.Fatalf("error should name the unknown function:\n%s", out)
	}
}

// The cexe stage's output must actually compile and run under cc.
func TestWolfcCexeCompiles(t *testing.T) {
	cc, err := exec.LookPath("cc")
	if err != nil {
		t.Skip("no C compiler on PATH")
	}
	src, err := run(t, "wolfc", "", "-e", addOne, "-stage", "cexe")
	if err != nil {
		t.Fatalf("%v\n%s", err, src)
	}
	dir := t.TempDir()
	cpath := filepath.Join(dir, "p.c")
	full := src + "\n#include <stdio.h>\nint main(void) { printf(\"%lld\\n\", (long long)Main(41)); return 0; }\n"
	if err := os.WriteFile(cpath, []byte(full), 0o644); err != nil {
		t.Fatal(err)
	}
	bin := filepath.Join(dir, "p")
	if out, err := exec.Command(cc, "-std=c11", "-o", bin, cpath, "-lm").CombinedOutput(); err != nil {
		t.Fatalf("cc: %v\n%s", err, out)
	}
	out, err := exec.Command(bin).Output()
	if err != nil || strings.TrimSpace(string(out)) != "42" {
		t.Fatalf("cexe binary = %q (%v), want 42", out, err)
	}
}

// A scripted interactive session: definitions persist across inputs, both
// compilers are installed, and EOF ends the session cleanly.
func TestReplSession(t *testing.T) {
	session := strings.Join([]string{
		`fib = Function[{n}, If[n < 1, 1, fib[n-1] + fib[n-2]]]`,
		`fib[10]`,
		`cf = FunctionCompile[Function[{Typed[x, "MachineInteger"]}, x*x + 1]]`,
		`cf[6]`,
		`bc = Compile[{{x, _Integer}}, 3*x]`,
		`bc[7]`,
		`1/0`,
		`2 + 2`,
	}, "\n") + "\n"
	out, err := run(t, "wolfrepl", session)
	if err != nil {
		t.Fatalf("repl exited badly: %v\n%s", err, out)
	}
	for _, want := range []string{"Out[2]= 144", "Out[4]= 37", "Out[6]= 21", "Out[8]= 4"} {
		if !strings.Contains(out, want) {
			t.Fatalf("session transcript missing %q:\n%s", want, out)
		}
	}
}

// wolfbench's Table 1 executable checks must all report ok.
func TestWolfbenchTable1(t *testing.T) {
	out, err := run(t, "wolfbench", "", "-table", "1")
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if strings.Count(out, "[ok]") != 10 || strings.Contains(out, "[FAIL]") {
		t.Fatalf("Table 1 checks:\n%s", out)
	}
}
