package cmd_test

import (
	"encoding/json"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

var traceTimes = regexp.MustCompile(`"(t_ns|dur_ns)":\d+`)

// TestGoldenTraceStream pins the JSONL trace of a small session: one
// compile, one successful invoke, and one overflow fallback. Timestamps
// and durations are run-dependent and are normalised to 0 before the
// comparison; everything else — event order, types, names, backend, the
// fallback reason — must be byte-stable.
func TestGoldenTraceStream(t *testing.T) {
	tracePath := filepath.Join(t.TempDir(), "trace.jsonl")
	session := strings.Join([]string{
		`cf = FunctionCompile[Function[{Typed[n, "MachineInteger"]}, n*n*n*n*n]]`,
		`cf[3]`,
		`cf[10000000]`,
	}, "\n") + "\n"
	out, err := run(t, "wolfrepl", session, "-trace-out", tracePath)
	if err != nil {
		t.Fatalf("repl exited badly: %v\n%s", err, out)
	}
	if !strings.Contains(out, "Out[2]= 243") {
		t.Fatalf("session transcript missing the compiled result:\n%s", out)
	}
	raw, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	// Every line must be a standalone JSON object before normalisation.
	for i, line := range strings.Split(strings.TrimSpace(string(raw)), "\n") {
		var ev map[string]any
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("trace line %d is not valid JSON: %v\n%s", i+1, err, line)
		}
		if _, ok := ev["type"]; !ok {
			t.Fatalf("trace line %d has no type: %s", i+1, line)
		}
	}
	got := traceTimes.ReplaceAllString(string(raw), `"$1":0`)
	checkGolden(t, "trace_session", got)
}
