package main

// The tiered-execution suite (ISSUE 5): the same DownValue definitions are
// timed on a plain interpreter and on a kernel with -autocompile semantics
// (profile-guided promotion through the process function registry), with the
// results required to be bit-identical. A second comparison shows what the
// registry buys a compiled caller: reaching the promoted definition as a
// direct unboxed call instead of a boxed KernelFunction escape.

import (
	"fmt"
	"io"
	"os"
	"time"

	"wolfc/internal/core"
	"wolfc/internal/expr"
	"wolfc/internal/fnreg"
	"wolfc/internal/kernel"
	"wolfc/internal/parser"
)

func autocompileSuite() {
	fmt.Println("=== Tiered execution: hot DownValues auto-compiled through the function registry ===")
	defer fnreg.Default().Reset()

	const fibN = 22 // small enough for the interpreter series
	defs := []string{
		`fib[0] = 0`,
		`fib[1] = 1`,
		`fib[n_] := fib[n - 1] + fib[n - 2]`,
	}
	call := fmt.Sprintf("fib[%d]", fibN)

	mustRun := func(k *kernel.Kernel, src string) expr.Expr {
		out, err := k.Run(parser.MustParse(src))
		if err != nil {
			fmt.Fprintf(os.Stderr, "wolfbench: autocompile: %s: %v\n", src, err)
			os.Exit(1)
		}
		return out
	}

	// Interpreter baseline: pattern-matched dispatch on every call.
	ik := kernel.New()
	ik.Out = io.Discard
	core.Install(ik)
	for _, d := range defs {
		mustRun(ik, d)
	}
	interpOut := mustRun(ik, call)
	interpSum := expr.InputForm(interpOut)
	interpNs := measure(func() string { mustRun(ik, call); return interpSum }, 300*time.Millisecond)
	record("autocompile_fib", "interpreter", 0, fibN, interpNs, interpSum)

	// Tiered kernel: the warm-up run alone crosses the threshold, the
	// background worker installs the compiled entry, and dispatch goes
	// through the registry from then on.
	tk := kernel.New()
	tk.Out = io.Discard
	core.Install(tk)
	tr := core.EnableTiering(tk, core.TierPolicy{Threshold: 5})
	defer tr.Close()
	for _, d := range defs {
		mustRun(tk, d)
	}
	mustRun(tk, call)
	tr.WaitIdle()
	if !tr.Compiled(expr.Sym("fib")) {
		fmt.Fprintf(os.Stderr, "wolfbench: autocompile: fib was not promoted; stats %+v\n", tr.Stats())
		os.Exit(1)
	}
	tieredOut := mustRun(tk, call)
	tieredSum := expr.InputForm(tieredOut)
	if tieredSum != interpSum {
		fmt.Fprintf(os.Stderr, "wolfbench: autocompile: tiered fib = %s, interpreter = %s\n", tieredSum, interpSum)
		os.Exit(1)
	}
	tieredNs := measure(func() string { mustRun(tk, call); return tieredSum }, 300*time.Millisecond)
	record("autocompile_fib", "tiered", 0, fibN, tieredNs, tieredSum)

	fmt.Printf("%-22s %-16s %14s %10s   checksum %s\n", "benchmark", "implementation", "time/op", "speedup", interpSum)
	fmt.Printf("%-22s %-16s %14s %10s\n", "fib (DownValues)", "interpreter", fmtNs(interpNs), "1.0x")
	fmt.Printf("%-22s %-16s %14s %9.1fx\n", "fib (DownValues)", "tiered", fmtNs(tieredNs), interpNs/tieredNs)
	fmt.Println()

	// Cross-unit calls: a separately compiled caller reaches the promoted
	// fib either through the registry (resolved at compile time to a direct
	// unboxed call) or through KernelFunction (boxed expressions through the
	// evaluator, which then re-dispatches into the same compiled fib).
	// Each caller makes n calls with small, varying arguments, so the
	// per-call overhead (direct vs boxed) is what gets measured rather than
	// the shared compiled fib recursion.
	const crossCalls = 20_000
	c := core.NewCompiler(tk)
	regCaller, err := c.FunctionCompileRequest(
		parser.MustParse(`Function[{Typed[n, "Integer64"]},
			Module[{s = 0, i = 1}, While[i <= n, s = s + fib[Mod[i, 8]]; i++]; s]]`),
		core.CompileRequest{})
	if err != nil {
		fmt.Fprintf(os.Stderr, "wolfbench: autocompile: registry caller: %v\n", err)
		os.Exit(1)
	}
	registryCalls := 0
	for _, f := range regCaller.Module.Funcs {
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if in.CallKind() == "registry" {
					registryCalls++
				}
			}
		}
	}
	if registryCalls == 0 {
		fmt.Fprintln(os.Stderr, "wolfbench: autocompile: caller did not resolve fib through the registry")
		os.Exit(1)
	}
	boxedCaller, err := c.FunctionCompileRequest(
		parser.MustParse(`Function[{Typed[n, "Integer64"]},
			Module[{s = 0, i = 1}, While[i <= n, s = s + KernelFunction[fib][Mod[i, 8]]; i++]; s]]`),
		core.CompileRequest{})
	if err != nil {
		fmt.Fprintf(os.Stderr, "wolfbench: autocompile: boxed caller: %v\n", err)
		os.Exit(1)
	}
	apply := func(ccf *core.CompiledCodeFunction) string {
		out, err := ccf.Apply([]expr.Expr{expr.FromInt64(crossCalls)})
		if err != nil {
			fmt.Fprintf(os.Stderr, "wolfbench: autocompile: cross-unit call: %v\n", err)
			os.Exit(1)
		}
		return expr.InputForm(out)
	}
	regSum := apply(regCaller)
	boxedSum := apply(boxedCaller)
	if regSum != boxedSum {
		fmt.Fprintf(os.Stderr, "wolfbench: autocompile: registry call = %s, boxed call = %s\n", regSum, boxedSum)
		os.Exit(1)
	}
	regNs := measure(func() string { return apply(regCaller) }, 300*time.Millisecond)
	boxedNs := measure(func() string { return apply(boxedCaller) }, 300*time.Millisecond)
	record("autocompile_crossunit", "registry", 0, crossCalls, regNs, regSum)
	record("autocompile_crossunit", "kernelfunction", 0, crossCalls, boxedNs, boxedSum)
	fmt.Printf("cross-unit caller, %d fib calls (%d registry call sites), checksum %s\n", crossCalls, registryCalls, regSum)
	fmt.Printf("%-22s %-16s %14s %10s\n", "compiled caller", "registry", fmtNs(regNs), "1.0x")
	fmt.Printf("%-22s %-16s %14s %9.2fx\n", "compiled caller", "kernelfunction", fmtNs(boxedNs), boxedNs/regNs)

	s := tr.Stats()
	fmt.Printf("tiering: %d promoted, %d compiled dispatches, %d guard misses, %d soft fallbacks\n\n",
		s.Promotions, s.CompiledCalls, s.GuardMisses, s.SoftFallbacks)
}
