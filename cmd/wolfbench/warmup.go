package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	gort "runtime"
	"time"

	"wolfc/internal/core"
	"wolfc/internal/kernel"
	"wolfc/internal/parser"
)

// The -warmup mode (ISSUE 6): time-to-first-result and warmup curves for
// the three execution tiers — interpreter, stencil baseline (copy-and-patch
// closures), and the full optimising pipeline — plus per-tier compile
// latency over the autocompile corpus, written to BENCH_warmup.json.
//
// Compile latency is reported two ways. `total` is the whole request
// including the MExpr front half (macro expansion, binding, lowering) that
// both tiers share verbatim — it is the admission cost of compiling at all,
// paid identically whichever backend runs. `backend` is what the tier
// choice actually buys: quick-infer + stencil assembly versus Hindley-Milner
// inference + resolution + the pass pipeline + closure codegen. The ≥10×
// gate in scripts/verify.sh runs on the backend ratio; both are published.

var (
	warmupF   = flag.Bool("warmup", false, "run the tier warmup suite: time-to-first-result and per-iteration latency curves for interpreter / stencil / O2, plus per-tier compile latency")
	warmupOut = flag.String("warmup-out", "BENCH_warmup.json", "output path for the -warmup JSON document")
)

// warmupCorpus mirrors examples/autocompile/corpus.wl: the definitions the
// differential gate drives through the tiering engine.
var warmupCorpus = []struct{ name, src string }{
	{"fib", `Function[{Typed[n, "MachineInteger"]}, If[n < 2, n, fib[n - 1] + fib[n - 2]]]`},
	{"fact", `Function[{Typed[n, "MachineInteger"]}, If[n <= 1, 1, n*fact[n - 1]]]`},
	{"square", `Function[{Typed[x, "MachineInteger"]}, x*x]`},
	{"rhalf", `Function[{Typed[x, "Real64"]}, x/2.0 + 1.5]`},
}

// stencilFront names the stages shared by both tiers (the MExpr front
// half); everything else in a report is that tier's backend.
var warmupFrontStages = map[string]bool{"macro": true, "binding": true, "lower": true}

type warmupCompileRow struct {
	Name             string  `json:"name"`
	StencilTotalNs   float64 `json:"stencil_total_ns"`
	StencilBackendNs float64 `json:"stencil_backend_ns"`
	O2TotalNs        float64 `json:"o2_total_ns"`
	O2BackendNs      float64 `json:"o2_backend_ns"`
}

type warmupModeRow struct {
	Mode          string    `json:"mode"`
	FirstResultNs float64   `json:"first_result_ns"`
	CurveNs       []float64 `json:"curve_ns"`
	SteadyNs      float64   `json:"steady_ns"`
	SpeedupVsInt  float64   `json:"speedup_vs_interpreter"`
}

// bestCompile compiles fn n times with report collection and returns the
// fastest run's (total, backend) stage sums in nanoseconds.
func bestCompile(c *core.Compiler, name, src string, n int) (total, backend float64, err error) {
	fn := parser.MustParse(src)
	best := time.Duration(1 << 62)
	var bestBackend time.Duration
	for i := 0; i < n; i++ {
		ccf, cerr := c.FunctionCompileRequest(fn, core.CompileRequest{SelfName: name, Collect: true})
		if cerr != nil {
			return 0, 0, cerr
		}
		tot := ccf.Report.TotalDuration()
		if tot >= best {
			continue
		}
		best = tot
		bestBackend = 0
		for _, s := range ccf.Report.Stages {
			if !warmupFrontStages[s.Name] {
				bestBackend += s.Duration
			}
		}
	}
	return float64(best), float64(bestBackend), nil
}

// warmupCompileLatency measures per-tier compile latency over the corpus
// and returns per-function rows plus corpus-mean aggregates.
func warmupCompileLatency() ([]warmupCompileRow, warmupCompileRow, error) {
	k := kernel.New()
	k.Out = io.Discard
	core.Install(k)
	sc := core.NewCompiler(k)
	sc.Stencil = true
	fc := core.NewCompiler(k)
	// One throwaway compile per compiler: the first request on a fresh
	// Compiler pays lazy environment initialisation (~3× steady state).
	warm := `Function[{Typed[w, "MachineInteger"]}, w + 1]`
	if _, _, err := bestCompile(sc, "", warm, 1); err != nil {
		return nil, warmupCompileRow{}, err
	}
	if _, _, err := bestCompile(fc, "", warm, 1); err != nil {
		return nil, warmupCompileRow{}, err
	}
	reps := 20
	if *full {
		reps = 100
	}
	var rows []warmupCompileRow
	var mean warmupCompileRow
	for _, c := range warmupCorpus {
		st, sb, err := bestCompile(sc, c.name, c.src, reps)
		if err != nil {
			return nil, mean, fmt.Errorf("stencil compile of %s: %w", c.name, err)
		}
		ot, ob, err := bestCompile(fc, c.name, c.src, reps)
		if err != nil {
			return nil, mean, fmt.Errorf("full compile of %s: %w", c.name, err)
		}
		rows = append(rows, warmupCompileRow{c.name, st, sb, ot, ob})
		mean.StencilTotalNs += st
		mean.StencilBackendNs += sb
		mean.O2TotalNs += ot
		mean.O2BackendNs += ob
	}
	n := float64(len(rows))
	mean.Name = "corpus-mean"
	mean.StencilTotalNs /= n
	mean.StencilBackendNs /= n
	mean.O2TotalNs /= n
	mean.O2BackendNs /= n
	return rows, mean, nil
}

// warmupCurve runs one tier mode: a fresh kernel, a fresh recursive
// definition, then timed calls until the curve flattens. The first timed
// call is the time-to-first-result; steady state is the mean of the last
// five iterations.
func warmupCurve(mode string, iters int, pol *core.TierPolicy) (warmupModeRow, error) {
	k := kernel.New()
	k.Out = io.Discard
	core.Install(k)
	if pol != nil {
		tr := core.EnableTiering(k, *pol)
		defer tr.Close()
	}
	// Distinct symbol per mode: the function registry is process-global.
	sym := "wu" + mode
	def := fmt.Sprintf(`%s[n_] := If[n < 2, n, %s[n - 1] + %s[n - 2]]`, sym, sym, sym)
	if _, err := k.Run(parser.MustParse(def)); err != nil {
		return warmupModeRow{}, err
	}
	row := warmupModeRow{Mode: mode, CurveNs: make([]float64, 0, iters)}
	for i := 0; i < iters; i++ {
		q := parser.MustParse(sym + "[18]")
		t0 := time.Now()
		if _, err := k.Run(q); err != nil {
			return warmupModeRow{}, err
		}
		row.CurveNs = append(row.CurveNs, float64(time.Since(t0).Nanoseconds()))
	}
	row.FirstResultNs = row.CurveNs[0]
	tail := row.CurveNs[len(row.CurveNs)-5:]
	for _, ns := range tail {
		row.SteadyNs += ns
	}
	row.SteadyNs /= float64(len(tail))
	return row, nil
}

// warmupSuite is the -warmup entry point; returns the process exit code.
func warmupSuite() int {
	fmt.Println("=== Tier warmup: time-to-first-result and per-iteration latency, interpreter vs stencil vs O2 ===")
	rows, mean, err := warmupCompileLatency()
	if err != nil {
		fmt.Fprintln(os.Stderr, "wolfbench: -warmup:", err)
		return 1
	}
	fmt.Println("\ncompile latency over the autocompile corpus (best-of-N per function):")
	fmt.Printf("%-12s %14s %14s %14s %14s\n", "function",
		"stencil total", "o2 total", "stencil backend", "o2 backend")
	for _, r := range append(rows, mean) {
		fmt.Printf("%-12s %14s %14s %14s %14s\n", r.Name,
			fmtNs(r.StencilTotalNs), fmtNs(r.O2TotalNs),
			fmtNs(r.StencilBackendNs), fmtNs(r.O2BackendNs))
	}
	totalRatio := mean.O2TotalNs / mean.StencilTotalNs
	backendRatio := mean.O2BackendNs / mean.StencilBackendNs
	fmt.Printf("\ncompile ratio o2/stencil: total %.1fx, backend %.1fx\n", totalRatio, backendRatio)
	fmt.Println("(total includes the shared macro/binding/lower front half; backend is what the tier choice buys)")

	iters := 30
	if *full {
		iters = 100
	}
	modes := []struct {
		name string
		pol  *core.TierPolicy
	}{
		{"interpreter", nil},
		{"stencil", &core.TierPolicy{Threshold: 3, StencilThreshold: 2, DisableO2: true}},
		{"o2", &core.TierPolicy{Threshold: 2, DisableStencil: true}},
	}
	var modeRows []warmupModeRow
	var interpSteady float64
	fmt.Printf("\nwarmup curves, fib[18] per call (%d iterations):\n", iters)
	fmt.Printf("%-12s %16s %14s %10s\n", "mode", "first result", "steady state", "vs interp")
	for _, m := range modes {
		row, err := warmupCurve(m.name, iters, m.pol)
		if err != nil {
			fmt.Fprintln(os.Stderr, "wolfbench: -warmup:", err)
			return 1
		}
		if m.name == "interpreter" {
			interpSteady = row.SteadyNs
		}
		row.SpeedupVsInt = interpSteady / row.SteadyNs
		modeRows = append(modeRows, row)
		fmt.Printf("%-12s %16s %14s %9.1fx\n", row.Mode,
			fmtNs(row.FirstResultNs), fmtNs(row.SteadyNs), row.SpeedupVsInt)
	}

	doc := struct {
		Schema       string             `json:"schema"`
		Env          envJSON            `json:"env"`
		Full         bool               `json:"full"`
		Compile      []warmupCompileRow `json:"compile"`
		CompileMean  warmupCompileRow   `json:"compile_mean"`
		TotalRatio   float64            `json:"compile_total_ratio_o2_over_stencil"`
		BackendRatio float64            `json:"compile_backend_ratio_o2_over_stencil"`
		Modes        []warmupModeRow    `json:"modes"`
	}{"wolfbench/warmup/v1", envJSON{
		GoVersion: gort.Version(), GOOS: gort.GOOS, GOARCH: gort.GOARCH,
		GOMAXPROCS: gort.GOMAXPROCS(0), NumCPU: gort.NumCPU(),
	}, *full, rows, mean, totalRatio, backendRatio, modeRows}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "wolfbench: -warmup:", err)
		return 1
	}
	data = append(data, '\n')
	if err := os.WriteFile(*warmupOut, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "wolfbench: -warmup:", err)
		return 1
	}
	fmt.Printf("\nwrote %s\n", *warmupOut)
	return 0
}
