// Command wolfbench regenerates the paper's evaluation (§6): Figure 2's
// seven benchmarks normalised to the hand-written reference, Figure 1's
// random walk, the §1 FindRoot auto-compilation speedup, Table 1's feature
// matrix as executable checks, and the §6 ablations (inlining, abort
// checks, QSort copies, PrimeQ constant handling).
//
//	wolfbench                 # everything, at moderate sizes
//	wolfbench -fig 2          # Figure 2 only
//	wolfbench -full           # paper-scale workloads (slow)
//	wolfbench -table 1        # the feature matrix
//	wolfbench -findroot       # §1 auto-compilation
//	wolfbench -ablation all   # §6 ablations
//	wolfbench -fusion         # superinstruction fusion on/off (ISSUE 2)
//	wolfbench -autocompile    # tiered execution: interpreted vs auto-promoted (ISSUE 5)
//	wolfbench -compare a b    # diff two -json files; exit 1 on a regression
//	                          # beyond -threshold (default 10%)
//	wolfbench -metrics-selftest  # ephemeral /metrics endpoint smoke test
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	gort "runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"wolfc/internal/bench"
	"wolfc/internal/core"
	"wolfc/internal/expr"
	"wolfc/internal/kernel"
	"wolfc/internal/numerics"
	"wolfc/internal/obs"
	"wolfc/internal/parser"
	"wolfc/internal/runtime/par"
	"wolfc/internal/vm"
)

var (
	full      = flag.Bool("full", false, "paper-scale workloads (minutes per row)")
	fig       = flag.Int("fig", 0, "regenerate one figure (1 or 2)")
	table     = flag.Int("table", 0, "regenerate one table (1)")
	findroot  = flag.Bool("findroot", false, "the §1 FindRoot auto-compilation comparison")
	ablation  = flag.String("ablation", "", "ablations: inline | qsortcopy | abort | constants | all")
	benchName = flag.String("bench", "", "run a single Figure 2 benchmark by name")
	withInt   = flag.Bool("interp", true, "include the interpreter series (slow)")
	parallelF = flag.Bool("parallel", false, "run the parallel tensor-runtime suite (Dot, Blur, Histogram, Map)")
	workersF  = flag.String("workers", "1,2,4,8", "worker counts for -parallel, comma-separated")
	jsonPath  = flag.String("json", "", "write machine-readable results (BENCH_<n>.json shape) to this path")
	fusionF   = flag.Bool("fusion", false, "run the superinstruction-fusion suite (FuseLevel off vs on)")
	autoF     = flag.Bool("autocompile", false, "run the tiered-execution suite: interpreted vs auto-promoted DownValues, and registry vs boxed cross-unit calls")
	patternsF = flag.Bool("patterns", false, "run the pattern-dispatch suite: guarded/destructuring DownValues compiled to decision trees vs the interpreter")
	compareF  = flag.Bool("compare", false, "compare two -json result files (old new); exit nonzero on a regression beyond -threshold")
	reportF   = flag.Bool("report", false, "emit a JSON compile-report block (per-stage/per-pass timings) for the Figure 2 kernels")
	threshF   = flag.Float64("threshold", 0.10, "per-row regression threshold for -compare (0.10 = 10%)")

	artifactDir = flag.String("artifact-dir", os.Getenv("WOLFC_ARTIFACT_DIR"), "persist compiled artifacts to this directory (the disk tier of the compile cache; also WOLFC_ARTIFACT_DIR)")

	metricsAddr = flag.String("metrics-addr", "", "serve /metrics and /debug/funcs on this address for the run (enables metric recording)")
	traceOut    = flag.String("trace-out", "", "write JSONL trace events (compile/invoke/fallback) to this file")
	selftestF   = flag.Bool("metrics-selftest", false, "start an ephemeral /metrics endpoint, run a tiny workload, verify the exposition, exit")
	obsGateF    = flag.Bool("obs-overhead", false, "interleaved scalarloop A/B with observability disabled vs enabled; exit nonzero beyond -threshold")
)

// benchResult is one row of the -json output.
type benchResult struct {
	Name     string  `json:"name"`
	Impl     string  `json:"impl"`
	Workers  int     `json:"workers,omitempty"`
	Size     int     `json:"size"`
	NsPerOp  float64 `json:"ns_per_op"`
	Checksum string  `json:"checksum,omitempty"`
}

var jsonResults []benchResult

func record(name, impl string, workers, size int, nsPerOp float64, checksum string) {
	jsonResults = append(jsonResults, benchResult{
		Name: name, Impl: impl, Workers: workers, Size: size,
		NsPerOp: nsPerOp, Checksum: checksum,
	})
}

// cacheStatsJSON is the compile_cache block of the -json document.
type cacheStatsJSON struct {
	Hits          uint64  `json:"hits"`
	Misses        uint64  `json:"misses"`
	Coalesced     uint64  `json:"coalesced"`
	Evictions     uint64  `json:"evictions"`
	Invalidations uint64  `json:"invalidations"`
	Entries       int     `json:"entries"`
	HitRatio      float64 `json:"hit_ratio"`
	Shards        int     `json:"shards"`
	Contention    uint64  `json:"shard_contention"`
}

func cacheJSON(cs core.CompileCacheStats) cacheStatsJSON {
	return cacheStatsJSON{
		Hits: cs.Hits, Misses: cs.Misses, Coalesced: cs.Coalesced,
		Evictions: cs.Evictions, Invalidations: cs.Invalidations,
		Entries: cs.Entries, HitRatio: cs.HitRatio(),
		Shards: cs.Shards, Contention: cs.Contention,
	}
}

// envJSON records the machine the numbers were taken on, so two -json files
// can be compared with their environments in view.
type envJSON struct {
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
}

// histJSON summarises one named latency histogram (per-tier compile times).
type histJSON struct {
	Count  uint64  `json:"count"`
	MeanNs float64 `json:"mean_ns"`
}

// tierJSON is the per-tier compile block of the -json document: how many
// background compiles each tier ran, their mean latency, and the compile
// queue depth at emit time (nonzero = the worker pool ended the run behind).
func tierJSON() (map[string]histJSON, float64) {
	hists := map[string]histJSON{}
	for _, h := range obs.Histograms() {
		s := h.Snapshot()
		if s.Count == 0 {
			continue
		}
		hists[s.Name] = histJSON{Count: s.Count, MeanNs: s.MeanNs()}
	}
	depth := 0.0
	for _, g := range obs.ProviderGauges() {
		if g.Name == "tier_compile_queue_depth" {
			depth = g.Value
		}
	}
	return hists, depth
}

func emitJSON(path string) {
	cs := core.CompileCacheStatsNow()
	hists, depth := tierJSON()
	doc := struct {
		Schema       string              `json:"schema"`
		GOMAXPROCS   int                 `json:"gomaxprocs"` // kept for older readers; see env
		Env          envJSON             `json:"env"`
		Full         bool                `json:"full"`
		CompileCache cacheStatsJSON      `json:"compile_cache"`
		TierCompile  map[string]histJSON `json:"tier_compile,omitempty"`
		TierQueue    float64             `json:"tier_compile_queue_depth"`
		Results      []benchResult       `json:"results"`
	}{"wolfbench/v1", gort.GOMAXPROCS(0), envJSON{
		GoVersion: gort.Version(), GOOS: gort.GOOS, GOARCH: gort.GOARCH,
		GOMAXPROCS: gort.GOMAXPROCS(0), NumCPU: gort.NumCPU(),
	}, *full, cacheJSON(cs), hists, depth, jsonResults}
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "wolfbench: -json:", err)
		return
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "wolfbench: -json:", err)
		return
	}
	fmt.Printf("wrote %d results to %s\n", len(jsonResults), path)
}

// compileReports compiles the Figure 2 kernels at O0/O1/O2 with
// instrumentation on and writes one JSON block (per-stage and per-pass
// timings, fixpoint trip counts) to stdout. Returns a process exit code.
func compileReports() int {
	type row struct {
		Name     string              `json:"name"`
		OptLevel int                 `json:"opt_level"`
		Report   *core.CompileReport `json:"report"`
	}
	out := struct {
		Schema  string `json:"schema"`
		Reports []row  `json:"reports"`
	}{Schema: "wolfbench/compile-report/v1"}
	k := kernel.New()
	for _, name := range []string{"fnv1a", "mandelbrot", "dot", "blur", "histogram"} {
		src, ok := bench.FnSource(name)
		if !ok {
			continue
		}
		fn, tab, err := parser.ParseSource(name, src)
		if err != nil {
			fmt.Fprintf(os.Stderr, "wolfbench: -report: %s: %v\n", name, err)
			return 1
		}
		for _, o := range []int{0, 1, 2} {
			c := core.NewCompiler(k)
			c.Options.OptimizationLevel = o
			ccf, err := c.FunctionCompileRequest(fn, core.CompileRequest{
				Source: tab, Collect: true,
			})
			if err != nil {
				fmt.Fprintf(os.Stderr, "wolfbench: -report: %s at O%d: %v\n", name, o, err)
				return 1
			}
			out.Reports = append(out.Reports, row{Name: name, OptLevel: o, Report: ccf.Report})
		}
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintln(os.Stderr, "wolfbench: -report:", err)
		return 1
	}
	return 0
}

func main() {
	flag.Parse()
	if *compareF {
		os.Exit(compareResults(flag.Arg(0), flag.Arg(1)))
	}
	if *reportF {
		os.Exit(compileReports())
	}
	if *selftestF {
		os.Exit(metricsSelftest())
	}
	if *warmupF {
		os.Exit(warmupSuite())
	}
	if *coldstartF {
		os.Exit(coldstartSuite())
	}
	if *serveF {
		os.Exit(serveSuite())
	}
	if *serveTraceGateF {
		os.Exit(serveTraceGate())
	}
	if *artifactDir != "" {
		if _, err := core.EnableArtifactStore(*artifactDir); err != nil {
			fmt.Fprintln(os.Stderr, "wolfbench: -artifact-dir:", err)
			os.Exit(2)
		}
	}
	if *obsGateF {
		os.Exit(obsOverheadGate())
	}
	if *metricsAddr != "" {
		srv, err := obs.ServeMetrics(*metricsAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "wolfbench:", err)
			os.Exit(2)
		}
		defer srv.Close()
		fmt.Printf("metrics: http://%s/metrics and /debug/funcs\n\n", srv.Addr())
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "wolfbench: -trace-out:", err)
			os.Exit(2)
		}
		obs.SetTraceWriter(f)
		defer func() {
			obs.SetTraceWriter(nil)
			f.Close()
		}()
	}
	any := false
	defaults := *fig == 0 && *table == 0 && !*findroot && *ablation == "" && !*parallelF && !*fusionF && !*autoF && !*patternsF
	if *fig == 2 || defaults {
		figure2()
		any = true
	}
	if *fig == 1 || defaults {
		figure1()
		any = true
	}
	if *table == 1 || defaults {
		table1()
		any = true
	}
	if *findroot || defaults {
		findRootComparison()
		any = true
	}
	if *parallelF || defaults {
		parallelSuite()
		any = true
	}
	if *fusionF || defaults {
		fusionSuite()
		any = true
	}
	if *autoF || defaults {
		autocompileSuite()
		any = true
	}
	if *patternsF || defaults {
		patternsSuite()
		any = true
	}
	if *ablation != "" {
		ablations(*ablation)
		any = true
	} else if defaults {
		ablations("all")
		any = true
	}
	if !any {
		ablations("all")
	}
	if *jsonPath != "" {
		emitJSON(*jsonPath)
	}
}

// size returns the workload for a benchmark under the current scale.
func size(name string) int {
	if *full {
		return bench.DefaultSize(name)
	}
	switch name {
	case "fnv1a", "histogram":
		return 200_000
	case "mandelbrot":
		return 1000
	case "dot", "blur":
		return 256
	case "primeq":
		return 100_000
	case "qsort":
		return 1 << 13
	case "randomwalk":
		return 20_000
	}
	return bench.DefaultSize(name)
}

// interpScale shrinks the interpreter's workload; the measured time is
// scaled back linearly for the normalised figure (quadratic effects are
// noted in EXPERIMENTS.md).
func interpScale(name string) int {
	switch name {
	case "mandelbrot":
		return 50 // max iterations, not elements — scales linearly in work
	case "dot":
		return 48
	case "blur":
		return 48
	case "qsort":
		return 1 << 9
	default:
		return size(name) / 40
	}
}

// measure runs the Runner repeatedly for at least minDur and returns ns/op.
func measure(run bench.Runner, minDur time.Duration) float64 {
	run() // warm up
	iters := 0
	start := time.Now()
	for {
		run()
		iters++
		if time.Since(start) >= minDur && iters >= 1 {
			break
		}
		if iters >= 1000 {
			break
		}
	}
	return float64(time.Since(start).Nanoseconds()) / float64(iters)
}

func figure2() {
	fmt.Println("=== Figure 2: benchmark slowdown, normalised to the hand-written reference ===")
	fmt.Println("(paper: new compiler ~1x of hand-tuned C; bytecode capped at 2.5x in the figure,")
	fmt.Println(" actual slowdown printed in the bar; this reproduction reports actual ratios)")
	fmt.Println()
	names := []string{"fnv1a", "mandelbrot", "dot", "blur", "histogram", "primeq", "qsort"}
	if *benchName != "" {
		names = []string{*benchName}
	}
	fmt.Printf("%-12s %-18s %14s %10s\n", "benchmark", "implementation", "time/op", "vs go")
	for _, name := range names {
		sz := size(name)
		goRun, err := bench.Prepare(name, bench.ImplGo, sz)
		if err != nil {
			fmt.Printf("%-12s go reference failed: %v\n", name, err)
			continue
		}
		goNs := measure(goRun, 300*time.Millisecond)
		record(name, "go", 0, sz, goNs, "")
		fmt.Printf("%-12s %-18s %14s %10s\n", name, "go (ref)", fmtNs(goNs), "1.0x")
		impls := []bench.Impl{bench.ImplCompiled, bench.ImplCompiledNoAbort, bench.ImplBytecode}
		if *withInt {
			impls = append(impls, bench.ImplInterp)
		}
		for _, impl := range impls {
			sz2 := sz
			scaleBack := 1.0
			if impl == bench.ImplInterp {
				sz2 = interpScale(name)
				scaleBack = float64(sz) / float64(sz2)
				if name == "dot" { // O(n^3)
					r := float64(sz) / float64(sz2)
					scaleBack = r * r * r
				}
				if name == "blur" { // O(n^2)
					r := float64(sz) / float64(sz2)
					scaleBack = r * r
				}
				if name == "qsort" { // O(n log n) ~ linear-ish; keep linear
					scaleBack = float64(sz) / float64(sz2)
				}
			}
			run, err := bench.Prepare(name, impl, sz2)
			if err != nil {
				fmt.Printf("%-12s %-18s %14s %10s\n", name, string(impl), "—",
					"n/a ("+firstLine(err.Error())+")")
				continue
			}
			ns := measure(run, 300*time.Millisecond) * scaleBack
			record(name, string(impl), 0, sz, ns, "")
			fmt.Printf("%-12s %-18s %14s %9.1fx\n", name, string(impl), fmtNs(ns), ns/goNs)
		}
		fmt.Println()
	}
}

// parseWorkers turns the -workers flag ("1,2,4,8") into worker counts.
// A leading 1 is forced: it is the baseline every other count is checked
// (checksum) and normalised (speedup) against.
func parseWorkers(s string) []int {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		w, err := strconv.Atoi(part)
		if err != nil || w < 1 {
			fmt.Fprintf(os.Stderr, "wolfbench: bad -workers entry %q\n", part)
			os.Exit(2)
		}
		out = append(out, w)
	}
	if len(out) == 0 || out[0] != 1 {
		out = append([]int{1}, out...)
	}
	return out
}

func parallelSize(name string) int {
	if *full {
		return bench.ParallelDefaultSize(name)
	}
	switch name {
	case "dot":
		return 300
	case "blur":
		return 400
	}
	return 300_000
}

// parallelSuite measures the worker-pool kernels (satellite of the parallel
// tensor runtime): each kernel is compiled once per worker count with
// Parallelism->w, timed, and its checksum is required to be bit-identical to
// the workers=1 run.
func parallelSuite() {
	fmt.Println("=== Parallel tensor runtime: compiled kernels vs worker count ===")
	fmt.Printf("(GOMAXPROCS=%d; workers beyond that time-slice on the same cores,\n",
		gort.GOMAXPROCS(0))
	fmt.Println(" so speedups >1x need a multi-core host; checksums must match regardless)")
	fmt.Println()
	workers := parseWorkers(*workersF)
	fmt.Printf("%-10s %9s %8s %14s %9s  %s\n",
		"kernel", "size", "workers", "time/op", "speedup", "checksum")
	for _, name := range bench.ParallelKernels() {
		sz := parallelSize(name)
		var baseNs float64
		baseSum := ""
		for _, w := range workers {
			run, err := bench.PrepareParallelKernel(name, sz, w)
			if err != nil {
				fmt.Printf("%-10s %9d %8d failed: %v\n", name, sz, w, err)
				break
			}
			sum := run()
			if w == 1 {
				baseSum = sum
			} else if sum != baseSum {
				fmt.Fprintf(os.Stderr,
					"wolfbench: %s checksum diverged at workers=%d: %s != %s\n",
					name, w, sum, baseSum)
				os.Exit(1)
			}
			ns := measure(run, 300*time.Millisecond)
			if w == 1 {
				baseNs = ns
			}
			record(name, "compiled-parallel", w, sz, ns, sum)
			fmt.Printf("%-10s %9d %8d %14s %8.2fx  %s\n",
				name, sz, w, fmtNs(ns), baseNs/ns, sum)
		}
		fmt.Println()
	}
}

func fusionSize(name string) int {
	if *full {
		return bench.FusionDefaultSize(name)
	}
	switch name {
	case "scalarloop":
		return 1_000_000
	case "mandelfuse":
		return 120
	case "partloop":
		return 100_000
	}
	return 0
}

// fusionSuite measures the dispatch-bound kernels with superinstruction
// fusion off and on (ISSUE 2). Checksums must be bit-identical; the
// scalar-loop speedup is the PR's acceptance number.
func fusionSuite() {
	fmt.Println("=== Superinstruction fusion: dispatch-bound scalar kernels, FuseLevel off vs on ===")
	fmt.Println("(single-threaded; off = one closure per TWIR instruction, on = fused expression trees)")
	fmt.Println()
	kernels := bench.FusionKernels()
	if *benchName != "" {
		kernels = nil
		for _, n := range bench.FusionKernels() {
			if n == *benchName {
				kernels = []string{n}
				break
			}
		}
		if kernels == nil {
			fmt.Printf("(no fusion kernel named %q)\n\n", *benchName)
			return
		}
	}
	fmt.Printf("%-12s %9s %8s %14s %9s  %s\n",
		"kernel", "size", "fusion", "time/op", "speedup", "checksum")
	for _, name := range kernels {
		sz := fusionSize(name)
		var offNs float64
		offSum := ""
		for _, mode := range []struct {
			label string
			level int
		}{{"off", bench.FuseOffLevel}, {"on", 0}} {
			run, err := bench.PrepareFusionKernel(name, sz, mode.level)
			if err != nil {
				fmt.Printf("%-12s %9d %8s failed: %v\n", name, sz, mode.label, err)
				break
			}
			sum := run()
			if mode.label == "off" {
				offSum = sum
			} else if sum != offSum {
				fmt.Fprintf(os.Stderr,
					"wolfbench: %s checksum diverged with fusion on: %s != %s\n",
					name, sum, offSum)
				os.Exit(1)
			}
			ns := measure(run, 300*time.Millisecond)
			speedup := 1.0
			if mode.label == "off" {
				offNs = ns
			} else {
				speedup = offNs / ns
			}
			record(name, "fuse-"+mode.label, 0, sz, ns, sum)
			fmt.Printf("%-12s %9d %8s %14s %8.2fx  %s\n",
				name, sz, mode.label, fmtNs(ns), speedup, sum)
		}
		fmt.Println()
	}
}

// compareResults diffs two -json result files keyed by (name, impl,
// workers, size) and returns the process exit code: 1 when any shared row
// regressed by more than 10% (the perf gate for future PRs), else 0.
func compareResults(oldPath, newPath string) int {
	if oldPath == "" || newPath == "" {
		fmt.Fprintln(os.Stderr, "usage: wolfbench -compare old.json new.json")
		return 2
	}
	type doc struct {
		Schema  string        `json:"schema"`
		Results []benchResult `json:"results"`
	}
	load := func(path string) (map[string]benchResult, error) {
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		var d doc
		if err := json.Unmarshal(data, &d); err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		if d.Schema != "wolfbench/v1" {
			return nil, fmt.Errorf("%s: unknown schema %q", path, d.Schema)
		}
		m := map[string]benchResult{}
		for _, r := range d.Results {
			m[fmt.Sprintf("%s|%s|%d|%d", r.Name, r.Impl, r.Workers, r.Size)] = r
		}
		return m, nil
	}
	oldR, err := load(oldPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "wolfbench: -compare:", err)
		return 2
	}
	newR, err := load(newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "wolfbench: -compare:", err)
		return 2
	}
	keys := make([]string, 0, len(oldR))
	for k := range oldR {
		if _, ok := newR[k]; ok {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	if len(keys) == 0 {
		fmt.Fprintln(os.Stderr, "wolfbench: -compare: no common rows between files")
		return 2
	}
	fmt.Printf("%-44s %14s %14s %8s\n", "benchmark", "old", "new", "delta")
	regressed := false
	for _, k := range keys {
		o, n := oldR[k], newR[k]
		ratio := n.NsPerOp / o.NsPerOp
		mark := ""
		if ratio > 1+*threshF {
			mark = "  REGRESSION"
			regressed = true
		}
		fmt.Printf("%-44s %14s %14s %+7.1f%%%s\n",
			k, fmtNs(o.NsPerOp), fmtNs(n.NsPerOp), (ratio-1)*100, mark)
	}
	if regressed {
		fmt.Fprintf(os.Stderr, "wolfbench: -compare: regression above %.0f%% detected\n", *threshF*100)
		return 1
	}
	fmt.Printf("no regressions above %.0f%%\n", *threshF*100)
	return 0
}

// metricsSelftest is the /metrics smoke test used by scripts/verify.sh: it
// starts an ephemeral endpoint, exercises a compile, an invoke, a soft
// fallback, and a parallel kernel, then asserts the exposition carries the
// invocation/fallback/abort/cache/pool counter families.
func metricsSelftest() int {
	srv, err := obs.ServeMetrics("127.0.0.1:0")
	if err != nil {
		fmt.Fprintln(os.Stderr, "wolfbench: -metrics-selftest:", err)
		return 1
	}
	defer srv.Close()
	k := kernel.New()
	k.Out = io.Discard
	c := core.NewCompiler(k)
	ccf, err := c.FunctionCompileCached(parser.MustParse(
		`Function[{Typed[n, "MachineInteger"]}, n*n]`))
	if err != nil {
		fmt.Fprintln(os.Stderr, "wolfbench: -metrics-selftest: compile:", err)
		return 1
	}
	if _, err := ccf.Apply([]expr.Expr{expr.FromInt64(6)}); err != nil {
		fmt.Fprintln(os.Stderr, "wolfbench: -metrics-selftest: invoke:", err)
		return 1
	}
	over, err := c.FunctionCompileCached(parser.MustParse(
		`Function[{Typed[n, "MachineInteger"]}, n*n*n*n*n]`))
	if err != nil {
		fmt.Fprintln(os.Stderr, "wolfbench: -metrics-selftest: compile:", err)
		return 1
	}
	if _, err := over.Apply([]expr.Expr{expr.FromInt64(10000000)}); err != nil {
		fmt.Fprintln(os.Stderr, "wolfbench: -metrics-selftest: fallback run:", err)
		return 1
	}
	if run, err := bench.PrepareParallelKernel("map", 100_000, 4); err == nil {
		run()
	}
	get := func(path string) (string, error) {
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			return "", err
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		return string(b), err
	}
	metrics, err := get("/metrics")
	if err != nil {
		fmt.Fprintln(os.Stderr, "wolfbench: -metrics-selftest: GET /metrics:", err)
		return 1
	}
	bad := false
	for _, want := range []string{
		"wolfc_func_invocations_total",
		"wolfc_func_fallbacks_total",
		"wolfc_func_aborts_total",
		"wolfc_backend_invocations_total",
		"wolfc_exc_overflow_total",
		"wolfc_compile_cache_misses_total",
		"wolfc_compile_cache_coalesced_total",
		"wolfc_compile_cache_shards",
		"wolfc_compile_cache_hit_ratio",
		"wolfc_pool_chunks_total",
		"wolfc_pool_inflight_fors",
	} {
		if !strings.Contains(metrics, want) {
			fmt.Fprintf(os.Stderr, "wolfbench: -metrics-selftest: /metrics missing %s\n", want)
			bad = true
		}
	}
	funcs, err := get("/debug/funcs")
	if err != nil {
		fmt.Fprintln(os.Stderr, "wolfbench: -metrics-selftest: GET /debug/funcs:", err)
		return 1
	}
	if !strings.Contains(funcs, "invocations 1") {
		fmt.Fprintln(os.Stderr, "wolfbench: -metrics-selftest: /debug/funcs missing the invocation row")
		bad = true
	}
	if bad {
		return 1
	}
	fmt.Printf("metrics selftest OK (served on %s)\n", srv.Addr())
	return 0
}

// obsOverheadGate holds the observability layer to its overhead budget on
// the dispatch-bound scalarloop kernel. The A/B — metrics disabled vs
// enabled — is interleaved within one process because this host's absolute
// wall-clock drifts far more than the budget between runs (the identical
// binary has measured 15% apart minutes apart), so a cross-run comparison
// against a checked-in baseline cannot resolve a 2% threshold; an
// interleaved ratio can, since the drift cancels. The disabled path is a
// strict subset of the enabled path at every instrumentation site, so
// bounding enabled-vs-disabled also bounds the disabled cost, and a
// failure here means per-iteration instrumentation leaked into the
// default build (per-block counters must exist only at ProfileLevel > 0).
func obsOverheadGate() int {
	fmt.Println("=== Observability overhead: scalarloop, metrics disabled vs enabled, interleaved ===")
	sz := fusionSize("scalarloop")
	fail := false
	for _, mode := range []struct {
		label string
		level int
	}{{"fuse-off", bench.FuseOffLevel}, {"fuse-on", 0}} {
		run, err := bench.PrepareFusionKernel("scalarloop", sz, mode.level)
		if err != nil {
			fmt.Fprintln(os.Stderr, "wolfbench: -obs-overhead:", err)
			return 1
		}
		offBest, onBest := math.Inf(1), math.Inf(1)
		for rep := 0; rep < 5; rep++ {
			obs.SetEnabled(false)
			par.EnableStats(false)
			if ns := measure(run, 200*time.Millisecond); ns < offBest {
				offBest = ns
			}
			obs.SetEnabled(true)
			par.EnableStats(true)
			if ns := measure(run, 200*time.Millisecond); ns < onBest {
				onBest = ns
			}
		}
		obs.SetEnabled(false)
		par.EnableStats(false)
		delta := onBest/offBest - 1
		verdict := "ok"
		if delta > *threshF {
			verdict = "REGRESSION"
			fail = true
		}
		fmt.Printf("scalarloop %-9s disabled %12s  enabled %12s  delta %+6.2f%%  [%s]\n",
			mode.label, fmtNs(offBest), fmtNs(onBest), delta*100, verdict)
	}
	if fail {
		fmt.Fprintf(os.Stderr, "wolfbench: -obs-overhead: enabled metrics cost more than %.0f%% on a hot loop\n",
			*threshF*100)
		return 1
	}
	return 0
}

func figure1() {
	fmt.Println("=== Figure 1: the random walk, interpreted vs bytecode vs new compiler ===")
	sz := size("randomwalk")
	rows := []struct {
		impl  bench.Impl
		label string
	}{
		{bench.ImplInterp, "In[1] interpreted (NestList)"},
		{bench.ImplBytecode, "In[2] bytecode Compile (loop rewrite)"},
		{bench.ImplCompiled, "In[3] FunctionCompile (same NestList code)"},
	}
	var interpNs float64
	for _, r := range rows {
		sz2 := sz
		scaleBack := 1.0
		if r.impl == bench.ImplInterp {
			sz2 = interpScale("randomwalk")
			scaleBack = float64(sz) / float64(sz2)
		}
		run, err := bench.Prepare("randomwalk", r.impl, sz2)
		if err != nil {
			fmt.Printf("  %-44s failed: %v\n", r.label, err)
			continue
		}
		ns := measure(run, 300*time.Millisecond) * scaleBack
		speed := ""
		if r.impl == bench.ImplInterp {
			interpNs = ns
		} else if interpNs > 0 {
			speed = fmt.Sprintf("(%.1fx over interpreter)", interpNs/ns)
		}
		fmt.Printf("  %-44s %12s %s\n", r.label, fmtNs(ns), speed)
	}
	fmt.Println()
}

func findRootComparison() {
	fmt.Println("=== §1: FindRoot[Sin[x] + E^x, {x, 0}] auto-compilation ===")
	k := kernel.New()
	k.Out = io.Discard
	eq := parser.MustParse("Sin[x] + Exp[x]")
	for _, auto := range []bool{false, true} {
		opts := numerics.DefaultFindRootOptions()
		opts.AutoCompile = auto
		// Per-solve timing including the auto-compile itself would hide
		// the steady-state win; compile once by timing repeated solves.
		start := time.Now()
		iters := 0
		for time.Since(start) < 400*time.Millisecond {
			if _, err := numerics.FindRoot(k, eq, expr.Sym("x"), 0, opts); err != nil {
				fmt.Println("  failed:", err)
				return
			}
			iters++
		}
		label := "interpreted evaluation"
		if auto {
			label = "auto-compiled (function + derivative)"
		}
		fmt.Printf("  %-40s %12s/solve\n", label,
			fmtNs(float64(time.Since(start).Nanoseconds())/float64(iters)))
	}
	fmt.Println("  (paper: 1.6x speedup from auto-compilation)")
	fmt.Println()
}

// table1 runs Table 1 as executable feature checks.
func table1() {
	fmt.Println("=== Table 1: features and objectives (executable checks) ===")
	k := kernel.New()
	k.Out = io.Discard
	vm.Install(k)
	c := core.Install(k)
	_ = c
	check := func(id, name string, newOK, byteOK string, f func() bool) {
		status := "FAIL"
		if f() {
			status = "ok"
		}
		fmt.Printf("  %-3s %-28s new:%-3s bytecode:%-3s  [%s]\n", id, name, newOK, byteOK, status)
	}
	ev := func(src string) expr.Expr {
		out, err := k.Run(parser.MustParse(src))
		if err != nil {
			return expr.SymFailed
		}
		return out
	}
	check("F1", "Integration with interpreter", "yes", "yes", func() bool {
		return expr.InputForm(ev(`FunctionCompile[Function[{Typed[x, "MachineInteger"]}, x + 1]][41]`)) == "42"
	})
	check("F2", "Soft failure mode", "yes", "yes", func() bool {
		out := ev(`FunctionCompile[Function[{Typed[n, "MachineInteger"]}, n*n*n*n*n]][10000000]`)
		i, ok := out.(*expr.Integer)
		return ok && !i.IsMachine()
	})
	check("F3", "Abortable evaluation", "yes", "yes", func() bool {
		ccf, err := core.NewCompiler(k).FunctionCompile(parser.MustParse(
			`Function[{Typed[n, "MachineInteger"]}, Module[{i = 0}, While[i >= 0, i = Mod[i + 1, 7]]; i]]`))
		if err != nil {
			return false
		}
		go func() { time.Sleep(10 * time.Millisecond); k.Abort() }()
		out, err := ccf.Apply([]expr.Expr{expr.FromInt64(1)})
		k.ClearAbort()
		return err == nil && out == expr.SymAborted
	})
	check("F4", "Backend support", "yes", "limited", func() bool {
		ccf, err := core.NewCompiler(k).FunctionCompile(parser.MustParse(
			`Function[{Typed[x, "Real64"]}, x*2.]`))
		if err != nil {
			return false
		}
		cSrc, err1 := ccf.ExportString("C")
		wvm, err2 := ccf.ExportString("WVM")
		if err1 != nil || err2 != nil ||
			!strings.Contains(cSrc, "double") || !strings.Contains(wvm, "WVMFunction") {
			return false
		}
		// With a system C compiler available, prove the C export by
		// building and running it.
		cc, err := exec.LookPath("cc")
		if err != nil {
			return true // export paths verified; no toolchain to run them
		}
		full, err := ccf.ExportString("CStandalone")
		if err != nil {
			return false
		}
		dir, err := os.MkdirTemp("", "wolfc-f4")
		if err != nil {
			return false
		}
		defer os.RemoveAll(dir)
		cPath := filepath.Join(dir, "f4.c")
		driver := full + "\n#include <stdio.h>\nint main(void) { printf(\"%.17g\\n\", Main(21.0)); return 0; }\n"
		if os.WriteFile(cPath, []byte(driver), 0o644) != nil {
			return false
		}
		bin := filepath.Join(dir, "f4")
		if exec.Command(cc, "-std=c11", "-O1", "-o", bin, cPath, "-lm").Run() != nil {
			return false
		}
		out, err := exec.Command(bin).Output()
		return err == nil && strings.TrimSpace(string(out)) == "42"
	})
	check("F5", "Mutability semantics", "yes", "partial", func() bool {
		return expr.InputForm(ev(`FunctionCompile[Function[{Typed[v, "Tensor"["Real64", 1]]},
			Module[{w = v}, w[[1]] = 9.; w[[1]] + v[[1]]]]][{1., 2.}]`)) == "10."
	})
	check("F6", "Extensible user types", "yes", "no", func() bool {
		cc := core.NewCompiler(k)
		cc.TypeEnv.DeclareClass("Ordered", "MyType")
		ty, err := cc.TypeEnv.ParseSpec(parser.MustParse(`"MyType"`))
		return err == nil && cc.TypeEnv.MemberOf(ty, "Ordered")
	})
	check("F7", "Memory management", "yes", "partial", func() bool {
		ccf, err := core.NewCompiler(k).FunctionCompile(parser.MustParse(
			`Function[{Typed[n, "MachineInteger"]}, Table[i, {i, 1, n}]]`))
		if err != nil {
			return false
		}
		twir, _ := ccf.ExportString("TWIR")
		return strings.Contains(twir, "memory_acquire") || strings.Contains(twir, "memory_release")
	})
	check("F8", "Symbolic compute", "yes", "no", func() bool {
		return expr.InputForm(ev(`FunctionCompile[Function[{Typed[a, "Expression"], Typed[b, "Expression"]}, a + b]][x, y]`)) == "x + y"
	})
	check("F9", "Gradual compilation", "yes", "no", func() bool {
		ev("tripleIt[v_] := 3*v")
		return expr.InputForm(ev(`FunctionCompile[Function[{Typed[x, "MachineInteger"]}, KernelFunction[tripleIt][x]]][5]`)) == "15"
	})
	check("F10", "Standalone export", "yes", "partial", func() bool {
		ccf, err := core.NewCompiler(k).FunctionCompile(parser.MustParse(
			`Function[{Typed[x, "MachineInteger"]}, x + 1]`))
		if err != nil {
			return false
		}
		var sb strings.Builder
		if err := ccf.ExportLibrary(&writerAdapter{&sb}); err != nil {
			return false
		}
		loaded, err := core.LoadCompiledLibrary(core.NewCompiler(k), strings.NewReader(sb.String()), true)
		if err != nil {
			return false
		}
		out, err := loaded.Apply([]expr.Expr{expr.FromInt64(1)})
		return err == nil && expr.InputForm(out) == "2"
	})
	fmt.Println()
}

type writerAdapter struct{ b *strings.Builder }

func (w *writerAdapter) Write(p []byte) (int, error) { return w.b.Write(p) }

func ablations(which string) {
	if which == "all" || which == "inline" {
		ablationInline()
	}
	if which == "all" || which == "qsortcopy" {
		ablationQSortCopy()
	}
	if which == "all" || which == "abort" {
		ablationAbort()
	}
	if which == "all" || which == "constants" {
		ablationConstants()
	}
}

func ablationInline() {
	fmt.Println("=== §6 ablation: inlining (paper: 10x slowdown on Mandelbrot without) ===")
	src := `Function[{Typed[maxIter, "MachineInteger"]},
		Module[{total = 0, xi = 0, yi = 0, step = Function[{zr, zi, cr}, zr*zr - zi*zi + cr], cr = 0., ci = 0., zr = 0., zi = 0., t = 0., iters = 0},
			While[xi <= 20,
				cr = -1. + 0.1*xi; yi = 0;
				While[yi <= 15,
					ci = -1. + 0.1*yi; zr = 0.; zi = 0.; iters = 0;
					While[iters < maxIter && zr*zr + zi*zi < 4.,
						t = step[zr, zi, cr]; zi = 2.*zr*zi + ci; zr = t; iters = iters + 1];
					total = total + iters; yi = yi + 1];
				xi = xi + 1];
			total]]`
	var base float64
	for _, policy := range []string{"auto", "none"} {
		k := kernel.New()
		k.Out = io.Discard
		c := core.NewCompiler(k)
		c.Options.InlinePolicy = policy
		ccf, err := c.FunctionCompile(parser.MustParse(src))
		if err != nil {
			fmt.Println("  failed:", err)
			return
		}
		ns := measure(func() string { return fmt.Sprint(ccf.CallRaw(int64(1000))) }, 300*time.Millisecond)
		note := ""
		if policy == "auto" {
			base = ns
		} else {
			note = fmt.Sprintf("(%.1fx slower)", ns/base)
		}
		fmt.Printf("  inline=%-5s %12s %s\n", policy, fmtNs(ns), note)
	}
	fmt.Println()
}

func ablationQSortCopy() {
	fmt.Println("=== §6 ablation: QSort mutability copies (paper: 1.2x over C from one copy) ===")
	sz := 1 << 12
	base, err := bench.Prepare("qsort", bench.ImplCompiled, sz)
	if err != nil {
		fmt.Println("  failed:", err)
		return
	}
	always, err := bench.PrepareQSortCopyAblation(sz)
	if err != nil {
		fmt.Println("  failed:", err)
		return
	}
	b := measure(base, 300*time.Millisecond)
	a := measure(always, 300*time.Millisecond)
	fmt.Printf("  alias analysis (one input copy)  %12s\n", fmtNs(b))
	fmt.Printf("  copy on every Part assignment    %12s (%.1fx slower)\n", fmtNs(a), a/b)
	fmt.Println()
}

func ablationAbort() {
	fmt.Println("=== §6 ablation: abort-check overhead per benchmark ===")
	for _, name := range []string{"mandelbrot", "blur", "histogram", "fnv1a"} {
		sz := size(name)
		on, err1 := bench.Prepare(name, bench.ImplCompiled, sz)
		off, err2 := bench.Prepare(name, bench.ImplCompiledNoAbort, sz)
		if err1 != nil || err2 != nil {
			fmt.Printf("  %-12s failed\n", name)
			continue
		}
		nsOn := measure(on, 300*time.Millisecond)
		nsOff := measure(off, 300*time.Millisecond)
		fmt.Printf("  %-12s abort on %12s   off %12s   overhead %.1f%%\n",
			name, fmtNs(nsOn), fmtNs(nsOff), 100*(nsOn-nsOff)/nsOff)
	}
	fmt.Println()
}

func ablationConstants() {
	fmt.Println("=== §6 ablation: constant-array handling in PrimeQ (paper: 1.5x degradation) ===")
	sz := size("primeq") / 4
	run, err := bench.PreparePrimeQPerCandidate(sz, false)
	if err != nil {
		fmt.Println("  failed:", err)
		return
	}
	naive, err := bench.PreparePrimeQPerCandidate(sz, true)
	if err != nil {
		fmt.Println("  failed:", err)
		return
	}
	opt := measure(run, 300*time.Millisecond)
	nv := measure(naive, 300*time.Millisecond)
	fmt.Printf("  interned constant array   %12s\n", fmtNs(opt))
	fmt.Printf("  per-call rebuilt array    %12s (%.2fx slower)\n", fmtNs(nv), nv/opt)
	fmt.Println()
}

func fmtNs(ns float64) string {
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%.2fs", ns/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.2fms", ns/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.2fµs", ns/1e3)
	}
	return fmt.Sprintf("%.0fns", ns)
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	if len(s) > 60 {
		return s[:60]
	}
	return s
}
