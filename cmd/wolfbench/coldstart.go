package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	gort "runtime"
	"time"

	"wolfc/internal/artifact"
	"wolfc/internal/core"
	"wolfc/internal/expr"
	"wolfc/internal/kernel"
	"wolfc/internal/parser"
)

// The -coldstart mode (ROADMAP item 4): cold vs warm start against the
// persistent artifact store, written to BENCH_coldstart.json.
//
// Two phases run over the same corpus against the same artifact directory.
// The cold phase starts from an empty (or caller-provided) store and pays
// full compiles; the warm phase simulates a new process — fresh kernel,
// fresh compiler, in-memory cache dropped, store reopened — so every
// compile must be served by the disk tier. Per function the suite records
// time-to-first-result (compile + first call) and compile wall time, and
// requires the warm result bit-identical to the cold one.
//
// A second block A/Bs the in-memory front's lock structure: raw hit-path
// throughput at 8 goroutines with the sharded front vs a single-lock
// configuration (core.BenchCompileCacheHits — the end-to-end path spends
// its time building lookup keys outside any lock, which would hide the
// lock structure behind Amdahl's law).
//
// The suite reports numbers and enforces only result identity; the ≥5×
// warm-compile and ≥2× throughput gates live in scripts/verify.sh, so a
// re-run against a pre-populated store (the corrupt-artifact smoke test)
// is not misjudged against cold-start expectations.

var (
	coldstartF   = flag.Bool("coldstart", false, "run the artifact-store cold/warm-start suite and the sharded-cache throughput A/B")
	coldstartOut = flag.String("coldstart-out", "BENCH_coldstart.json", "output path for the -coldstart JSON document")
)

// coldstartCorpus leans on medium-sized kernels on purpose: tiny
// definitions spend so little in the front half of the pipeline that a
// disk hit saves almost nothing, while realistic nested-loop kernels pay
// multi-millisecond inference the warm path skips entirely.
var coldstartCorpus = []struct {
	name, src string
	arg       int64
}{
	{"mandelcount", `Function[{Typed[maxIter, "MachineInteger"]},
		Module[{total = 0, xi = 0, yi = 0, step = Function[{zr, zi, cr}, zr*zr - zi*zi + cr], cr = 0., ci = 0., zr = 0., zi = 0., t = 0., iters = 0},
			While[xi <= 20,
				cr = -1. + 0.1*xi; yi = 0;
				While[yi <= 15,
					ci = -1. + 0.1*yi; zr = 0.; zi = 0.; iters = 0;
					While[iters < maxIter && zr*zr + zi*zi < 4.,
						t = step[zr, zi, cr]; zi = 2.*zr*zi + ci; zr = t; iters = iters + 1];
					total = total + iters; yi = yi + 1];
				xi = xi + 1];
			total]]`, 60},
	{"convgrid", `Function[{Typed[n, "MachineInteger"]},
		Module[{acc = 0., i = 1, j = 1, k = 1, w = 0., f = Function[{a, b}, a*0.5 + b*0.25]},
			While[i <= n,
				j = 1;
				While[j <= n,
					k = 1; w = 0.;
					While[k <= 3,
						w = f[w, 1. / (0. + i + j + k)]; k = k + 1];
					acc = acc + w; j = j + 1];
				i = i + 1];
			Floor[acc*1000000.]]]`, 48},
	{"horner", `Function[{Typed[n, "MachineInteger"]},
		Module[{s = 0., x = 0., i = 0, p = 0.},
			While[i < n,
				x = 0.001*i;
				p = ((((x*0.3 + 1.1)*x - 0.7)*x + 0.25)*x - 1.9)*x + 0.5;
				s = s + p*p - 0.1*p; i = i + 1];
			Floor[s*1000.]]]`, 5000},
	{"gcdsum", `Function[{Typed[n, "MachineInteger"]},
		Module[{s = 0, i = 1, a = 0, b = 0, t = 0},
			While[i <= n,
				a = i; b = n - i + 3;
				While[b != 0, t = Mod[a, b]; a = b; b = t];
				s = s + a; i = i + 1];
			s]]`, 2000},
	{"square", `Function[{Typed[x, "MachineInteger"]}, x*x + 1]`, 41},
	{"rhalf", `Function[{Typed[x, "MachineInteger"]}, Floor[(0. + x)/2.0 + 1.5]]`, 13},
}

type coldstartPhaseRow struct {
	compileNs float64
	firstNs   float64
	artifact  bool
	checksum  string
}

type coldstartRow struct {
	Name          string  `json:"name"`
	ColdCompileNs float64 `json:"cold_compile_ns"`
	WarmCompileNs float64 `json:"warm_compile_ns"`
	ColdFirstNs   float64 `json:"cold_first_result_ns"`
	WarmFirstNs   float64 `json:"warm_first_result_ns"`
	ArtifactHit   bool    `json:"warm_artifact_hit"`
	Checksum      string  `json:"checksum"`
	Match         bool    `json:"warm_matches_cold"`
}

// coldstartPhase compiles and runs the corpus once against the store in
// dir, as a fresh "process": new kernel, new compiler, in-memory compile
// cache dropped, artifact store reopened from disk. The returned stats
// belong to this phase's store instance (counters start at zero).
func coldstartPhase(dir string) ([]coldstartPhaseRow, artifact.Stats, error) {
	core.ResetCompileCache()
	core.SetArtifactStore(nil)
	s, err := core.EnableArtifactStore(dir)
	if err != nil {
		return nil, artifact.Stats{}, err
	}
	k := kernel.New()
	k.Out = io.Discard
	c := core.NewCompiler(k)
	rows := make([]coldstartPhaseRow, 0, len(coldstartCorpus))
	for _, ent := range coldstartCorpus {
		fn := parser.MustParse(ent.src)
		t0 := time.Now()
		ccf, rep, err := c.FunctionCompileCachedRequest(fn, core.CompileRequest{Collect: true})
		compileNs := float64(time.Since(t0).Nanoseconds())
		if err != nil {
			return nil, artifact.Stats{}, fmt.Errorf("%s: %w", ent.name, err)
		}
		out, err := ccf.Apply([]expr.Expr{expr.FromInt64(ent.arg)})
		if err != nil {
			return nil, artifact.Stats{}, fmt.Errorf("%s: %w", ent.name, err)
		}
		rows = append(rows, coldstartPhaseRow{
			compileNs: compileNs,
			firstNs:   float64(time.Since(t0).Nanoseconds()),
			artifact:  rep != nil && rep.ArtifactHit,
			checksum:  expr.InputForm(out),
		})
	}
	return rows, s.Stats(), nil
}

// sumArtifactStats folds two per-phase counter snapshots into run totals
// (BytesOnDisk/Entries are point-in-time, so the later phase's value wins).
func sumArtifactStats(a, b artifact.Stats) artifact.Stats {
	return artifact.Stats{
		Hits: a.Hits + b.Hits, Misses: a.Misses + b.Misses,
		Writes: a.Writes + b.Writes, WriteErrors: a.WriteErrors + b.WriteErrors,
		CorruptDrops: a.CorruptDrops + b.CorruptDrops,
		Evictions:    a.Evictions + b.Evictions,
		BytesOnDisk:  b.BytesOnDisk, Entries: b.Entries,
	}
}

// coldstartThroughput is the sharded vs single-lock hit-throughput A/B,
// best of reps rounds per configuration.
func coldstartThroughput(workers, entries int, reps int, dur time.Duration) (sharded, single float64, shards int) {
	shards = core.CompileCacheShardCount()
	for i := 0; i < reps; i++ {
		if v := core.BenchCompileCacheHits(shards, entries, workers, dur); v > sharded {
			sharded = v
		}
		if v := core.BenchCompileCacheHits(1, entries, workers, dur); v > single {
			single = v
		}
	}
	return sharded, single, shards
}

// coldstartSuite is the -coldstart entry point; returns the process exit
// code.
func coldstartSuite() int {
	dir := *artifactDir
	if dir == "" {
		tmp, err := os.MkdirTemp("", "wolfc-coldstart")
		if err != nil {
			fmt.Fprintln(os.Stderr, "wolfbench: -coldstart:", err)
			return 1
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	}
	fmt.Println("=== Cold vs warm start: persistent artifact store, fresh process each phase ===")
	fmt.Printf("(artifact dir %s)\n\n", dir)

	cold, coldStats, err := coldstartPhase(dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "wolfbench: -coldstart: cold phase:", err)
		return 1
	}
	warm, warmStats, err := coldstartPhase(dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "wolfbench: -coldstart: warm phase:", err)
		return 1
	}

	var rows []coldstartRow
	var coldTotal, warmTotal float64
	allMatch := true
	fmt.Printf("%-12s %14s %14s %9s %9s  %s\n",
		"function", "cold compile", "warm compile", "speedup", "artifact", "match")
	for i, ent := range coldstartCorpus {
		r := coldstartRow{
			Name:          ent.name,
			ColdCompileNs: cold[i].compileNs,
			WarmCompileNs: warm[i].compileNs,
			ColdFirstNs:   cold[i].firstNs,
			WarmFirstNs:   warm[i].firstNs,
			ArtifactHit:   warm[i].artifact,
			Checksum:      cold[i].checksum,
			Match:         cold[i].checksum == warm[i].checksum,
		}
		rows = append(rows, r)
		coldTotal += r.ColdCompileNs
		warmTotal += r.WarmCompileNs
		if !r.Match {
			allMatch = false
			fmt.Fprintf(os.Stderr,
				"wolfbench: -coldstart: %s diverged: cold %s, warm %s\n",
				ent.name, cold[i].checksum, warm[i].checksum)
		}
		fmt.Printf("%-12s %14s %14s %8.1fx %9v  %v\n", r.Name,
			fmtNs(r.ColdCompileNs), fmtNs(r.WarmCompileNs),
			r.ColdCompileNs/r.WarmCompileNs, r.ArtifactHit, r.Match)
	}
	speedup := coldTotal / warmTotal
	fmt.Printf("%-12s %14s %14s %8.1fx\n\n", "total",
		fmtNs(coldTotal), fmtNs(warmTotal), speedup)

	workers, entries := 8, 256
	fmt.Printf("hit-path throughput, %d goroutines over %d entries (lock structure only):\n",
		workers, entries)
	if gort.NumCPU() < 2 {
		fmt.Println("  (single-core host: goroutines time-slice, so no lock structure can win;")
		fmt.Println("   the sharded speedup needs a multi-core host — verify.sh gates accordingly)")
	}
	sharded, single, shards := coldstartThroughput(workers, entries, 3, 250*time.Millisecond)
	tpSpeedup := sharded / single
	fmt.Printf("  %d shards  %12.0f lookups/s\n", shards, sharded)
	fmt.Printf("  1 shard   %12.0f lookups/s\n", single)
	fmt.Printf("  speedup   %11.2fx\n\n", tpSpeedup)

	cs := core.CompileCacheStatsNow()
	doc := struct {
		Schema        string         `json:"schema"`
		Env           envJSON        `json:"env"`
		ArtifactDir   string         `json:"artifact_dir"`
		Rows          []coldstartRow `json:"rows"`
		ColdCompileNs float64        `json:"cold_total_compile_ns"`
		WarmCompileNs float64        `json:"warm_total_compile_ns"`
		WarmSpeedup   float64        `json:"warm_compile_speedup"`
		AllMatch      bool           `json:"all_outputs_match"`
		Throughput    struct {
			Workers   int     `json:"workers"`
			Entries   int     `json:"entries"`
			Shards    int     `json:"shards"`
			ShardedPS float64 `json:"sharded_lookups_per_sec"`
			SinglePS  float64 `json:"single_lock_lookups_per_sec"`
			Speedup   float64 `json:"sharded_speedup"`
		} `json:"hit_throughput"`
		CompileCache cacheStatsJSON `json:"compile_cache"`
		// ArtifactCold/ArtifactWarm are the per-phase store counters (each
		// phase reopens the store, so each starts at zero); artifact_store
		// sums them for readers that only care about totals.
		ArtifactCold artifact.Stats `json:"artifact_store_cold"`
		ArtifactWarm artifact.Stats `json:"artifact_store_warm"`
		Artifact     artifact.Stats `json:"artifact_store"`
	}{
		Schema: "wolfbench/coldstart/v1",
		Env: envJSON{
			GoVersion: gort.Version(), GOOS: gort.GOOS, GOARCH: gort.GOARCH,
			GOMAXPROCS: gort.GOMAXPROCS(0), NumCPU: gort.NumCPU(),
		},
		ArtifactDir:   dir,
		Rows:          rows,
		ColdCompileNs: coldTotal,
		WarmCompileNs: warmTotal,
		WarmSpeedup:   speedup,
		AllMatch:      allMatch,
		CompileCache:  cacheJSON(cs),
		ArtifactCold:  coldStats,
		ArtifactWarm:  warmStats,
		Artifact:      sumArtifactStats(coldStats, warmStats),
	}
	doc.Throughput.Workers = workers
	doc.Throughput.Entries = entries
	doc.Throughput.Shards = shards
	doc.Throughput.ShardedPS = sharded
	doc.Throughput.SinglePS = single
	doc.Throughput.Speedup = tpSpeedup

	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "wolfbench: -coldstart:", err)
		return 1
	}
	data = append(data, '\n')
	if err := os.WriteFile(*coldstartOut, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "wolfbench: -coldstart:", err)
		return 1
	}
	fmt.Printf("wrote %s\n", *coldstartOut)
	if !allMatch {
		return 1
	}
	return 0
}
