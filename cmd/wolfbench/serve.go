package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"wolfc/internal/artifact"
	"wolfc/internal/core"
	"wolfc/internal/obs"
	"wolfc/internal/serve"
)

// The -serve mode (ISSUE 8): a multi-tenant load suite against the real
// HTTP serving stack. For each session count S it stands up a fresh server
// (compile cache reset, fresh in-memory artifact store), creates S
// sessions, and drives every session through the same hot-query workload —
// each query applies a compiled kernel, so the first touch per session
// pays a compile and repeats hit the session's in-memory cache entries.
//
// The in-memory compile-cache front is keyed per registry (sessions are
// isolated namespaces), so cross-session sharing happens only through the
// registry-free stable-key artifact tier: the first session to compile a
// kernel pays the full pipeline, every later session gets a warm artifact
// load. On a single-core host that shared tier IS the aggregate speedup —
// 8 sessions' worth of queries cost one cold compile set plus 7 warm load
// sets, not 8 cold sets. Sessions start their query rotation at different
// offsets so concurrent first touches spread across kernels instead of
// piling onto one.
//
// Output: per-S aggregate throughput, request latency p50/p99, artifact
// hit rate, and the 8-vs-1 aggregate throughput ratio, written to
// BENCH_serve.json (gated >= 2x in scripts/verify.sh).

var (
	serveF        = flag.Bool("serve", false, "run the multi-tenant serving load suite against the in-process HTTP stack")
	serveOut      = flag.String("serve-out", "BENCH_serve.json", "output path for the -serve JSON document")
	serveSessions = flag.String("serve-sessions", "1,2,4,8", "session counts to sweep, comma-separated")
	serveRepeats  = flag.Int("serve-repeats", 3, "hot-query repeats per kernel per session")

	serveTraceGateF = flag.Bool("serve-trace-overhead", false,
		"interleaved serve-workload A/B with request tracing disabled vs armed-but-unsampled; exit nonzero beyond -threshold")
)

// serveCorpus is built from the compile-heavy slice of the coldstart
// corpus — kernels whose compile cost dwarfs a query's runtime, so the
// shared artifact tier has something real to amortise — widened to two
// source variants per kernel (a wrapper adding a distinct constant), which
// doubles the distinct stable keys the sessions share.
type serveKernel struct {
	name, src string
	arg       int64
}

var serveCorpus = buildServeCorpus()

func buildServeCorpus() []serveKernel {
	// Hot-query args are deliberately small: the point of a hot query is
	// the dispatch path (HTTP + parse + compiled apply), not the kernel's
	// O(n) loop body, and a big argument would just add per-query work
	// that scales with session count and buries the shared-compile win.
	heavy := []struct {
		idx    int
		hotArg int64
	}{
		{0, 8},   // mandelcount
		{1, 10},  // convgrid
		{2, 200}, // horner
		{3, 120}, // gcdsum
	}
	var out []serveKernel
	for _, h := range heavy {
		ent := coldstartCorpus[h.idx]
		for v := 0; v < 2; v++ {
			out = append(out, serveKernel{
				name: fmt.Sprintf("%s/v%d", ent.name, v),
				src: fmt.Sprintf(`Function[{Typed[k9, "MachineInteger"]}, (%s)[k9] + %d]`,
					ent.src, v),
				arg: h.hotArg,
			})
		}
	}
	return out
}

type serveLatencies struct {
	mu sync.Mutex
	ns []float64
}

func (l *serveLatencies) add(d time.Duration) {
	l.mu.Lock()
	l.ns = append(l.ns, float64(d.Nanoseconds()))
	l.mu.Unlock()
}

func (l *serveLatencies) percentile(p float64) float64 {
	if len(l.ns) == 0 {
		return 0
	}
	sorted := append([]float64(nil), l.ns...)
	sort.Float64s(sorted)
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}

type serveRow struct {
	Sessions        int     `json:"sessions"`
	TotalQueries    int     `json:"total_queries"`
	WallNs          float64 `json:"wall_ns"`
	ThroughputQPS   float64 `json:"throughput_qps"`
	P50Ms           float64 `json:"p50_ms"`
	P99Ms           float64 `json:"p99_ms"`
	ArtifactHits    uint64  `json:"artifact_hits"`
	ArtifactMisses  uint64  `json:"artifact_misses"`
	ArtifactHitRate float64 `json:"artifact_hit_rate"`
	CacheHits       uint64  `json:"compile_cache_hits"`
	CacheMisses     uint64  `json:"compile_cache_misses"`
}

// serveClient drives one session's workload over real HTTP.
type serveClient struct {
	base   string
	client *http.Client
}

func (c *serveClient) post(path string, body any) (int, []byte, error) {
	var rd *bytes.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			return 0, nil, err
		}
		rd = bytes.NewReader(b)
	} else {
		rd = bytes.NewReader(nil)
	}
	resp, err := c.client.Post(c.base+path, "application/json", rd)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		return 0, nil, err
	}
	return resp.StatusCode, buf.Bytes(), nil
}

// serveRun measures one session-count configuration from a cold start.
func serveRun(nSessions, repeats int) (serveRow, error) {
	core.ResetCompileCache()
	store := artifact.OpenMemory()
	core.SetArtifactStore(store)
	cacheBase := core.CompileCacheStatsNow()

	srv := serve.NewServer(serve.Options{MaxSessions: nSessions + 1, MaxInflight: nSessions + 1})
	ts := httptest.NewServer(srv.Handler())
	defer func() { ts.Close(); srv.Close() }()

	cl := &serveClient{base: ts.URL, client: ts.Client()}
	ids := make([]string, nSessions)
	for i := range ids {
		code, body, err := cl.post("/v1/sessions", nil)
		if err != nil || code != http.StatusCreated {
			return serveRow{}, fmt.Errorf("create session: %d %v", code, err)
		}
		var cr struct {
			ID string `json:"id"`
		}
		if err := json.Unmarshal(body, &cr); err != nil {
			return serveRow{}, err
		}
		ids[i] = cr.ID
	}

	// The first session to answer a kernel pins the expected value; every
	// later response must agree (cross-session result identity).
	var wantMu sync.Mutex
	want := make([]string, len(serveCorpus))

	lat := &serveLatencies{}
	errs := make(chan error, nSessions)
	var wg sync.WaitGroup
	start := time.Now()
	for si := 0; si < nSessions; si++ {
		wg.Add(1)
		go func(si int) {
			defer wg.Done()
			eval := func(input string) (string, error) {
				t0 := time.Now()
				code, body, err := cl.post("/v1/sessions/"+ids[si]+"/eval",
					map[string]any{"input": input, "timeout_ms": 120000})
				lat.add(time.Since(t0))
				if err != nil || code != http.StatusOK {
					return "", fmt.Errorf("session %s: %d %v: %.60s", ids[si], code, err, body)
				}
				var er struct {
					Value string `json:"value"`
				}
				if err := json.Unmarshal(body, &er); err != nil {
					return "", err
				}
				return er.Value, nil
			}
			// Setup: bind each compiled kernel to a session symbol. This is
			// the per-session compile set — cold for the first session to
			// touch a kernel, a warm artifact load for everyone after.
			// Rotate the order per session so concurrent first touches
			// spread across the corpus instead of piling onto one kernel.
			for q := 0; q < len(serveCorpus); q++ {
				ki := (q + si) % len(serveCorpus)
				if _, err := eval(fmt.Sprintf("k%d = FunctionCompile[%s];", ki, serveCorpus[ki].src)); err != nil {
					errs <- err
					return
				}
			}
			// Hot queries: tiny inputs applying the bound compiled function.
			for r := 0; r < repeats; r++ {
				for q := 0; q < len(serveCorpus); q++ {
					ki := (q + si) % len(serveCorpus)
					ent := serveCorpus[ki]
					v, err := eval(fmt.Sprintf("k%d[%d]", ki, ent.arg))
					if err != nil {
						errs <- err
						return
					}
					wantMu.Lock()
					w := want[ki]
					if w == "" {
						want[ki] = v
					}
					wantMu.Unlock()
					if w != "" && v != w {
						errs <- fmt.Errorf("session %s: %s = %s, want %s (cross-session divergence)",
							ids[si], ent.name, v, w)
						return
					}
				}
			}
		}(si)
	}
	wg.Wait()
	wall := time.Since(start)
	close(errs)
	for err := range errs {
		return serveRow{}, err
	}

	total := nSessions * (1 + repeats) * len(serveCorpus) // setup + hot queries
	st := store.Stats()
	cache := core.CompileCacheStatsNow()
	hitRate := 0.0
	if st.Hits+st.Misses > 0 {
		hitRate = float64(st.Hits) / float64(st.Hits+st.Misses)
	}
	return serveRow{
		Sessions:        nSessions,
		TotalQueries:    total,
		WallNs:          float64(wall.Nanoseconds()),
		ThroughputQPS:   float64(total) / wall.Seconds(),
		P50Ms:           lat.percentile(0.50) / 1e6,
		P99Ms:           lat.percentile(0.99) / 1e6,
		ArtifactHits:    st.Hits,
		ArtifactMisses:  st.Misses,
		ArtifactHitRate: hitRate,
		CacheHits:       cache.Hits - cacheBase.Hits,
		CacheMisses:     cache.Misses - cacheBase.Misses,
	}, nil
}

// serveTraceOverhead measures the per-request cost of the tracing layer on
// the serve hot-query path. Three modes, interleaved within one process so
// host wall-clock drift cancels (the same reasoning as obsOverheadGate):
//
//	off    — tracing fully disabled: no writer, no capture store
//	armed  — capture enabled but sampling rate 0: every request mints a
//	         span and threads it through engine/kernel/core, but every
//	         emission site sees a suppressed span and skips. This is the
//	         steady-state cost a production deployment pays for requests
//	         that lose the sampling coin flip.
//	on     — capture enabled, sampling rate 1: full emission, sharded
//	         buffers, collector, capture store.
//
// Returns best-of ns/query per mode. The armed/off ratio is the gated one:
// arming tracing must stay within the -threshold budget even though no
// events flow.
func serveTraceOverhead(reps int) (off, armed, on float64, err error) {
	core.ResetCompileCache()
	core.SetArtifactStore(artifact.OpenMemory())

	srv := serve.NewServer(serve.Options{MaxSessions: 2, MaxInflight: 2})
	ts := httptest.NewServer(srv.Handler())
	defer func() { ts.Close(); srv.Close() }()

	cl := &serveClient{base: ts.URL, client: ts.Client()}
	code, body, err := cl.post("/v1/sessions", nil)
	if err != nil || code != http.StatusCreated {
		return 0, 0, 0, fmt.Errorf("create session: %d %v", code, err)
	}
	var cr struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(body, &cr); err != nil {
		return 0, 0, 0, err
	}
	eval := func(input string) error {
		code, body, err := cl.post("/v1/sessions/"+cr.ID+"/eval",
			map[string]any{"input": input, "timeout_ms": 120000})
		if err != nil || code != http.StatusOK {
			return fmt.Errorf("eval: %d %v: %.60s", code, err, body)
		}
		return nil
	}
	// Bind the corpus once; the timed passes only pay dispatch.
	for ki := range serveCorpus {
		if err := eval(fmt.Sprintf("k%d = FunctionCompile[%s];", ki, serveCorpus[ki].src)); err != nil {
			return 0, 0, 0, err
		}
	}
	queries := make([]string, len(serveCorpus))
	for ki, ent := range serveCorpus {
		queries[ki] = fmt.Sprintf("k%d[%d]", ki, ent.arg)
	}
	pass := func() (float64, error) {
		const perPass = 3
		t0 := time.Now()
		for r := 0; r < perPass; r++ {
			for _, q := range queries {
				if err := eval(q); err != nil {
					return 0, err
				}
			}
		}
		return float64(time.Since(t0).Nanoseconds()) / float64(perPass*len(queries)), nil
	}
	if _, err := pass(); err != nil { // warm HTTP keep-alives and caches
		return 0, 0, 0, err
	}

	defer func() {
		obs.DisableTraceCapture()
		obs.SetTraceSampling(1)
	}()
	off, armed, on = math.Inf(1), math.Inf(1), math.Inf(1)
	for rep := 0; rep < reps; rep++ {
		obs.DisableTraceCapture()
		obs.SetTraceSampling(1)
		ns, err := pass()
		if err != nil {
			return 0, 0, 0, err
		}
		off = math.Min(off, ns)

		obs.EnableTraceCapture(64)
		obs.SetTraceSampling(0)
		if ns, err = pass(); err != nil {
			return 0, 0, 0, err
		}
		armed = math.Min(armed, ns)

		obs.SetTraceSampling(1)
		if ns, err = pass(); err != nil {
			return 0, 0, 0, err
		}
		on = math.Min(on, ns)
	}
	return off, armed, on, nil
}

// serveTraceGate is the -serve-trace-overhead entry point: the armed-vs-off
// delta must stay within -threshold. Returns the process exit code.
func serveTraceGate() int {
	fmt.Println("=== Request-tracing overhead: serve hot queries, disabled vs armed (sampling 0) vs sampled, interleaved ===")
	off, armed, on, err := serveTraceOverhead(5)
	if err != nil {
		fmt.Fprintln(os.Stderr, "wolfbench: -serve-trace-overhead:", err)
		return 1
	}
	deltaArmed := armed/off - 1
	deltaOn := on/off - 1
	verdict := "ok"
	if deltaArmed > *threshF {
		verdict = "REGRESSION"
	}
	fmt.Printf("per query: off %s  armed %s (%+.2f%%)  sampled %s (%+.2f%%)  [%s]\n",
		fmtNs(off), fmtNs(armed), deltaArmed*100, fmtNs(on), deltaOn*100, verdict)
	if deltaArmed > *threshF {
		fmt.Fprintf(os.Stderr, "wolfbench: -serve-trace-overhead: armed tracing costs more than %.0f%% per request\n",
			*threshF*100)
		return 1
	}
	return 0
}

// serveSuite is the -serve entry point; returns the process exit code.
func serveSuite() int {
	var counts []int
	for _, f := range strings.Split(*serveSessions, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 1 {
			fmt.Fprintf(os.Stderr, "wolfbench: -serve-sessions: bad count %q\n", f)
			return 2
		}
		counts = append(counts, n)
	}

	fmt.Println("=== Multi-tenant serving: N isolated sessions, shared artifact tier ===")
	fmt.Printf("(%d kernels x %d repeats per session, in-memory artifact store)\n\n",
		len(serveCorpus), *serveRepeats)
	fmt.Printf("%9s %9s %12s %10s %10s %10s\n",
		"sessions", "queries", "agg q/s", "p50 ms", "p99 ms", "art. hits")

	rows := make([]serveRow, 0, len(counts))
	for _, n := range counts {
		row, err := serveRun(n, *serveRepeats)
		if err != nil {
			fmt.Fprintln(os.Stderr, "wolfbench: -serve:", err)
			return 1
		}
		rows = append(rows, row)
		fmt.Printf("%9d %9d %12.1f %10.2f %10.2f %9.0f%%\n",
			row.Sessions, row.TotalQueries, row.ThroughputQPS, row.P50Ms, row.P99Ms,
			row.ArtifactHitRate*100)
	}

	ratio := 0.0
	var base, peak *serveRow
	for i := range rows {
		if rows[i].Sessions == 1 {
			base = &rows[i]
		}
		if peak == nil || rows[i].Sessions > peak.Sessions {
			peak = &rows[i]
		}
	}
	if base != nil && peak != nil && base != peak && base.ThroughputQPS > 0 {
		ratio = peak.ThroughputQPS / base.ThroughputQPS
		fmt.Printf("\naggregate throughput at %d sessions vs 1: %.2fx "+
			"(shared artifact tier amortises the compile set)\n", peak.Sessions, ratio)
	}

	// Tracing overhead on the same workload shape: what arming the span
	// pipeline (sampling 0) and full sampling cost per request, relative to
	// tracing compiled out of the request path entirely.
	off, armed, on, err := serveTraceOverhead(3)
	if err != nil {
		fmt.Fprintln(os.Stderr, "wolfbench: -serve: trace overhead:", err)
		return 1
	}
	fmt.Printf("\ntracing per query: off %s  armed %s (%+.2f%%)  sampled %s (%+.2f%%)\n",
		fmtNs(off), fmtNs(armed), (armed/off-1)*100, fmtNs(on), (on/off-1)*100)

	doc := map[string]any{
		"suite":   "serve",
		"repeats": *serveRepeats,
		"kernels": len(serveCorpus),
		"rows":    rows,
		"trace_overhead": map[string]any{
			"off_ns_per_query":     off,
			"armed_ns_per_query":   armed,
			"sampled_ns_per_query": on,
			"armed_delta":          armed/off - 1,
			"sampled_delta":        on/off - 1,
		},
	}
	if ratio > 0 {
		doc["ratio_peak_vs_1"] = ratio
		doc["peak_sessions"] = peak.Sessions
	}
	f, err := os.Create(*serveOut)
	if err != nil {
		fmt.Fprintln(os.Stderr, "wolfbench: -serve:", err)
		return 1
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		f.Close()
		return 1
	}
	if err := f.Close(); err != nil {
		return 1
	}
	fmt.Printf("\nwrote %s\n", *serveOut)
	return 0
}
