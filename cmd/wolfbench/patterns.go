package main

// The pattern-dispatch suite (ISSUE 10): DownValue definitions that only
// the decision-tree lowering can promote — _Integer blanks with /; guards,
// list destructuring — timed interpreted vs tiered with bit-identical
// results, plus a symbolic-differentiation workload whose arguments never
// sketch to machine kinds: it must stay on the interpreter and the tiered
// kernel must not tax it (the dispatch hook's sketch rejects symbolic
// arguments in O(1)).

import (
	"fmt"
	"io"
	"os"
	"time"

	"wolfc/internal/core"
	"wolfc/internal/expr"
	"wolfc/internal/fnreg"
	"wolfc/internal/kernel"
	"wolfc/internal/parser"
)

func patternsSuite() {
	fmt.Println("=== Pattern dispatch: guarded DownValues compiled to decision trees ===")
	defer fnreg.Default().Reset()

	mustRun := func(k *kernel.Kernel, e expr.Expr) expr.Expr {
		out, err := k.Run(e)
		if err != nil {
			fmt.Fprintf(os.Stderr, "wolfbench: patterns: %s: %v\n", expr.InputForm(e), err)
			os.Exit(1)
		}
		return out
	}
	newPair := func(defs []string) (*kernel.Kernel, *kernel.Kernel, *core.Tiering) {
		ik := kernel.New()
		ik.Out = io.Discard
		core.Install(ik)
		tk := kernel.New()
		tk.Out = io.Discard
		core.Install(tk)
		tr := core.EnableTiering(tk, core.TierPolicy{Threshold: 5})
		for _, d := range defs {
			p := parser.MustParse(d)
			mustRun(ik, p)
			mustRun(tk, p)
		}
		return ik, tk, tr
	}

	type row struct {
		name    string
		defs    []string
		call    string
		size    int
		warmups int
		// promoted: the workload's head must reach a compiled tier
		// (false for the symbolic workload, which must not promote).
		promote string
	}
	rows := []row{
		{
			// The acceptance workload: _Integer blanks plus a /; guard.
			// The recursion re-enters the dispatch tree on every level, so
			// the whole speedup rides on compiled pattern dispatch.
			name: "patterns_gfib",
			defs: []string{
				`gfib[n_Integer /; n < 2] := n`,
				`gfib[n_Integer] := gfib[n - 1] + gfib[n - 2]`,
			},
			call: "gfib[22]", size: 22, warmups: 1, promote: "gfib",
		},
		{
			// List destructuring: each call pays match-vs-tree on a
			// 2-element machine list.
			name: "patterns_dot2",
			defs: []string{
				`dot2[{a_, b_}, {c_, d_}] := a*c + b*d`,
				`dotn[n_Integer] := If[n == 0, 0, dot2[{n, n + 1}, {2, 3}] + dotn[n - 1]]`,
			},
			call: "dotn[400]", size: 400, warmups: 6, promote: "dot2",
		},
		{
			// Symbolic differentiation: arguments are expressions, never
			// machine kinds, so the definition must stay interpreted and
			// cost the same on both kernels (the no-regression row).
			name: "patterns_deriv",
			defs: []string{
				`d[x_, x_] := 1`,
				`d[c_Integer, x_] := 0`,
				`d[u_ + v_, x_] := d[u, x] + d[v, x]`,
				`d[u_*v_, x_] := d[u, x]*v + u*d[v, x]`,
				`d[u_^n_Integer, x_] := n*u^(n - 1)*d[u, x]`,
			},
			call: "d[(x^5)*(x^3 + x^2), x]", size: 5, warmups: 6, promote: "",
		},
	}

	fmt.Printf("%-18s %-14s %14s %10s\n", "benchmark", "implementation", "time/op", "speedup")
	for _, r := range rows {
		ik, tk, tr := newPair(r.defs)
		call := parser.MustParse(r.call)

		interpOut := mustRun(ik, call)
		interpSum := expr.InputForm(interpOut)
		interpNs := measure(func() string { mustRun(ik, call); return interpSum }, 300*time.Millisecond)
		record(r.name, "interpreter", 0, r.size, interpNs, interpSum)

		for i := 0; i < r.warmups; i++ {
			mustRun(tk, call)
		}
		tr.WaitIdle()
		if r.promote != "" && !tr.Compiled(expr.Sym(r.promote)) {
			fmt.Fprintf(os.Stderr, "wolfbench: patterns: %s was not promoted; stats %+v\n", r.promote, tr.Stats())
			os.Exit(1)
		}
		if r.promote == "" && tr.Stats().Promotions != 0 {
			fmt.Fprintf(os.Stderr, "wolfbench: patterns: symbolic workload promoted; stats %+v\n", tr.Stats())
			os.Exit(1)
		}
		tieredOut := mustRun(tk, call)
		tieredSum := expr.InputForm(tieredOut)
		if tieredSum != interpSum {
			fmt.Fprintf(os.Stderr, "wolfbench: patterns: %s tiered = %s, interpreter = %s\n", r.name, tieredSum, interpSum)
			os.Exit(1)
		}
		tieredNs := measure(func() string { mustRun(tk, call); return tieredSum }, 300*time.Millisecond)
		record(r.name, "tiered", 0, r.size, tieredNs, tieredSum)

		fmt.Printf("%-18s %-14s %14s %10s   checksum %s\n", r.name, "interpreter", fmtNs(interpNs), "1.0x", interpSum)
		fmt.Printf("%-18s %-14s %14s %9.1fx\n", r.name, "tiered", fmtNs(tieredNs), interpNs/tieredNs)
		s := tr.Stats()
		fmt.Printf("%-18s %d promoted, %d compiled dispatches, %d guard misses, %d soft fallbacks\n",
			"", s.Promotions, s.CompiledCalls, s.GuardMisses, s.SoftFallbacks)
		tr.Close()
		fnreg.Default().Reset()
	}
	fmt.Println()
}
