// Command patgen generates the differential fuzz corpus for compiled
// pattern dispatch (ISSUE 10): a deterministic pseudo-random batch of
// DownValue definitions — literal rules, _Integer/_Real blanks, /; guards
// at argument and whole-LHS position, list destructuring, repeated
// variables, multi-argument heads — followed by calls that drive every
// dispatch path: plain hits, guard misses, kind mismatches, lengths no
// rule covers, and arguments (strings, bignums) outside the compiled
// fragment entirely.
//
// The checked-in corpus is produced by
//
//	go run ./cmd/patgen > examples/patterns/corpus.wl
//
// and scripts/verify.sh replays it through wolfrepl four ways (plain,
// tiered, stencil-pinned, O2-only) requiring bit-identical stdout. The
// generator is seeded and self-contained so the corpus can be regrown or
// widened (-defs, -seed) when the compilable fragment grows.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"
)

var (
	seed = flag.Int64("seed", 10, "PRNG seed; same seed, same corpus")
	defs = flag.Int("defs", 14, "number of generated symbols")
)

type gen struct {
	r *rand.Rand
	w *strings.Builder
}

func (g *gen) emit(format string, args ...any) {
	fmt.Fprintf(g.w, format+"\n", args...)
}

// smallInt is a call/literal operand kept small enough that no generated
// body (products of two args plus offsets) can overflow Integer64.
func (g *gen) smallInt() int { return g.r.Intn(21) - 4 }

func (g *gen) smallReal() string {
	return fmt.Sprintf("%.1f", float64(g.r.Intn(80))/4.0-5.0)
}

// body renders a scalar arithmetic body over the bound variables.
func (g *gen) body(vars []string) string {
	if len(vars) == 0 {
		return fmt.Sprint(g.r.Intn(100))
	}
	v := vars[g.r.Intn(len(vars))]
	switch g.r.Intn(4) {
	case 0:
		return fmt.Sprintf("%s*%d + %d", v, g.r.Intn(5)+2, g.r.Intn(9))
	case 1:
		return fmt.Sprintf("%s - %d", v, g.r.Intn(7))
	case 2:
		if len(vars) > 1 {
			return fmt.Sprintf("%s*%d - %s", vars[0], g.r.Intn(4)+1, vars[1])
		}
		return fmt.Sprintf("%s + %s", v, v)
	default:
		return fmt.Sprintf("%d - %s", g.r.Intn(12), v)
	}
}

// guard renders a /; test over v.
func (g *gen) guard(v string) string {
	switch g.r.Intn(4) {
	case 0:
		return fmt.Sprintf("%s > %d", v, g.smallInt())
	case 1:
		return fmt.Sprintf("%s < %d", v, g.smallInt())
	case 2:
		return fmt.Sprintf("Mod[%s, %d] == %d", v, g.r.Intn(3)+2, g.r.Intn(2))
	default:
		return fmt.Sprintf("%s > %d && %s < %d", v, g.smallInt()-6, v, g.smallInt()+8)
	}
}

// scalarPat renders one scalar argument pattern binding v (or a literal).
func (g *gen) scalarPat(v string) (pat string, bound bool) {
	switch g.r.Intn(6) {
	case 0:
		return fmt.Sprint(g.smallInt()), false // literal discriminator
	case 1:
		return v + "_Integer", true
	case 2:
		return fmt.Sprintf("%s_Integer /; %s", v, g.guard(v)), true
	case 3:
		return v + "_Real", true
	case 4:
		return fmt.Sprintf("%s_ /; %s", v, g.guard(v)), true
	default:
		return v + "_", true
	}
}

// defScalar emits a 1- or 2-argument scalar symbol with ordered rules and
// returns the call arguments that exercise it.
func (g *gen) defScalar(name string, arity int) []string {
	nrules := g.r.Intn(3) + 2
	for i := 0; i < nrules; i++ {
		pats := make([]string, arity)
		var vars []string
		for j := range pats {
			v := string(rune('x' + j))
			p, bound := g.scalarPat(v)
			// The last rule leans total so most calls hit.
			if i == nrules-1 && g.r.Intn(3) != 0 {
				p, bound = v+"_", true
			}
			pats[j] = p
			if bound {
				vars = append(vars, v)
			}
		}
		lhs := fmt.Sprintf("%s[%s]", name, strings.Join(pats, ", "))
		// Whole-LHS condition: evaluated by the matcher after every
		// argument binds.
		if len(vars) > 0 && g.r.Intn(5) == 0 {
			lhs = fmt.Sprintf("%s /; %s", lhs, g.guard(vars[g.r.Intn(len(vars))]))
		}
		g.emit("%s := %s", lhs, g.body(vars))
	}
	var calls []string
	for i := 0; i < 5; i++ {
		args := make([]string, arity)
		for j := range args {
			switch g.r.Intn(8) {
			case 0:
				args[j] = g.smallReal() // kind mismatch or _Real hit
			case 1:
				args[j] = `"s"` // outside the fragment: never sketches
			case 2:
				args[j] = "2^70" // bignum: strict-kind guard miss
			default:
				args[j] = fmt.Sprint(g.smallInt())
			}
		}
		calls = append(calls, fmt.Sprintf("%s[%s]", name, strings.Join(args, ", ")))
	}
	return calls
}

// defList emits a list-destructuring symbol and its calls.
func (g *gen) defList(name string) []string {
	n := g.r.Intn(2) + 2 // destructured length 2 or 3
	elems := make([]string, n)
	var vars []string
	for j := range elems {
		v := string(rune('a' + j))
		if g.r.Intn(4) == 0 {
			elems[j] = fmt.Sprint(g.smallInt())
		} else {
			elems[j] = v + "_"
			vars = append(vars, v)
		}
	}
	g.emit("%s[{%s}] := %s", name, strings.Join(elems, ", "), g.body(vars))
	if g.r.Intn(2) == 0 {
		g.emit("%s[{u_}] := -u", name)
	}
	var calls []string
	for i := 0; i < 5; i++ {
		m := []int{n, n, n, 1, n + 1, n - 1}[g.r.Intn(6)] // mostly hits
		parts := make([]string, m)
		for j := range parts {
			if g.r.Intn(7) == 0 {
				parts[j] = g.smallReal() // mixed list: kind guard miss
			} else {
				parts[j] = fmt.Sprint(g.smallInt())
			}
		}
		calls = append(calls, fmt.Sprintf("%s[{%s}]", name, strings.Join(parts, ", ")))
	}
	return calls
}

// defRepeat emits a repeated-variable symbol (f[x_, x_] matches only when
// both arguments are SameQ) and its calls.
func (g *gen) defRepeat(name string) []string {
	g.emit("%s[x_, x_] := x*2 + 1", name)
	g.emit("%s[x_, y_] := x - y", name)
	var calls []string
	for i := 0; i < 4; i++ {
		a := g.smallInt()
		b := a
		if g.r.Intn(2) == 0 {
			b = g.smallInt()
		}
		calls = append(calls, fmt.Sprintf("%s[%d, %d]", name, a, b))
	}
	// SameQ is exact: an Integer never equals a Real, even numerically.
	calls = append(calls, fmt.Sprintf("%s[3, 3.0]", name))
	return calls
}

func main() {
	flag.Parse()
	g := &gen{r: rand.New(rand.NewSource(*seed)), w: &strings.Builder{}}
	g.emit("(* Generated by cmd/patgen -seed %d -defs %d — do not hand-edit. *)", *seed, *defs)
	g.emit("(* Differential fuzz corpus for compiled pattern dispatch (ISSUE 10): *)")
	g.emit("(* scripts/verify.sh replays this through wolfrepl plain, tiered, *)")
	g.emit("(* stencil-pinned, and O2-only, and requires bit-identical stdout. *)")

	var calls []string
	for i := 0; i < *defs; i++ {
		name := fmt.Sprintf("p%d", i)
		switch g.r.Intn(5) {
		case 0:
			calls = append(calls, g.defList(name)...)
		case 1:
			calls = append(calls, g.defRepeat(name)...)
		case 2:
			calls = append(calls, g.defScalar(name, 2)...)
		default:
			calls = append(calls, g.defScalar(name, 1)...)
		}
	}
	// Replay the call batch three times: the first round is interpreted and
	// crosses the promotion threshold, later rounds dispatch compiled, and
	// every call appears in both regimes so a divergence cannot hide.
	for round := 0; round < 3; round++ {
		for _, c := range calls {
			g.emit("%s", c)
		}
	}
	os.Stdout.WriteString(g.w.String())
}
