package cmd_test

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files under testdata/")

// checkGolden compares got against testdata/<name>.golden, rewriting the
// file under -update.
func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run `go test ./cmd -run Golden -update`): %v", err)
	}
	if got != string(want) {
		t.Errorf("output differs from %s:\n--- want ---\n%s\n--- got ---\n%s", path, want, got)
	}
}

// TestGoldenStages pins the exact wolfc output for the paper's §A.6 addOne
// example at each printable stage of the pipeline.
func TestGoldenStages(t *testing.T) {
	for _, stage := range []string{"ast", "wir", "twir"} {
		t.Run(stage, func(t *testing.T) {
			out, err := run(t, "wolfc", "", "-e", addOne, "-stage", stage)
			if err != nil {
				t.Fatalf("%v\n%s", err, out)
			}
			checkGolden(t, "addone_"+stage, out)
		})
	}
}

// TestGoldenParseError pins the positioned parse diagnostic, including the
// file name when the source comes from -file.
func TestGoldenParseError(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "broken.wl")
	src := "Function[{Typed[arg, \"MachineInteger\"]},\n  arg +\n]"
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := run(t, "wolfc", "", "-file", path, "-stage", "ast")
	if err == nil {
		t.Fatalf("parse error must exit non-zero:\n%s", out)
	}
	// The file path is temp-dir dependent; strip the directory before
	// comparing.
	got := strings.ReplaceAll(out, dir+string(os.PathSeparator), "")
	checkGolden(t, "parse_error", got)
}

// TestGoldenTypeError pins the positioned type diagnostic for an overload
// failure inside the function body.
func TestGoldenTypeError(t *testing.T) {
	out, err := run(t, "wolfc", "",
		"-e", "Function[{Typed[arg, \"MachineInteger\"]},\n  arg + \"one\"]", "-stage", "twir")
	if err == nil {
		t.Fatalf("type error must exit non-zero:\n%s", out)
	}
	checkGolden(t, "type_error", out)
}
