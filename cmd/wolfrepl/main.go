// Command wolfrepl is an interactive session with the interpreter — the
// Wolfram Engine stand-in — with both compilers installed: the legacy
// Compile (bytecode/WVM) and the new FunctionCompile, callable exactly as
// in the paper's notebook sessions (Figure 1). Ctrl-C aborts the running
// evaluation without quitting the session (F3); a second Ctrl-C at the
// prompt exits.
//
// The session is one internal/engine Engine — the same isolated unit
// wolfserve hands to each tenant — so the REPL exercises the exact
// kernel + compiler + tiering + registry wiring the serving layer uses.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"

	"wolfc/internal/core"
	"wolfc/internal/engine"
	"wolfc/internal/expr"
	"wolfc/internal/obs"
)

var (
	metricsAddr          = flag.String("metrics-addr", "", "serve live /metrics and /debug/funcs on this address for the session")
	traceOut             = flag.String("trace-out", "", "write JSONL trace events (compile/invoke/fallback) to this file")
	autoCompile          = flag.Bool("autocompile", false, "tiered execution: compile hot DownValue definitions in the background and dispatch them as compiled code")
	autoCompileThreshold = flag.Uint64("autocompile-threshold", 50, "invocation count at which a definition is promoted to the optimising tier (with -autocompile)")
	stencilThreshold     = flag.Uint64("autocompile-stencil-threshold", 0, "invocation count for the fast stencil baseline tier (0 = threshold/5, with -autocompile)")
	stencilOnly          = flag.Bool("autocompile-stencil-only", false, "pin hot definitions to the stencil baseline tier; never upgrade to the optimising backend")
	noStencil            = flag.Bool("autocompile-no-stencil", false, "skip the stencil baseline tier: promote hot definitions straight to the optimising backend")
	autoDrain            = flag.Bool("autocompile-drain", false, "wait for queued background promotions after every input: deterministic tier transitions for differential harnesses (with -autocompile)")
	artifactDir          = flag.String("artifact-dir", os.Getenv("WOLFC_ARTIFACT_DIR"), "persist compiled artifacts to this directory so later sessions warm-start from disk (also WOLFC_ARTIFACT_DIR)")
)

func main() {
	flag.Parse()
	if *stencilOnly && *noStencil {
		fmt.Fprintln(os.Stderr, "wolfrepl: -autocompile-stencil-only and -autocompile-no-stencil are mutually exclusive")
		os.Exit(2)
	}
	if *artifactDir != "" {
		if _, err := core.EnableArtifactStore(*artifactDir); err != nil {
			fmt.Fprintln(os.Stderr, "wolfrepl: -artifact-dir:", err)
			os.Exit(2)
		}
	}
	if *metricsAddr != "" {
		srv, err := obs.ServeMetrics(*metricsAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "wolfrepl:", err)
			os.Exit(2)
		}
		defer srv.Close()
		fmt.Printf("metrics: http://%s/metrics and /debug/funcs\n", srv.Addr())
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "wolfrepl: -trace-out:", err)
			os.Exit(2)
		}
		obs.SetTraceWriter(f)
		defer func() {
			obs.SetTraceWriter(nil)
			f.Close()
		}()
	}

	e := engine.New(engine.Options{
		ID:       "repl",
		LegacyVM: true, // the legacy bytecode Compile, alongside FunctionCompile
		Tiering:  *autoCompile,
		Tier: core.TierPolicy{
			Threshold:        *autoCompileThreshold,
			StencilThreshold: *stencilThreshold,
			DisableO2:        *stencilOnly,
			DisableStencil:   *noStencil,
		},
	})
	defer e.Close()
	if *autoCompile {
		// Tiered execution (ISSUE 5): hot DownValue definitions are
		// compiled in the background and dispatched as compiled code.
		// Stats go to stderr on exit so stdout stays bit-identical to an
		// untiered session. The worker pool is drained before the snapshot
		// (and before the deferred e.Close retires the namespace) so
		// in-flight promotions are counted, not inflated by shutdown.
		defer func() {
			e.Tiering.Close()
			s := e.Stats()
			fmt.Fprintf(os.Stderr,
				"autocompile: %d symbols tracked, %d promoted (%d stencil, %d upgraded; %d installed now), %d compiled dispatches, %d guard misses, %d soft fallbacks, %d compile failures, %d retires, %d aborts\n",
				s.Tracked, s.Promotions, s.StencilPromotions, s.Upgrades, s.Installed, s.CompiledCalls, s.GuardMisses, s.SoftFallbacks, s.CompileFailures, s.Retires, s.Aborts)
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt)
	busy := make(chan struct{}, 1)
	go func() {
		for range sig {
			select {
			case <-busy: // evaluation in flight: abort it (F3)
				e.Abort()
				busy <- struct{}{}
			default: // idle prompt: quit
				fmt.Println("\nGoodbye.")
				os.Exit(0)
			}
		}
	}()

	fmt.Println("Wolfram Language compiler reproduction — interactive session")
	fmt.Println("Compile[...] targets the bytecode WVM; FunctionCompile[...] the new compiler.")
	in := bufio.NewScanner(os.Stdin)
	in.Buffer(make([]byte, 1<<20), 1<<20)
	n := 0
	for {
		n++
		fmt.Printf("In[%d]:= ", n)
		if !in.Scan() {
			fmt.Println()
			return
		}
		line := strings.TrimSpace(in.Text())
		if line == "" || strings.HasPrefix(line, "(*") && strings.HasSuffix(line, "*)") {
			n--
			continue
		}
		if line == "Quit" || line == "Exit" {
			return
		}
		busy <- struct{}{}
		res, err := e.Eval(line, 0)
		if *autoDrain && e.Tiering != nil {
			e.Tiering.WaitIdle()
		}
		<-busy
		fmt.Print(res.Output) // Print/message text, in evaluation order
		if err != nil {
			if msg, ok := strings.CutPrefix(err.Error(), "syntax: "); ok {
				fmt.Println("Syntax:", msg)
			} else {
				fmt.Println("Error:", err)
			}
			continue
		}
		if res.Value != nil && res.Value != expr.SymNull {
			fmt.Printf("Out[%d]= %s\n", n, expr.InputForm(res.Value))
		}
	}
}
