// Command wolfserve runs the multi-tenant evaluation service: per-session
// isolated engines (kernel + compiler + tiering + registry namespace) over
// HTTP/JSON, with the process-wide compile cache and artifact store shared
// across sessions so tenants warm each other's compiles.
//
//	wolfserve -addr :8080 -autocompile
//	curl -s -X POST localhost:8080/v1/sessions                      # {"id":"s-1"}
//	curl -s -X POST localhost:8080/v1/sessions/s-1/eval \
//	     -d '{"input":"f[n_] := 2*n + 1; f[20]", "timeout_ms": 5000}'
//	curl -s -X DELETE localhost:8080/v1/sessions/s-1
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"wolfc/internal/artifact"
	"wolfc/internal/core"
	"wolfc/internal/obs"
	"wolfc/internal/serve"
)

var (
	addr        = flag.String("addr", ":8080", "listen address")
	maxSessions = flag.Int("max-sessions", 64, "maximum live sessions; creation past this answers 429")
	maxInflight = flag.Int("max-inflight", 32, "maximum concurrently admitted eval requests; admission past this answers 429")
	defTimeout  = flag.Duration("default-timeout", 30*time.Second, "evaluation deadline when a request omits timeout_ms")
	maxTimeout  = flag.Duration("max-timeout", 5*time.Minute, "hard cap on any requested evaluation deadline")

	autoCompile          = flag.Bool("autocompile", true, "tiered execution inside each session: compile hot definitions in the background")
	autoCompileThreshold = flag.Uint64("autocompile-threshold", 50, "invocation count at which a definition is promoted to the optimising tier")
	tierWorkers          = flag.Int("autocompile-workers", 1, "background compile workers per session (0 = GOMAXPROCS)")

	idleTimeout = flag.Duration("idle-timeout", 0, "evict sessions idle this long (0 = never)")

	traceCapture = flag.Int("trace-capture", 256, "keep this many recent request trace trees in memory behind /debug/traces (0 = off)")
	traceSample  = flag.Float64("trace-sample", 1.0, "probabilistic request-trace sampling rate in [0,1]")
	traceOut     = flag.String("trace-out", "", "also append JSONL trace events to this file")

	artifactDir = flag.String("artifact-dir", os.Getenv("WOLFC_ARTIFACT_DIR"),
		"persist compiled artifacts to this directory, shared across sessions and server restarts (also WOLFC_ARTIFACT_DIR; empty = in-process memory store shared across sessions only)")
)

func main() {
	flag.Parse()

	// The artifact tier is keyed by the registry-free stable content key, so
	// every session shares it: tenant B's first compile of a function tenant
	// A already compiled is a cheap load instead of a full pipeline run.
	// With no directory configured the store is memory-backed — shared
	// within the process, gone at exit.
	if *artifactDir != "" {
		if _, err := core.EnableArtifactStore(*artifactDir); err != nil {
			fmt.Fprintf(os.Stderr, "wolfserve: artifact store: %v\n", err)
			os.Exit(1)
		}
	} else {
		core.SetArtifactStore(artifact.OpenMemory())
	}

	// Request tracing: the in-memory recent-traces store backs
	// /debug/traces (JSON and ?format=chrome); the optional JSONL file sink
	// rides the same collector. Sampling is decided per trace id, so one
	// request's events share a single fate across all layers.
	obs.SetTraceSampling(*traceSample)
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fmt.Fprintf(os.Stderr, "wolfserve: trace-out: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		obs.SetTraceWriter(f)
		defer obs.SetTraceWriter(nil) // detach = final synchronous drain
	}
	if *traceCapture > 0 {
		obs.EnableTraceCapture(*traceCapture)
	}

	srv := serve.NewServer(serve.Options{
		MaxSessions:    *maxSessions,
		MaxInflight:    *maxInflight,
		DefaultTimeout: *defTimeout,
		MaxTimeout:     *maxTimeout,
		Tiering:        *autoCompile,
		Tier: core.TierPolicy{
			Threshold: *autoCompileThreshold,
			Workers:   *tierWorkers,
		},
		IdleTimeout: *idleTimeout,
	})
	fmt.Fprintf(os.Stderr, "wolfserve: listening on %s (max-sessions %d, max-inflight %d)\n",
		*addr, *maxSessions, *maxInflight)
	if err := http.ListenAndServe(*addr, srv.Handler()); err != nil {
		fmt.Fprintf(os.Stderr, "wolfserve: %v\n", err)
		os.Exit(1)
	}
}
