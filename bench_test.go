// Package wolfc_test is the benchmark harness regenerating every table and
// figure of the paper's evaluation (§6 and Figure 1/Table 1 claims); see
// EXPERIMENTS.md for the experiment index and measured results, and
// cmd/wolfbench for the formatted report with normalised slowdowns.
//
// Workload sizes are reduced from the paper's (noted per benchmark) so the
// full suite runs in minutes on one core; cmd/wolfbench runs paper-size
// workloads. Relative shape, not absolute time, is the claim under test.
package wolfc_test

import (
	"fmt"
	"testing"

	"wolfc/internal/bench"
	"wolfc/internal/core"
	"wolfc/internal/expr"
	"wolfc/internal/kernel"
	"wolfc/internal/numerics"
	"wolfc/internal/parser"
)

// fig2Sizes are the harness sizes (paper size in the comment).
var fig2Sizes = map[string]int{
	"fnv1a":      200_000, // paper: 1e6-char string
	"mandelbrot": 1000,    // paper: 1000 max iterations (full)
	"dot":        200,     // paper: 1000x1000
	"blur":       200,     // paper: 1000x1000
	"histogram":  200_000, // paper: 1e6 values
	"primeq":     100_000, // paper: 1e6 range
	"qsort":      1 << 13, // paper: 2^15 pre-sorted
	"randomwalk": 10_000,  // paper Figure 1: 1e5
}

// interpSizes shrink interpreter runs so the suite terminates; wolfbench
// scales the measured time back to the common workload.
var interpSizes = map[string]int{
	"fnv1a":      5_000,
	"mandelbrot": 20,
	"dot":        48,
	"blur":       32,
	"histogram":  5_000,
	"primeq":     3_000,
	"qsort":      1 << 7,
	"randomwalk": 500,
}

func runPrepared(b *testing.B, name string, impl bench.Impl, size int) {
	b.Helper()
	run, err := bench.Prepare(name, impl, size)
	if err != nil {
		b.Skipf("%s/%s: %v", name, impl, err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run()
	}
}

// BenchmarkFig2 regenerates Figure 2: the seven benchmarks against the
// hand-written reference, for the new compiler (abortable and
// non-abortable), the bytecode compiler, and (scaled down) the interpreter.
func BenchmarkFig2(b *testing.B) {
	names := []string{"fnv1a", "mandelbrot", "dot", "blur", "histogram", "primeq", "qsort"}
	for _, name := range names {
		for _, impl := range bench.Impls() {
			size := fig2Sizes[name]
			if impl == bench.ImplInterp {
				size = interpSizes[name]
			}
			b.Run(fmt.Sprintf("%s/%s", name, impl), func(b *testing.B) {
				runPrepared(b, name, impl, size)
			})
		}
	}
}

// BenchmarkFigure1RandomWalk regenerates the Figure 1 comparison: the same
// NestList program interpreted, bytecode compiled (after the structural
// rewrite the bytecode compiler requires), and compiled by the new
// compiler.
func BenchmarkFigure1RandomWalk(b *testing.B) {
	for _, impl := range bench.Impls() {
		size := fig2Sizes["randomwalk"]
		if impl == bench.ImplInterp {
			size = interpSizes["randomwalk"]
		}
		b.Run(string(impl), func(b *testing.B) {
			runPrepared(b, "randomwalk", impl, size)
		})
	}
}

// BenchmarkFindRootAutoCompile regenerates the §1 claim: FindRoot with
// auto-compilation of the equation (and its symbolic derivative) versus the
// purely interpreted evaluation path.
func BenchmarkFindRootAutoCompile(b *testing.B) {
	for _, auto := range []bool{true, false} {
		label := "autocompile"
		if !auto {
			label = "interpreted"
		}
		b.Run(label, func(b *testing.B) {
			k := kernel.New()
			eq := parser.MustParse("Sin[x] + Exp[x]")
			opts := numerics.DefaultFindRootOptions()
			opts.AutoCompile = auto
			// Warm the auto-compile cache so the steady state is timed.
			if _, err := numerics.FindRoot(k, eq, expr.Sym("x"), 0, opts); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := numerics.FindRoot(k, eq, expr.Sym("x"), 0, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationNoInlineMandelbrot regenerates §6's inlining ablation
// ("disabling function inline within the new compiler results in a 10x
// slowdown for Mandelbrot"): the same Mandelbrot with InlinePolicy none
// versus auto. The effect here shows on the lambda-heavy formulation, where
// every per-step function becomes an out-of-line call.
func BenchmarkAblationNoInlineMandelbrot(b *testing.B) {
	// A formulation with a per-pixel helper lambda, so inlining has a call
	// to remove.
	src := `Function[{Typed[maxIter, "MachineInteger"]},
		Module[{total = 0, xi = 0, yi = 0, step = Function[{zr, zi, cr}, zr*zr - zi*zi + cr], cr = 0., ci = 0., zr = 0., zi = 0., t = 0., iters = 0},
			While[xi <= 20,
				cr = -1. + 0.1*xi;
				yi = 0;
				While[yi <= 15,
					ci = -1. + 0.1*yi;
					zr = 0.; zi = 0.; iters = 0;
					While[iters < maxIter && zr*zr + zi*zi < 4.,
						t = step[zr, zi, cr];
						zi = 2.*zr*zi + ci;
						zr = t;
						iters = iters + 1];
					total = total + iters;
					yi = yi + 1];
				xi = xi + 1];
			total]]`
	for _, policy := range []string{"auto", "none"} {
		b.Run("inline-"+policy, func(b *testing.B) {
			k := kernel.New()
			c := core.NewCompiler(k)
			c.Options.InlinePolicy = policy
			ccf, err := c.FunctionCompile(parser.MustParse(src))
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ccf.CallRaw(int64(1000))
			}
		})
	}
}

// BenchmarkAblationQSortCopy regenerates §6's QSort discussion: the default
// mutability protocol (one copy of the input, then in-place sorting) versus
// the conservative protocol that copies on every Part assignment.
func BenchmarkAblationQSortCopy(b *testing.B) {
	size := 1 << 11
	b.Run("copy-elided", func(b *testing.B) {
		run, err := bench.Prepare("qsort", bench.ImplCompiled, size)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			run()
		}
	})
	b.Run("copy-always", func(b *testing.B) {
		run, err := bench.PrepareQSortCopyAblation(size)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			run()
		}
	})
}

// BenchmarkAblationAbortChecks isolates the abort-handling overhead (§6:
// "We look at abortability, since it has the biggest impact"), on the two
// benchmarks the paper singles out: Blur (tight stencil, large overhead)
// and Mandelbrot (heavy loop body, negligible overhead).
func BenchmarkAblationAbortChecks(b *testing.B) {
	for _, name := range []string{"blur", "mandelbrot", "histogram"} {
		for _, impl := range []bench.Impl{bench.ImplCompiled, bench.ImplCompiledNoAbort} {
			b.Run(fmt.Sprintf("%s/%s", name, impl), func(b *testing.B) {
				runPrepared(b, name, impl, fig2Sizes[name])
			})
		}
	}
}

// BenchmarkCompileTime measures the compiler itself (§6: the internal suite
// tracks "compilation time, time to run specific passes").
func BenchmarkCompileTime(b *testing.B) {
	sources := map[string]string{
		"addOne":     `Function[{Typed[arg, "MachineInteger"]}, arg + 1]`,
		"loop":       `Function[{Typed[n, "MachineInteger"]}, Module[{s = 0, i = 1}, While[i <= n, s = s + i*i; i++]; s]]`,
		"randomwalk": `Function[{Typed[len, "MachineInteger"]}, NestList[Module[{arg = RandomReal[{0., 6.28}]}, {-Cos[arg], Sin[arg]} + #] &, {0., 0.}, len]]`,
	}
	for name, src := range sources {
		b.Run(name, func(b *testing.B) {
			k := kernel.New()
			c := core.NewCompiler(k)
			fn := parser.MustParse(src)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := c.FunctionCompile(fn); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationPrimeQConstants regenerates §6's constant-array
// discussion ("Due to non-optimal handling of constant arrays, we observe a
// 1.5x performance degradation"): the embedded seed table interned once
// versus rebuilt per call of a per-candidate primality test.
func BenchmarkAblationPrimeQConstants(b *testing.B) {
	const limit = 20_000
	for _, naive := range []bool{false, true} {
		label := "interned"
		if naive {
			label = "per-call"
		}
		b.Run(label, func(b *testing.B) {
			run, err := bench.PreparePrimeQPerCandidate(limit, naive)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				run()
			}
		})
	}
}
