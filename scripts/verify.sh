#!/usr/bin/env sh
# verify.sh — the repo's full acceptance gate.
#
#   scripts/verify.sh          # tier-1 suite + performance regression gate
#   scripts/verify.sh -fast    # tier-1 suite only (skip the benchmark gate)
#
# Tier 1 (ROADMAP.md): build, vet, tests, race tests. The performance gate
# reruns the superinstruction-fusion suite and diffs it against the
# checked-in baseline with `wolfbench -compare`, which exits non-zero on a
# >10% per-row regression.
set -eu
cd "$(dirname "$0")/.."

echo "== tier 1: go build =="
go build ./...
echo "== tier 1: go vet =="
go vet ./...
echo "== tier 1: go test =="
go test ./...
echo "== tier 1: go test -race =="
go test -race ./...

if [ "${1:-}" = "-fast" ]; then
    echo "verify: tier-1 OK (benchmark gate skipped)"
    exit 0
fi

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

echo "== autocompile gate: tiered wolfrepl is bit-identical to the interpreter =="
# Tiered execution (ISSUE 5) promotes hot DownValues to compiled code in
# the background; the differential smoke runs the example corpus with and
# without -autocompile and requires byte-identical stdout. The threshold
# of 2 promotes everything the corpus defines, and the corpus covers
# overflow fallback, guard misses, redefinition, and Clear.
go build -o "$tmp/wolfrepl" ./cmd/wolfrepl
"$tmp/wolfrepl" < examples/autocompile/corpus.wl > "$tmp/plain.out"
"$tmp/wolfrepl" -autocompile -autocompile-threshold 2 \
    < examples/autocompile/corpus.wl > "$tmp/tiered.out" 2> "$tmp/tiered.stats"
cmp "$tmp/plain.out" "$tmp/tiered.out" || {
    echo "verify: FAIL — tiered output diverged from the interpreter"
    diff "$tmp/plain.out" "$tmp/tiered.out" | head -20
    exit 1
}
cat "$tmp/tiered.stats"

echo "== perf gate: wolfbench -fusion vs BENCH_fusion.json (>10% fails) =="
# Shared-machine timing is noisy; a per-row best-of-3 filters load spikes
# so the 10% threshold measures the code, not the neighbours. The
# checked-in baseline is recorded the same way.
for i in 1 2 3; do
    go run ./cmd/wolfbench -fusion -json "$tmp/fusion$i.json" >/dev/null
done
python3 - "$tmp" <<'EOF'
import json, sys
tmp = sys.argv[1]
key = lambda r: (r["name"], r["impl"], r.get("workers", 0), r["size"])
best = None
for i in (1, 2, 3):
    d = json.load(open(f"{tmp}/fusion{i}.json"))
    if best is None:
        best = d
        continue
    by = {key(r): r for r in best["results"]}
    for r in d["results"]:
        k = key(r)
        if k in by and r["ns_per_op"] < by[k]["ns_per_op"]:
            by[k]["ns_per_op"] = r["ns_per_op"]
json.dump(best, open(f"{tmp}/fusion.json", "w"))
EOF
go run ./cmd/wolfbench -compare BENCH_fusion.json "$tmp/fusion.json"

echo "== obs gate: /metrics endpoint + trace stream smoke test =="
go run ./cmd/wolfbench -metrics-selftest

echo "== obs gate: observability overhead on scalarloop (>2% fails) =="
# The observability layer must be free when nobody is watching. The host's
# absolute wall-clock drifts more than 2% between runs (see EXPERIMENTS.md),
# so the budget is enforced drift-immune: one process interleaves scalarloop
# with metrics disabled and enabled; the ratio cancels machine speed, and
# the disabled path is a strict subset of the enabled path, so the bound
# covers both. A failure means per-iteration instrumentation leaked into
# the default build.
go run ./cmd/wolfbench -obs-overhead -threshold 0.02
echo "verify: OK"
