#!/usr/bin/env sh
# verify.sh — the repo's full acceptance gate.
#
#   scripts/verify.sh          # tier-1 suite + performance regression gate
#   scripts/verify.sh -fast    # tier-1 suite only (skip the benchmark gate)
#
# Tier 1 (ROADMAP.md): build, vet, tests, race tests. The performance gate
# reruns the superinstruction-fusion suite and diffs it against the
# checked-in baseline with `wolfbench -compare`, which exits non-zero on a
# >10% per-row regression.
set -eu
cd "$(dirname "$0")/.."

echo "== tier 1: go build =="
go build ./...
echo "== tier 1: go vet =="
go vet ./...
echo "== tier 1: go test =="
go test ./...
echo "== tier 1: go test -race =="
go test -race ./...

if [ "${1:-}" = "-fast" ]; then
    echo "verify: tier-1 OK (benchmark gate skipped)"
    exit 0
fi

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

echo "== autocompile gate: tiered wolfrepl is bit-identical to the interpreter =="
# Tiered execution (ISSUE 5) promotes hot DownValues to compiled code in
# the background; the differential smoke runs the example corpus with and
# without -autocompile and requires byte-identical stdout. The threshold
# of 2 promotes everything the corpus defines, and the corpus covers
# overflow fallback, guard misses, redefinition, and Clear.
go build -o "$tmp/wolfrepl" ./cmd/wolfrepl
"$tmp/wolfrepl" < examples/autocompile/corpus.wl > "$tmp/plain.out"
"$tmp/wolfrepl" -autocompile -autocompile-threshold 2 \
    < examples/autocompile/corpus.wl > "$tmp/tiered.out" 2> "$tmp/tiered.stats"
cmp "$tmp/plain.out" "$tmp/tiered.out" || {
    echo "verify: FAIL — tiered output diverged from the interpreter"
    diff "$tmp/plain.out" "$tmp/tiered.out" | head -20
    exit 1
}
cat "$tmp/tiered.stats"

echo "== stencil gate: interpreter vs stencil tier vs O2 tier are bit-identical =="
# The copy-and-patch baseline tier (ISSUE 6) sits between the interpreter
# and the optimising backend. All three execution modes must produce
# byte-identical stdout on the corpus: -autocompile-stencil-only pins hot
# definitions to the stencil tier (uncovered shapes fall back to the full
# pipeline), -autocompile-no-stencil promotes straight to O2.
"$tmp/wolfrepl" -autocompile -autocompile-threshold 2 -autocompile-stencil-only \
    < examples/autocompile/corpus.wl > "$tmp/stencil.out" 2> "$tmp/stencil.stats"
cmp "$tmp/plain.out" "$tmp/stencil.out" || {
    echo "verify: FAIL — stencil-tier output diverged from the interpreter"
    diff "$tmp/plain.out" "$tmp/stencil.out" | head -20
    exit 1
}
"$tmp/wolfrepl" -autocompile -autocompile-threshold 2 -autocompile-no-stencil \
    < examples/autocompile/corpus.wl > "$tmp/o2.out" 2> "$tmp/o2.stats"
cmp "$tmp/plain.out" "$tmp/o2.out" || {
    echo "verify: FAIL — O2-tier output diverged from the interpreter"
    diff "$tmp/plain.out" "$tmp/o2.out" | head -20
    exit 1
}
cat "$tmp/stencil.stats"

echo "== pattern gate: dispatch-tree fuzz corpus is bit-identical across all tiers =="
# Compiled pattern dispatch (ISSUE 10): the generated corpus
# (cmd/patgen -> examples/patterns/corpus.wl) mixes literal rules, head
# restrictions, /; guards, list destructuring, and repeated variables with
# calls that hit, guard-miss, kind-miss, and fall outside the compiled
# fragment. All four execution modes must produce byte-identical stdout;
# -autocompile-drain makes tier transitions deterministic so the compiled
# path is actually exercised, and the stats must prove both compiled
# dispatches and guard misses happened.
for mode in "" "-autocompile-stencil-only" "-autocompile-no-stencil"; do
    "$tmp/wolfrepl" < examples/patterns/corpus.wl > "$tmp/pat-plain.out"
    "$tmp/wolfrepl" -autocompile -autocompile-threshold 2 -autocompile-drain $mode \
        < examples/patterns/corpus.wl > "$tmp/pat-tiered.out" 2> "$tmp/pat.stats"
    cmp "$tmp/pat-plain.out" "$tmp/pat-tiered.out" || {
        echo "verify: FAIL — pattern corpus diverged (mode: ${mode:-default})"
        diff "$tmp/pat-plain.out" "$tmp/pat-tiered.out" | head -20
        exit 1
    }
    grep -q " 0 compiled dispatches" "$tmp/pat.stats" && {
        echo "verify: FAIL — pattern corpus never dispatched compiled code (mode: ${mode:-default})"
        cat "$tmp/pat.stats"
        exit 1
    }
    grep -q " 0 guard misses" "$tmp/pat.stats" && {
        echo "verify: FAIL — pattern corpus never exercised the guard-miss fallback (mode: ${mode:-default})"
        cat "$tmp/pat.stats"
        exit 1
    }
done
cat "$tmp/pat.stats"
# The checked-in corpus must be exactly what the generator emits.
go run ./cmd/patgen > "$tmp/corpus-regen.wl"
cmp examples/patterns/corpus.wl "$tmp/corpus-regen.wl" || {
    echo "verify: FAIL — examples/patterns/corpus.wl is stale; regenerate with cmd/patgen"
    exit 1
}

echo "== pattern gate: guarded dispatch speedup (compiled <10x over interpreter fails) =="
# The acceptance workload: a definition with _Integer blanks and a /;
# guard auto-promotes and must beat the interpreter by >=10x (measured
# ~80x). The symbolic-differentiation row never sketches to machine kinds,
# so it must stay interpreted and cost within 1.5x of the plain kernel —
# the dispatch hook's sketch rejection has to be cheap. Best-of-3 filters
# shared-host load spikes, same discipline as the fusion gate.
for i in 1 2 3; do
    go run ./cmd/wolfbench -patterns -json "$tmp/patterns$i.json" >/dev/null
done
python3 - "$tmp" <<'EOF'
import json, sys
tmp = sys.argv[1]
gfib = 1e9
deriv = 1e9
for i in (1, 2, 3):
    d = json.load(open(f"{tmp}/patterns{i}.json"))
    ns = {(r["name"], r["impl"]): r["ns_per_op"] for r in d["results"]}
    gfib = min(gfib, ns[("patterns_gfib", "tiered")] / ns[("patterns_gfib", "interpreter")])
    deriv = min(deriv, ns[("patterns_deriv", "tiered")] / ns[("patterns_deriv", "interpreter")])
print(f"guarded fib: compiled dispatch {1/gfib:.1f}x over the interpreter (gate 10x)")
if 1 / gfib < 10:
    sys.exit(f"verify: FAIL — guarded pattern dispatch only {1/gfib:.1f}x over the interpreter")
print(f"symbolic differentiation: tiered kernel at {deriv:.2f}x interpreter cost (gate 1.5x)")
if deriv > 1.5:
    sys.exit(f"verify: FAIL — un-promotable workload pays {deriv:.2f}x under tiering")
EOF

echo "== stencil gate: compile latency and warmup (backend <10x fails, steady <5x fails) =="
# The point of the baseline tier is compile latency. The gate runs on the
# backend ratio — quick-infer + stencil assembly vs inference + passes +
# codegen — because the MExpr front half (macro/binding/lower) is shared
# verbatim by both tiers and would otherwise dilute the comparison; both
# ratios are reported in the JSON (see EXPERIMENTS.md). Steady-state
# speedup over the interpreter is gated at 5x (measured ~60x on fib) so
# the gate stays robust on loaded shared machines. Like the fusion gate,
# the run is repeated three times and the best ratio is taken: shared-host
# load spikes hit the small stencil numbers far harder than the large O2
# ones, so a single noisy run under-reports the ratio.
for i in 1 2 3; do
    go run ./cmd/wolfbench -warmup -warmup-out "$tmp/warmup$i.json" >/dev/null
done
python3 - "$tmp" <<'EOF'
import json, sys
tmp = sys.argv[1]
backend = total = steady = 0.0
for i in (1, 2, 3):
    d = json.load(open(f"{tmp}/warmup{i}.json"))
    backend = max(backend, d["compile_backend_ratio_o2_over_stencil"])
    total = max(total, d["compile_total_ratio_o2_over_stencil"])
    by = {m["mode"]: m["steady_ns"] for m in d["modes"]}
    steady = max(steady, by["interpreter"] / by["stencil"])
print(f"stencil compile: backend {backend:.1f}x, total {total:.1f}x faster than the O2 pipeline")
if backend < 10:
    sys.exit(f"verify: FAIL — stencil backend compile ratio {backend:.1f}x < 10x")
print(f"stencil steady state: {steady:.1f}x faster than the interpreter")
if steady < 5:
    sys.exit(f"verify: FAIL — stencil steady state only {steady:.1f}x over the interpreter")
EOF

echo "== perf gate: wolfbench -fusion vs BENCH_fusion.json (>10% fails) =="
# Shared-machine timing is noisy; a per-row best-of-3 filters load spikes
# so the 10% threshold measures the code, not the neighbours. The
# checked-in baseline is recorded the same way.
for i in 1 2 3; do
    go run ./cmd/wolfbench -fusion -json "$tmp/fusion$i.json" >/dev/null
done
python3 - "$tmp" <<'EOF'
import json, sys
tmp = sys.argv[1]
key = lambda r: (r["name"], r["impl"], r.get("workers", 0), r["size"])
best = None
for i in (1, 2, 3):
    d = json.load(open(f"{tmp}/fusion{i}.json"))
    if best is None:
        best = d
        continue
    by = {key(r): r for r in best["results"]}
    for r in d["results"]:
        k = key(r)
        if k in by and r["ns_per_op"] < by[k]["ns_per_op"]:
            by[k]["ns_per_op"] = r["ns_per_op"]
json.dump(best, open(f"{tmp}/fusion.json", "w"))
EOF
go run ./cmd/wolfbench -compare BENCH_fusion.json "$tmp/fusion.json"

echo "== obs gate: /metrics endpoint + trace stream smoke test =="
go run ./cmd/wolfbench -metrics-selftest

echo "== obs gate: observability overhead on scalarloop (>2% fails) =="
# The observability layer must be free when nobody is watching. The host's
# absolute wall-clock drifts more than 2% between runs (see EXPERIMENTS.md),
# so the budget is enforced drift-immune: one process interleaves scalarloop
# with metrics disabled and enabled; the ratio cancels machine speed, and
# the disabled path is a strict subset of the enabled path, so the bound
# covers both. A failure means per-iteration instrumentation leaked into
# the default build. A real leak is systematic — it fails every run — so
# the gate retries up to three times to ride out load spikes that even
# the interleaving cannot cancel (measured up to ±5% on the shared host).
ok=0
for i in 1 2 3; do
    if go run ./cmd/wolfbench -obs-overhead -threshold 0.02; then
        ok=1
        break
    fi
    echo "obs-overhead: noisy run $i, retrying"
done
if [ "$ok" != 1 ]; then
    echo "verify: FAIL — obs overhead gate failed 3/3 runs"
    exit 1
fi

echo "== obs gate: request-tracing overhead on the serve path (armed >2% fails) =="
# ISSUE 9: arming the span pipeline (capture on, sampling 0) must cost a
# production request essentially nothing — every request mints and threads
# a span but every emission site sees a suppressed one and skips. Same
# drift-immune interleaved A/B and retry discipline as the obs gate above.
ok=0
for i in 1 2 3; do
    if go run ./cmd/wolfbench -serve-trace-overhead -threshold 0.02; then
        ok=1
        break
    fi
    echo "serve-trace-overhead: noisy run $i, retrying"
done
if [ "$ok" != 1 ]; then
    echo "verify: FAIL — serve trace-overhead gate failed 3/3 runs"
    exit 1
fi

echo "== artifact gate: cold vs warm start (warm total compile <5x fails) =="
# The persistent artifact store (ROADMAP item 4) must make warm starts —
# a new process over a populated store — skip the pipeline's front half.
# Best-of-3 with a fresh store each round filters shared-host load spikes;
# every warm compile must hit the disk tier and reproduce the cold result
# bit for bit. The same JSON carries the sharded vs single-lock hit-path
# throughput A/B: ≥2x at 8 goroutines on a multi-core host; on a
# single-core host goroutines time-slice, no lock structure can beat
# another, and the gate instead requires that sharding costs nothing.
for i in 1 2 3; do
    rm -rf "$tmp/artifacts"
    go run ./cmd/wolfbench -coldstart -artifact-dir "$tmp/artifacts" \
        -coldstart-out "$tmp/coldstart$i.json" >/dev/null || {
        echo "verify: FAIL — coldstart suite errored"
        exit 1
    }
done
python3 - "$tmp" <<'EOF'
import json, sys
tmp = sys.argv[1]
speedup = tp = 0.0
multicore = True
for i in (1, 2, 3):
    d = json.load(open(f"{tmp}/coldstart{i}.json"))
    if not d["all_outputs_match"]:
        sys.exit("verify: FAIL — warm-start outputs diverged from cold compiles")
    if not all(r["warm_artifact_hit"] for r in d["rows"]):
        sys.exit("verify: FAIL — a warm compile missed the artifact store")
    speedup = max(speedup, d["warm_compile_speedup"])
    tp = max(tp, d["hit_throughput"]["sharded_speedup"])
    multicore = d["env"]["num_cpu"] >= 2
print(f"cold/warm total compile speedup: {speedup:.1f}x (gate 5x)")
if speedup < 5:
    sys.exit(f"verify: FAIL — warm start only {speedup:.1f}x faster than cold")
if multicore:
    print(f"sharded hit throughput at 8 goroutines: {tp:.2f}x over single lock (gate 2x)")
    if tp < 2:
        sys.exit(f"verify: FAIL — sharded front only {tp:.2f}x over a single lock")
else:
    print(f"sharded hit throughput: {tp:.2f}x over single lock")
    print("(single-core host: no parallelism to win; gate relaxed to must-not-regress, 0.7x)")
    if tp < 0.7:
        sys.exit(f"verify: FAIL — sharding costs throughput even single-core: {tp:.2f}x")
EOF

echo "== artifact gate: truncated store entry is a clean miss =="
# Corrupt one entry in the populated store (dd truncation mid-header) and
# re-run: the store must detect it by checksum/length, drop it, recompile,
# and still produce matching outputs — never crash.
wca="$(ls "$tmp/artifacts"/*.wca | head -1)"
dd if=/dev/null of="$wca" bs=1 seek=40 2>/dev/null
go run ./cmd/wolfbench -coldstart -artifact-dir "$tmp/artifacts" \
    -coldstart-out "$tmp/coldstart-corrupt.json" >/dev/null || {
    echo "verify: FAIL — coldstart crashed on a truncated store entry"
    exit 1
}
python3 - "$tmp" <<'EOF'
import json, sys
d = json.load(open(f"{sys.argv[1]}/coldstart-corrupt.json"))
if not d["all_outputs_match"]:
    sys.exit("verify: FAIL — corrupt-store rerun diverged")
if d["artifact_store"]["corrupt_drops"] < 1:
    sys.exit("verify: FAIL — truncated entry was not detected and dropped")
print("truncated entry dropped and recompiled; outputs identical")
EOF
echo "== fnreg gate: no package-level mutable registry state outside the default instance =="
# ISSUE 8 made the function registry instance-scoped (*fnreg.Registry);
# ISSUE 10 retired the deprecated package-level wrapper API, so the only
# sanctioned package-level state in the whole package is the Default()
# instance pair (defaultOnce/defaultReg) in default.go. The gate extracts
# every package-level var and allows only that pair plus obs counter
# handles (process-wide aggregate counters, not registry state).
awk '
    FNR == 1 { inblock = 0 }
    /^var \(/ { inblock = 1; next }
    inblock && /^\)/ { inblock = 0; next }
    inblock  { print FILENAME ": " $0; next }
    /^var /  { print FILENAME ": " $0 }
' $(ls internal/fnreg/*.go | grep -v -e _test.go) \
    | grep -v -e 'obs.NewCounter(' -e ': *//' -e ': *$' \
        -e 'default.go: .*defaultOnce' -e 'default.go: .*defaultReg' \
        > "$tmp/fnreg-vars" || true
if [ -s "$tmp/fnreg-vars" ]; then
    echo "verify: FAIL — package-level mutable state in fnreg beyond the default instance:"
    cat "$tmp/fnreg-vars"
    exit 1
fi
# The wrapper API must stay retired: Default() is the only package-level
# function touching the default instance.
if grep -n '^func \(Reserve\|Install\|Upgrade\|Lookup\|Retire\|RetireEntry\|Names\|Reset\)(' \
    internal/fnreg/*.go; then
    echo "verify: FAIL — deprecated package-level fnreg wrappers reintroduced"
    exit 1
fi
echo "fnreg package state is instance-scoped (Default() instance only)"

echo "== serve gate: wolfserve end-to-end smoke (create / eval / isolate / destroy) =="
# The multi-tenant server (ISSUE 8): boot the real binary, drive two
# sessions through colliding definitions over HTTP, require isolation, a
# deadline abort, serve counters on /metrics, and a clean destroy.
go build -o "$tmp/wolfserve" ./cmd/wolfserve
"$tmp/wolfserve" -addr 127.0.0.1:17893 -autocompile-threshold 2 \
    2> "$tmp/wolfserve.log" &
serve_pid=$!
trap 'kill "$serve_pid" 2>/dev/null; rm -rf "$tmp"' EXIT
python3 - <<'EOF' || { echo "verify: FAIL — wolfserve smoke"; cat "$tmp/wolfserve.log"; exit 1; }
import json, time, urllib.request, urllib.error

base = "http://127.0.0.1:17893"
def req(method, path, body=None):
    data = json.dumps(body).encode() if body is not None else None
    r = urllib.request.Request(base + path, data=data, method=method)
    with urllib.request.urlopen(r, timeout=30) as resp:
        raw = resp.read()
        return resp.status, json.loads(raw) if raw.strip() else {}

for i in range(100):
    try:
        urllib.request.urlopen(base + "/healthz", timeout=2); break
    except Exception:
        time.sleep(0.1)
else:
    raise SystemExit("wolfserve never became healthy")

a = req("POST", "/v1/sessions")[1]["id"]
b = req("POST", "/v1/sessions")[1]["id"]
req("POST", f"/v1/sessions/{a}/eval", {"input": "f[n_] := n + 1"})
req("POST", f"/v1/sessions/{b}/eval", {"input": "f[n_] := n * 10"})
va = req("POST", f"/v1/sessions/{a}/eval", {"input": "f[5]"})[1]["value"]
vb = req("POST", f"/v1/sessions/{b}/eval", {"input": "f[5]"})[1]["value"]
if (va, vb) != ("6", "50"):
    raise SystemExit(f"session isolation broken: f[5] = {va!r}, {vb!r}")

st, body = req("POST", f"/v1/sessions/{a}/eval",
               {"input": "While[True, 1]", "timeout_ms": 200})
if not body.get("timed_out") or body.get("value") != "$Aborted":
    raise SystemExit(f"deadline abort failed: {body}")

with urllib.request.urlopen(base + "/metrics", timeout=10) as resp:
    metrics = resp.read().decode()
for want in ("wolfc_serve_evals", "wolfc_serve_sessions_created"):
    if want not in metrics:
        raise SystemExit(f"/metrics missing {want}")

req("DELETE", f"/v1/sessions/{a}")
try:
    req("POST", f"/v1/sessions/{a}/eval", {"input": "1"})
    raise SystemExit("eval on a destroyed session did not 404")
except urllib.error.HTTPError as e:
    if e.code != 404:
        raise SystemExit(f"destroyed session answered {e.code}, want 404")
print("wolfserve smoke: isolation, deadline abort, metrics, destroy all OK")
EOF
kill "$serve_pid" 2>/dev/null
trap 'rm -rf "$tmp"' EXIT

echo "== serve gate: request tracing end-to-end (serve→compile span tree on /debug/traces) =="
# ISSUE 9: a single eval that trips background tier promotion must show up
# on /debug/traces as one trace tree — a serve root plus a compile span
# whose parent_id is the root's span_id and whose engine label is the
# session — and /metrics must carry the per-engine latency histogram.
"$tmp/wolfserve" -addr 127.0.0.1:17894 -autocompile-threshold 2 \
    2> "$tmp/wolfserve-trace.log" &
serve_pid=$!
trap 'kill "$serve_pid" 2>/dev/null; rm -rf "$tmp"' EXIT
python3 - <<'EOF' || { echo "verify: FAIL — tracing smoke"; cat "$tmp/wolfserve-trace.log"; exit 1; }
import json, time, urllib.request

base = "http://127.0.0.1:17894"
def req(method, path, body=None):
    data = json.dumps(body).encode() if body is not None else None
    r = urllib.request.Request(base + path, data=data, method=method)
    with urllib.request.urlopen(r, timeout=30) as resp:
        raw = resp.read()
        return resp.status, json.loads(raw) if raw.strip() else {}

for i in range(100):
    try:
        urllib.request.urlopen(base + "/healthz", timeout=2); break
    except Exception:
        time.sleep(0.1)
else:
    raise SystemExit("wolfserve never became healthy")

sid = req("POST", "/v1/sessions")[1]["id"]
req("POST", f"/v1/sessions/{sid}/eval", {"input": "f[n_] := n*n*n"})
for _ in range(3):
    req("POST", f"/v1/sessions/{sid}/eval", {"input": "f[4]"})

# The tier compile is asynchronous: poll for the linked tree.
deadline = time.time() + 10
linked = False
while time.time() < deadline and not linked:
    with urllib.request.urlopen(base + "/debug/traces", timeout=10) as resp:
        doc = json.loads(resp.read())
    for tr in doc.get("traces", []):
        evs = tr["events"]
        roots = [e for e in evs if e["type"] == "serve" and e["name"] == sid]
        for root in roots:
            for e in evs:
                if e["type"] == "compile" and e.get("parent_id") == root["span_id"]:
                    if e["trace_id"] != root["trace_id"]:
                        raise SystemExit("compile span left the request trace")
                    if e.get("engine") != sid:
                        raise SystemExit(f"compile span engine {e.get('engine')!r}, want {sid!r}")
                    linked = True
    if not linked:
        time.sleep(0.1)
if not linked:
    raise SystemExit("no serve→compile span tree on /debug/traces")

# Chrome export parses and carries events.
with urllib.request.urlopen(base + "/debug/traces?format=chrome", timeout=10) as resp:
    chrome = json.loads(resp.read())
if not chrome.get("traceEvents"):
    raise SystemExit("chrome export empty")

with urllib.request.urlopen(base + "/metrics", timeout=10) as resp:
    metrics = resp.read().decode()
want = f'wolfc_serve_eval_latency_ns_bucket{{engine="{sid}"'
if want not in metrics:
    raise SystemExit(f"/metrics missing per-engine latency histogram {want}")
print("tracing smoke: linked serve→compile tree, chrome export, per-engine histogram all OK")
EOF
kill "$serve_pid" 2>/dev/null
trap 'rm -rf "$tmp"' EXIT

echo "== serve gate: shared-cache aggregate throughput at 8 sessions (>=2x over 1 fails) =="
# Sessions are isolated namespaces, so the in-memory compile-cache front
# cannot be shared; the registry-free stable-key artifact tier is, and it
# must carry the multi-tenant win: 8 sessions' compile sets cost one cold
# set plus seven warm loads. Best-of-3 filters shared-host load spikes.
ratio=0
for i in 1 2 3; do
    go run ./cmd/wolfbench -serve -serve-out "$tmp/serve$i.json" >/dev/null || {
        echo "verify: FAIL — serve load suite errored"
        exit 1
    }
done
python3 - "$tmp" <<'EOF'
import json, sys
tmp = sys.argv[1]
ratio = 0.0
for i in (1, 2, 3):
    d = json.load(open(f"{tmp}/serve{i}.json"))
    ratio = max(ratio, d.get("ratio_peak_vs_1", 0.0))
    for row in d["rows"]:
        if row["sessions"] > 1 and row["artifact_hit_rate"] <= 0:
            sys.exit("verify: FAIL — multi-session run never hit the shared artifact tier")
print(f"aggregate throughput at 8 sessions vs 1: {ratio:.2f}x (gate 2x)")
if ratio < 2:
    sys.exit(f"verify: FAIL — shared-cache serving win only {ratio:.2f}x")
EOF

echo "verify: OK"
