module wolfc

go 1.22
