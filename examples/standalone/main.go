// Standalone deployment (§4.6, F10): compile a function, export it as a
// self-contained C translation unit, build it with the system C compiler,
// and run the resulting native binary — no engine, no Go runtime. This is
// the "create standalone applications" objective of Table 1, with the
// documented standalone trade-off: engine-dependent recovery (F2 soft
// failure, F3 aborts) degrades to fatal errors in the exported artifact.
package main

import (
	"fmt"
	"log"
	"os"
	"os/exec"
	"path/filepath"
	"strings"

	"wolfc/internal/core"
	"wolfc/internal/kernel"
	"wolfc/internal/parser"
)

func main() {
	k := kernel.New()
	c := core.NewCompiler(k)

	// The collatz step-counter: a loop the interpreter runs thousands of
	// times slower than native code.
	src := `Function[{Typed[n0, "MachineInteger"]},
		Module[{n = n0, steps = 0},
			While[n != 1,
				If[EvenQ[n], n = Quotient[n, 2], n = 3*n + 1];
				steps++];
			steps]]`
	ccf, err := c.FunctionCompile(parser.MustParse(src))
	if err != nil {
		log.Fatal(err)
	}

	// In-process, for reference.
	native := ccf.CallRaw(int64(27))
	fmt.Printf("native backend:      collatz[27] = %v\n", native)

	// Export the self-contained C translation unit.
	cSrc, err := ccf.ExportString("CStandalone")
	if err != nil {
		log.Fatal(err)
	}
	dir, err := os.MkdirTemp("", "wolfc-standalone")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	driver := cSrc + `
#include <stdio.h>
int main(void) {
	printf("%lld\n", (long long)Main(27));
	return 0;
}
`
	cPath := filepath.Join(dir, "collatz.c")
	if err := os.WriteFile(cPath, []byte(driver), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exported:            %s (%d bytes, zero dependencies beyond libm)\n",
		filepath.Base(cPath), len(driver))

	cc, err := exec.LookPath("cc")
	if err != nil {
		fmt.Println("no C compiler on PATH; stopping after export")
		return
	}
	bin := filepath.Join(dir, "collatz")
	if out, err := exec.Command(cc, "-std=c11", "-O2", "-o", bin, cPath, "-lm").CombinedOutput(); err != nil {
		log.Fatalf("cc: %v\n%s", err, out)
	}
	out, err := exec.Command(bin).Output()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("standalone binary:   collatz[27] = %s\n", strings.TrimSpace(string(out)))
	fmt.Println("engine features (soft failure, aborts) are compiled out, as §4.6 describes")
}
