// Symbolic computation in compiled code (F8, §4.5): values of type
// "Expression" flow through compiled functions, combined by threaded
// interpretation through the engine — cf[1, 2] is 3, cf[x, y] stays
// symbolic — plus the KernelFunction escape for gradual compilation (F9).
package main

import (
	"fmt"
	"log"

	"wolfc/internal/core"
	"wolfc/internal/expr"
	"wolfc/internal/kernel"
	"wolfc/internal/parser"
)

func main() {
	k := kernel.New()
	c := core.NewCompiler(k)

	// The paper's example verbatim (§4.5).
	cf, err := c.FunctionCompile(parser.MustParse(
		`Function[{Typed[arg1, "Expression"], Typed[arg2, "Expression"]}, arg1 + arg2]`))
	if err != nil {
		log.Fatal(err)
	}
	cases := [][2]string{
		{"1", "2"},
		{"x", "y"},
		{"x", "Cos[y] + Sin[z]"},
	}
	fmt.Println("cf = FunctionCompile[Function[{Typed[arg1, \"Expression\"], Typed[arg2, \"Expression\"]}, arg1 + arg2]]")
	for _, args := range cases {
		out, err := cf.Apply([]expr.Expr{parser.MustParse(args[0]), parser.MustParse(args[1])})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("cf[%s, %s] = %s\n", args[0], args[1], expr.InputForm(out))
	}

	// Symbolic values mix with machine computation in one function: the
	// machine part runs unboxed, the symbolic part through the engine.
	mixed, err := c.FunctionCompile(parser.MustParse(
		`Function[{Typed[e, "Expression"], Typed[n, "MachineInteger"]},
			Module[{k = n*n}, e + Native` + "`" + `ToExpression[k]]]`))
	if err != nil {
		log.Fatal(err)
	}
	out, err := mixed.Apply([]expr.Expr{parser.MustParse("Sin[t]"), expr.FromInt64(7)})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmixed[Sin[t], 7] = %s  (machine 7*7 boxed into the symbolic sum)\n",
		expr.InputForm(out))

	// Gradual compilation (F9): user-defined interpreter functions called
	// from compiled code through KernelFunction.
	if _, err := k.Run(parser.MustParse("shape[x_] := {x, x^2, x^3}")); err != nil {
		log.Fatal(err)
	}
	escape, err := c.FunctionCompile(parser.MustParse(
		`Function[{Typed[n, "MachineInteger"]}, KernelFunction[shape][n]]`))
	if err != nil {
		log.Fatal(err)
	}
	out, err = escape.Apply([]expr.Expr{expr.FromInt64(3)})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nKernelFunction escape: compiled code calling the interpreter's shape[3] = %s\n",
		expr.InputForm(out))

	// Symbolic differentiation feeding compiled code: the automatic
	// differentiation workflow of §5.
	eq := parser.MustParse("x^3 + Sin[x]")
	d1, _ := k.EvalGuarded(expr.NewS("D", eq, expr.Sym("x")))
	d2, _ := k.EvalGuarded(expr.NewS("D", d1, expr.Sym("x")))
	fmt.Printf("\nf(x)   = %s\nf'(x)  = %s\nf''(x) = %s\n",
		expr.InputForm(eq), expr.InputForm(d1), expr.InputForm(d2))
	dcf, err := c.FunctionCompile(expr.New(expr.SymFunction,
		expr.List(expr.New(expr.SymTyped, expr.Sym("x"), expr.FromString("Real64"))), d1))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiled f'(2.0) = %v\n", dcf.CallRaw(2.0))
}
