(* Differential corpus for the tiered-execution smoke test (ISSUE 5). *)
(* scripts/verify.sh runs this through wolfrepl twice — once plain, once *)
(* with -autocompile -autocompile-threshold 2 — and requires bit-identical *)
(* stdout. Every construct the promotion pipeline touches is exercised: *)
(* literal base cases, If-based recursion, machine-integer overflow into *)
(* bignums, reals, mutual recursion, mid-session redefinition, and Clear. *)
fib[0] = 0
fib[1] = 1
fib[n_] := fib[n - 1] + fib[n - 2]
fib[10]
fib[18]
fib[22]
fib[22]
(* If-based recursion; fact[25] overflows Integer64 mid-recursion, so the *)
(* compiled tier must soft-fall back to interpreter bignums. *)
fact[n_] := If[n < 2, 1, n*fact[n - 1]]
fact[10]
fact[12]
fact[12]
fact[25]
fact[30]
(* Guard miss: a bignum argument never fits the compiled signature. *)
square[n_] := n*n
square[3]
square[4]
square[5]
square[2^70]
(* Real-typed definition. *)
rhalf[x_Real] := x*x + 0.5
rhalf[1.5]
rhalf[2.5]
rhalf[3.5]
rhalf[4.5]
(* Mutual recursion: both members promote as a group. *)
ma[n_] := If[n < 2, n, mb[n - 1] + ma[n - 2]]
mb[n_] := If[n < 2, n, ma[n - 1] + mb[n - 2]]
ma[12]
mb[12]
ma[16]
mb[16]
(* Redefinition mid-session: the installed entry must be uninstalled and *)
(* the new semantics take effect immediately. *)
square[n_] := n + 1
square[3]
square[4]
square[5]
(* Clear drops the definition entirely; the call prints unevaluated. *)
Clear[fact]
fact[5]
fib[20]
