// Library export (F10, §4.6): compile once, export the compiled module to a
// file, reload it in a fresh session without the source, and run it — plus
// the C translation written next to it. In standalone mode the reloaded
// code has interpreter integration and abortability disabled, as the paper
// describes.
package main

import (
	"bytes"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"wolfc/internal/core"
	"wolfc/internal/expr"
	"wolfc/internal/kernel"
	"wolfc/internal/parser"
)

func main() {
	dir, err := os.MkdirTemp("", "wolfc-export")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// Session 1: compile and export.
	k1 := kernel.New()
	c1 := core.NewCompiler(k1)
	src := `Function[{Typed[n, "MachineInteger"]},
		Module[{s = 0, i = 1},
			While[i <= n, s = s + i*i; i = i + 1];
			s]]`
	ccf, err := c1.FunctionCompile(parser.MustParse(src))
	if err != nil {
		log.Fatal(err)
	}

	libPath := filepath.Join(dir, "sumsq.wclib")
	var buf bytes.Buffer
	if err := ccf.ExportLibrary(&buf); err != nil {
		log.Fatal(err)
	}
	if err := os.WriteFile(libPath, buf.Bytes(), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("FunctionCompileExportLibrary -> %s (%d bytes of typed IR)\n",
		filepath.Base(libPath), buf.Len())

	cSrc, err := ccf.ExportString("C")
	if err != nil {
		log.Fatal(err)
	}
	cPath := filepath.Join(dir, "sumsq.c")
	if err := os.WriteFile(cPath, []byte(cSrc), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("FunctionCompileExportString[..., \"C\"] -> %s (%d bytes)\n",
		filepath.Base(cPath), len(cSrc))

	// "CStandalone" inlines the wolfrt runtime so the file compiles alone:
	//	cc sumsq_standalone.c -lm
	// (after appending a main() that calls Main).
	cFull, err := ccf.ExportString("CStandalone")
	if err != nil {
		log.Fatal(err)
	}
	cFullPath := filepath.Join(dir, "sumsq_standalone.c")
	if err := os.WriteFile(cFullPath, []byte(cFull), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("FunctionCompileExportString[..., \"CStandalone\"] -> %s (self-contained, %d bytes)\n",
		filepath.Base(cFullPath), len(cFull))

	wvm, err := ccf.ExportString("WVM")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("WVM backend -> %d bytecode lines for the legacy stack machine\n\n",
		bytesLines(wvm))

	// Session 2: a completely fresh compiler loads the library — no source
	// available — and runs it (LibraryFunctionLoad).
	data, err := os.ReadFile(libPath)
	if err != nil {
		log.Fatal(err)
	}
	k2 := kernel.New()
	c2 := core.NewCompiler(k2)
	loaded, err := core.LoadCompiledLibrary(c2, bytes.NewReader(data), true /* standalone */)
	if err != nil {
		log.Fatal(err)
	}
	out, err := loaded.Apply([]expr.Expr{expr.FromInt64(100)})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("LibraryFunctionLoad + call: sumsq[100] = %s (expected 338350)\n",
		expr.InputForm(out))
	fmt.Println("standalone mode: engine-dependent features (aborts, KernelFunction) disabled")
}

func bytesLines(s string) int {
	n := 1
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			n++
		}
	}
	return n
}
