// Random walk: Figure 1's notebook session — the same NestList program
// interpreted (In[1]), bytecode compiled after a structural rewrite
// (In[2]), and compiled by the new compiler with only a Typed annotation
// added (In[3]) — with timings and a small character plot of the walk.
package main

import (
	"fmt"
	"log"
	"time"

	"wolfc/internal/core"
	"wolfc/internal/expr"
	"wolfc/internal/kernel"
	"wolfc/internal/parser"
	"wolfc/internal/runtime"
	"wolfc/internal/vm"
)

const nestListWalk = `Function[{Typed[len, "MachineInteger"]},
 NestList[
  Module[{arg = RandomReal[{0., 6.283185307179586}]}, {-Cos[arg], Sin[arg]} + #] &,
  {0., 0.},
  len]]`

const loopWalk = `Compile[{{len, _Integer}},
 Module[{out = ConstantArray[0., {len + 1, 2}], arg = 0., x = 0., y = 0., i = 1},
  While[i <= len,
   arg = RandomReal[{0., 6.283185307179586}];
   x = x - Cos[arg];
   y = y + Sin[arg];
   out[[i + 1, 1]] = x;
   out[[i + 1, 2]] = y;
   i = i + 1];
  out]]`

func main() {
	k := kernel.New()
	k.Seed(7)
	vm.Install(k)
	c := core.NewCompiler(k)

	const interpLen = 2000
	const compiledLen = 100000

	// In[1]: interpreted.
	interp := parser.MustParse(`Function[{len},
		NestList[Module[{arg = RandomReal[{0., 6.283185307179586}]}, {-Cos[arg], Sin[arg]} + #] &, {0., 0.}, len]]`)
	t0 := time.Now()
	out, err := k.Run(expr.New(interp, expr.FromInt64(interpLen)))
	if err != nil {
		log.Fatal(err)
	}
	dInterp := time.Since(t0)
	fmt.Printf("In[1] interpreted         len=%-7d %12v  (%.1f µs/step)\n",
		interpLen, dInterp, float64(dInterp.Microseconds())/interpLen)

	// In[2]: bytecode Compile — note the structural rewrite the paper
	// describes: NestList and the pure function are outside the WVM's
	// reach, so the walk becomes an explicit loop.
	cfExpr, err := k.Run(parser.MustParse(loopWalk))
	if err != nil {
		log.Fatal(err)
	}
	t0 = time.Now()
	_, err = k.Run(expr.New(cfExpr, expr.FromInt64(compiledLen)))
	if err != nil {
		log.Fatal(err)
	}
	dVM := time.Since(t0)
	fmt.Printf("In[2] bytecode Compile    len=%-7d %12v  (%.2f µs/step)\n",
		compiledLen, dVM, float64(dVM.Microseconds())/compiledLen)

	// In[3]: the new compiler on the unmodified NestList code.
	ccf, err := c.FunctionCompile(parser.MustParse(nestListWalk))
	if err != nil {
		log.Fatal(err)
	}
	t0 = time.Now()
	walk := ccf.CallRaw(int64(compiledLen)).(*runtime.Tensor)
	dNew := time.Since(t0)
	fmt.Printf("In[3] FunctionCompile     len=%-7d %12v  (%.2f µs/step)\n",
		compiledLen, dNew, float64(dNew.Microseconds())/compiledLen)

	perStepInterp := float64(dInterp.Nanoseconds()) / interpLen
	perStepVM := float64(dVM.Nanoseconds()) / compiledLen
	perStepNew := float64(dNew.Nanoseconds()) / compiledLen
	fmt.Printf("\nper-step speedup over the interpreter: bytecode %.0fx, new compiler %.0fx\n",
		perStepInterp/perStepVM, perStepInterp/perStepNew)
	fmt.Printf("new compiler over bytecode: %.1fx\n\n", perStepVM/perStepNew)

	plotWalk(walk)
	_ = out
}

// plotWalk draws the walk in a character grid (the ListLinePlot of In[4]).
func plotWalk(t *runtime.Tensor) {
	const W, H = 64, 24
	n := t.Len()
	minX, maxX, minY, maxY := 0.0, 0.0, 0.0, 0.0
	at := func(i int) (float64, float64) {
		row := t.GetO(int64(i + 1)).(*runtime.Tensor)
		return row.GetF(1), row.GetF(2)
	}
	for i := 0; i < n; i++ {
		x, y := at(i)
		minX, maxX = min(minX, x), max(maxX, x)
		minY, maxY = min(minY, y), max(maxY, y)
	}
	grid := make([][]byte, H)
	for r := range grid {
		grid[r] = make([]byte, W)
		for c := range grid[r] {
			grid[r][c] = ' '
		}
	}
	for i := 0; i < n; i++ {
		x, y := at(i)
		cx := int((x - minX) / (maxX - minX + 1e-12) * (W - 1))
		cy := int((y - minY) / (maxY - minY + 1e-12) * (H - 1))
		grid[H-1-cy][cx] = '*'
	}
	fmt.Println("Out[4] (ListLinePlot of the walk):")
	for _, row := range grid {
		fmt.Println(string(row))
	}
}

func min(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func max(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
