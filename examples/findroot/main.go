// FindRoot: the §1 auto-compilation example. The solver symbolically
// differentiates Sin[x] + E^x with the kernel's D, auto-compiles the
// function and its derivative, and Newton-iterates on the compiled pair —
// then repeats with auto-compilation off to show the speedup.
package main

import (
	"fmt"
	"log"
	"time"

	"wolfc/internal/expr"
	"wolfc/internal/kernel"
	"wolfc/internal/numerics"
	"wolfc/internal/parser"
)

func main() {
	k := kernel.New()
	x := expr.Sym("x")
	eq := parser.MustParse("Sin[x] + Exp[x]")

	// The symbolic derivative, as the solver sees it.
	deriv, err := k.EvalGuarded(expr.NewS("D", eq, x))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("equation:   %s\n", expr.InputForm(eq))
	fmt.Printf("derivative: %s (computed symbolically)\n\n", expr.InputForm(deriv))

	root, err := numerics.FindRoot(k, eq, x, 0, numerics.DefaultFindRootOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("FindRoot[Sin[x] + E^x, {x, 0}] = %.6f  (paper: x ≈ -0.588533)\n\n", root)

	// Timing: steady-state solves with and without auto-compilation.
	for _, auto := range []bool{false, true} {
		opts := numerics.DefaultFindRootOptions()
		opts.AutoCompile = auto
		// Warm up (compiles and caches on the auto path).
		if _, err := numerics.FindRoot(k, eq, x, 0, opts); err != nil {
			log.Fatal(err)
		}
		const solves = 2000
		t0 := time.Now()
		for i := 0; i < solves; i++ {
			if _, err := numerics.FindRoot(k, eq, x, 0, opts); err != nil {
				log.Fatal(err)
			}
		}
		d := time.Since(t0) / solves
		label := "interpreted evaluation"
		if auto {
			label = "auto-compiled          "
		}
		fmt.Printf("%s  %v/solve\n", label, d)
	}
	fmt.Println("\n(paper §1: auto compilation gives FindRoot a 1.6x speedup)")

	// A second solver built on the same machinery: NIntegrate.
	integral, err := numerics.NIntegrate(k, parser.MustParse("Sin[x]"), x, 0, 3.141592653589793, 1000, true)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nNIntegrate[Sin[x], {x, 0, Pi}] = %.6f (exact: 2)\n", integral)
}
