// Type classes and user extensibility (F6, §4.4): the paper's Min example —
// a polymorphic scalar Min qualified over the Ordered class, declared with
// a Wolfram-source implementation, then a container Min built on top of it
// with Fold — instantiated at reals, machine integers, and strings from one
// declaration. Also shows a user macro (§4.7) extending the compiler.
package main

import (
	"fmt"
	"log"

	"wolfc/internal/core"
	"wolfc/internal/expr"
	"wolfc/internal/kernel"
	"wolfc/internal/parser"
	"wolfc/internal/pattern"
	"wolfc/internal/types"
)

func main() {
	k := kernel.New()
	c := core.NewCompiler(k)

	// tyEnv["declareFunction", Min, TypeForAll[{a}, {a ∈ Ordered},
	//   {a, a} -> a]]@Function[{e1, e2}, If[e1 < e2, e1, e2]]   (§4.4)
	c.TypeEnv.DeclareFunction(&types.FuncDef{
		Name: "MyMin",
		Type: c.TypeEnv.MustParseSpec(parser.MustParse(
			`TypeForAll[{"a"}, {Element["a", "Ordered"]}, {"a", "a"} -> "a"]`)),
		Impl:   parser.MustParse("Function[{e1, e2}, If[e1 < e2, e1, e2]]"),
		Inline: true,
	})
	// The container Min from the paper, built on Fold over the scalar one.
	c.TypeEnv.DeclareFunction(&types.FuncDef{
		Name: "MyMinList",
		Type: c.TypeEnv.MustParseSpec(parser.MustParse(
			`TypeForAll[{"a"}, {Element["a", "Ordered"]}, {"Tensor"["a", 1]} -> "a"]`)),
		Impl: parser.MustParse("Function[{arry}, Fold[MyMin, Native`PartUnsafe[arry, 1], arry]]"),
	})

	show := func(label, src string, args ...string) {
		ccf, err := c.FunctionCompile(parser.MustParse(src))
		if err != nil {
			log.Fatalf("%s: %v", label, err)
		}
		ex := make([]expr.Expr, len(args))
		for i, a := range args {
			ex[i] = parser.MustParse(a)
		}
		out, err := ccf.Apply(ex)
		if err != nil {
			log.Fatalf("%s: %v", label, err)
		}
		fmt.Printf("%-48s = %s\n", label, expr.InputForm(out))
	}

	fmt.Println("One polymorphic declaration, three instantiations:")
	show(`MyMin[3.5, 2.0] at Real64`,
		`Function[{Typed[x, "Real64"], Typed[y, "Real64"]}, MyMin[x, y]]`, "3.5", "2.0")
	show(`MyMin[9, 4] at MachineInteger`,
		`Function[{Typed[x, "MachineInteger"], Typed[y, "MachineInteger"]}, MyMin[x, y]]`, "9", "4")
	show(`MyMin["pear", "apple"] at String`,
		`Function[{Typed[x, "String"], Typed[y, "String"]}, MyMin[x, y]]`, `"pear"`, `"apple"`)
	show(`MyMinList[{3., 1., 2.}] (container via Fold)`,
		`Function[{Typed[v, "Tensor"["Real64", 1]]}, MyMinList[v]]`, "{3., 1., 2.}")

	// The qualifier rejects types outside the class: complex numbers are
	// not Ordered, so this is a compile-time error, not a runtime surprise.
	_, err := c.FunctionCompile(parser.MustParse(
		`Function[{Typed[z, "ComplexReal64"]}, MyMin[z, z]]`))
	fmt.Printf("\nMyMin on ComplexReal64 -> compile error (Ordered qualifier): %v\n", err != nil)

	// §4.7: a user macro registered into an environment chained onto the
	// default one — here a Square[x] sugar that the compiler desugars.
	c.MacroEnv.Register(expr.Sym("Square"), pattern.Rule{
		LHS: parser.MustParse("Square[x_]"),
		RHS: parser.MustParse("x*x"),
	})
	show("user macro: Square[w] + 1",
		`Function[{Typed[w, "Real64"]}, Square[w] + 1.]`, "3.0")

	// And a user type-class extension: a new atomic type joins Ordered.
	c.TypeEnv.DeclareClass("Ordered", "MyDecimal")
	fmt.Printf("user class extension: MyDecimal ∈ Ordered = %v\n",
		c.TypeEnv.MemberOf(types.AtomicOf("MyDecimal"), "Ordered"))
}
