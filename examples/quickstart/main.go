// Quickstart: the §A.6 artifact walkthrough — compile addOne, inspect every
// stage of the pipeline (AST → WIR → TWIR → C), run it, and watch the soft
// numeric failure fall back to the interpreter with bignums (§2.2).
package main

import (
	"fmt"
	"log"

	"wolfc/internal/core"
	"wolfc/internal/expr"
	"wolfc/internal/kernel"
	"wolfc/internal/parser"
)

func main() {
	k := kernel.New()
	c := core.NewCompiler(k)

	fmt.Println("== addOne: Function[{Typed[arg, \"MachineInteger\"]}, arg + 1] ==")
	addOne := parser.MustParse(`Function[{Typed[arg, "MachineInteger"]}, arg + 1]`)

	ast, err := c.ExpandAST(addOne)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n-- CompileToAST --")
	fmt.Println(expr.FullForm(ast))

	wirMod, err := c.BuildWIR(addOne)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n-- CompileToIR (untyped WIR) --")
	fmt.Print(wirMod.String())

	ccf, err := c.FunctionCompile(addOne)
	if err != nil {
		log.Fatal(err)
	}
	twir, _ := ccf.ExportString("TWIR")
	fmt.Println("\n-- CompileToIR (typed TWIR) --")
	fmt.Print(twir)

	cSrc, _ := ccf.ExportString("C")
	fmt.Println("\n-- FunctionCompileExportString[addOne, \"C\"] --")
	fmt.Print(cSrc)

	out, err := ccf.Apply([]expr.Expr{expr.FromInt64(41)})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\naddOne[41] = %s\n", expr.InputForm(out))

	// The paper's recursive cfib (§4.1), then the §2.2 soft failure: a
	// computation that overflows machine integers prints a warning and
	// re-evaluates through the interpreter with exact arithmetic.
	fmt.Println("\n== cfib and the soft failure mode ==")
	cfib, err := c.CompileNamed("cfib", parser.MustParse(
		`Function[{Typed[n, "MachineInteger"]},
			If[n < 1, 1, cfib[n - 1] + cfib[n - 2]]]`))
	if err != nil {
		log.Fatal(err)
	}
	for _, n := range []int64{10, 25} {
		out, err := cfib.Apply([]expr.Expr{expr.FromInt64(n)})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("cfib[%d] = %s\n", n, expr.InputForm(out))
	}

	// Define cfib in the kernel too, so the fallback can recurse exactly.
	if _, err := k.Run(parser.MustParse(
		"cfib = Function[{n}, If[n < 1, 1, cfib[n - 1] + cfib[n - 2]]]")); err != nil {
		log.Fatal(err)
	}
	overflow, err := c.FunctionCompile(parser.MustParse(
		`Function[{Typed[n, "MachineInteger"]}, n*n*n*n*n*n*n]`))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\npow7[12345678] overflows int64; the wrapper prints the warning and")
	fmt.Println("reverts to the interpreter, which answers exactly:")
	out, err = overflow.Apply([]expr.Expr{expr.FromInt64(12345678)})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pow7[12345678] = %s\n", expr.InputForm(out))
}
